//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`), range
//! strategies over integers and floats, tuple strategies,
//! [`collection::vec`] with fixed or ranged lengths, [`Strategy::prop_map`],
//! and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are sampled from a deterministic
//! RNG seeded by the test name (FNV-1a), and failing cases are reported but
//! **not shrunk**. That trades minimal counterexamples for zero
//! dependencies and bit-reproducible CI runs.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{SampleRange, SeedableRng};

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (carried by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a hash of the test name — the per-test RNG seed.
pub fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: a fixed `usize` or a range.
    pub trait IntoLenRange {
        /// Inclusive bounds `(min, max)`.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vectors of `element` values with the given length (spec: fixed or
    /// range).
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.min == self.max {
                self.min
            } else {
                rng.gen_range(self.min..=self.max)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
    /// Namespace alias so `prop::collection::vec` style paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs one test's cases (implementation detail of [`proptest!`]).
pub fn run_cases<F: FnMut(u32, &mut TestRng) -> TestCaseResult>(
    name: &str,
    config: &ProptestConfig,
    mut case: F,
) {
    let mut rng = TestRng::seed_from_u64(fnv(name));
    for i in 0..config.cases {
        if let Err(e) = case(i, &mut rng) {
            panic!(
                "proptest `{name}` failed on case {i}/{}: {}",
                config.cases, e.0
            );
        }
    }
}

/// Property-test declaration macro (see crate docs for the differences
/// from real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &__config, |__case, __rng| {
                $( let $arg = $crate::Strategy::sample(&($strat), __rng); )+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: both sides are `{:?}`",
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// vec() honors the length spec and prop_map applies.
        #[test]
        fn vec_and_map(
            xs in collection::vec(0u32..10, 2..5),
            y in (0i32..3).prop_map(|v| v * 2),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert_eq!(y % 2, 0);
        }

        /// Tuple strategies work.
        #[test]
        fn tuples(pair in (0.0f64..1.0, 5u8..7)) {
            prop_assert!(pair.0 < 1.0);
            prop_assert!(pair.1 >= 5 && pair.1 < 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics() {
        crate::run_cases("demo", &ProptestConfig::with_cases(5), |_case, _rng| {
            Err(crate::TestCaseError("nope".into()))
        });
    }
}
