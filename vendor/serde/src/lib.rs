//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal serialization framework under the same crate name. It keeps the
//! seed sources' `use serde::{Deserialize, Serialize};` and
//! `#[derive(Serialize, Deserialize)]` lines compiling unchanged while
//! providing *real* (not stubbed) serialization through an in-memory
//! [`Value`] tree: the derive macros in `serde_derive` generate
//! [`Serialize::to_value`] / [`Deserialize::from_value`] implementations,
//! and the sibling `serde_json` shim renders `Value` to and from JSON text.
//!
//! Representation conventions mirror serde's defaults:
//! * structs with named fields → objects keyed by field name,
//! * newtype (1-field tuple) structs → the inner value, transparently,
//! * n-field tuple structs → arrays,
//! * enums → externally tagged (`"Variant"`, `{"Variant": value}`,
//!   `{"Variant": [..]}` or `{"Variant": {..}}`),
//! * `Option::None` → `null`, `Some(x)` → `x`.
//!
//! Floats serialize with Rust's shortest round-trip formatting, so a
//! value-tree round trip reproduces `f64` bit patterns exactly — the
//! property the runtime's checkpoint/resume machinery depends on.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Serialization error (also used by the `serde_json` shim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// An order-preserving string-keyed map (the object representation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Map {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key/value pair, replacing an existing key in place.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes a key, returning its value when it was present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry at position `i` (insertion order).
    pub fn get_index(&self, i: usize) -> Option<(&str, &Value)> {
        self.entries.get(i).map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// An in-memory serialization tree (what `serde_json::Value` is to serde).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (wide enough for every primitive integer type used here).
    Int(i128),
    /// A float. Non-finite values are representable (the JSON writer emits
    /// `Infinity` / `-Infinity` / `NaN`, which the reader accepts back).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The string slice when this is a `String` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64` when this is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer value when this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => (*i).try_into().ok(),
            _ => None,
        }
    }

    /// The unsigned integer value when this is a non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => (*i).try_into().ok(),
            _ => None,
        }
    }

    /// The boolean when this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements when this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map when this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Int(i) if *i == *other as i128)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64().is_some_and(|f| f == *other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: extracts and deserializes a named struct field.
///
/// # Errors
///
/// Returns [`Error`] when the value is not an object, the field is missing,
/// or the field fails to deserialize.
pub fn get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(m) => match m.get(name) {
            Some(f) => T::from_value(f),
            None => Err(Error(format!("missing field `{name}`"))),
        },
        _ => Err(Error(format!("expected object with field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive and container implementations.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Int(i) => (*i).try_into().map_err(|_| {
                        Error(format!("integer {} out of range for {}", i, stringify!($t)))
                    }),
                    _ => Err(Error(format!("expected integer for {}", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                // Integral floats print without a dot, so accept `Int` too.
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::msg("expected number"))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        match v {
            Value::Array(a) if a.len() == 2 => Ok((A::from_value(&a[0])?, B::from_value(&a[1])?)),
            _ => Err(Error::msg("expected 2-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.to_string(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some: Option<f64> = Some(2.5);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn map_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Int(1));
        m.insert("b".into(), Value::Int(2));
        m.insert("a".into(), Value::Int(3));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("a"), Some(&Value::Int(3)));
        assert_eq!(m.get_index(0), Some(("a", &Value::Int(3))));
    }

    #[test]
    fn value_index_and_eq() {
        let mut m = Map::new();
        m.insert("n".into(), Value::Int(4));
        m.insert("xs".into(), Value::Array(vec![Value::String("hi".into())]));
        let v = Value::Object(m);
        assert_eq!(v["n"], 4);
        assert_eq!(v["xs"][0], "hi");
        assert_eq!(v["missing"], Value::Null);
    }
}
