//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` implementations for
//! the vendored `serde` shim *without* `syn`/`quote`: the item is parsed by
//! walking the raw [`TokenStream`] and the impl is emitted as source text
//! (which `TokenStream: FromStr` turns back into tokens).
//!
//! Supported shapes — everything the workspace derives on:
//! * structs with named fields (including one simple type parameter, e.g.
//!   `Matrix<T = f64>`),
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums with any mix of unit, tuple, and struct variants, using serde's
//!   externally-tagged representation.
//!
//! Unsupported: lifetimes, const generics, `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!(\"serde shim derive: {msg}\");")
                .parse()
                .unwrap()
        }
    };
    let code = match which {
        Trait::Serialize => gen_serialize(&item),
        Trait::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde shim derive produced invalid code: {e}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = ident_at(&tokens, pos).ok_or("expected `struct` or `enum`")?;
    pos += 1;
    let name = ident_at(&tokens, pos).ok_or("expected item name")?;
    pos += 1;

    let mut generics = Vec::new();
    if is_punct(tokens.get(pos), '<') {
        let end = matching_angle(&tokens, pos)?;
        generics = parse_generics(&tokens[pos + 1..end])?;
        pos = end + 1;
    }
    // Skip a `where` clause if present (none in this workspace, but cheap).
    while pos < tokens.len() && !matches!(tokens.get(pos), Some(TokenTree::Group(_)) | None) {
        if is_punct(tokens.get(pos), ';') {
            return Ok(Item {
                name,
                generics,
                kind: Kind::UnitStruct,
            });
        }
        pos += 1;
    }

    let kind = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if keyword == "struct" {
                Kind::NamedStruct(parse_named_fields(&inner)?)
            } else {
                Kind::Enum(parse_variants(&inner)?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Kind::TupleStruct(count_tuple_fields(&inner))
        }
        None => Kind::UnitStruct,
        other => return Err(format!("unexpected token {other:?}")),
    };
    if keyword == "enum" && !matches!(kind, Kind::Enum(_)) {
        return Err("enum without a brace body".into());
    }
    Ok(Item {
        name,
        generics,
        kind,
    })
}

fn ident_at(tokens: &[TokenTree], pos: usize) -> Option<String> {
    match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => Some(i.to_string()),
        _ => None,
    }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        if is_punct(tokens.get(*pos), '#') {
            *pos += 2; // `#` + bracketed group
            continue;
        }
        if ident_at(tokens, *pos).as_deref() == Some("pub") {
            *pos += 1;
            if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                *pos += 1; // `pub(crate)` etc.
            }
            continue;
        }
        break;
    }
}

/// Index of the `>` matching the `<` at `open`.
fn matching_angle(tokens: &[TokenTree], open: usize) -> Result<usize, String> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(i);
                    }
                }
                _ => {}
            }
        }
    }
    Err("unbalanced generics".into())
}

/// Extracts type-parameter names from the tokens between `<` and `>`,
/// dropping bounds (`: ...`) and defaults (`= ...`).
fn parse_generics(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    let mut expect_name = true;
    let mut depth = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => expect_name = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                return Err("lifetimes are not supported by the serde shim derive".into())
            }
            TokenTree::Ident(id) if expect_name && depth == 0 => {
                if id.to_string() == "const" {
                    return Err("const generics are not supported by the serde shim derive".into());
                }
                params.push(id.to_string());
                expect_name = false;
            }
            _ => {}
        }
        i += 1;
    }
    Ok(params)
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = ident_at(tokens, pos).ok_or("expected field name")?;
        fields.push(name);
        pos += 1;
        if !is_punct(tokens.get(pos), ':') {
            return Err("expected `:` after field name".into());
        }
        // Skip the type up to a top-level comma.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = ident_at(tokens, pos).ok_or("expected variant name")?;
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantShape::Named(parse_named_fields(&inner)?)
            }
            _ => VariantShape::Unit,
        };
        if is_punct(tokens.get(pos), '=') {
            return Err("enum discriminants are not supported by the serde shim derive".into());
        }
        if is_punct(tokens.get(pos), ',') {
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = item.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{plain}>",
            bounded.join(", "),
            item.name
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut b = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            b.push_str("::serde::Value::Object(__m)");
            b
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "Self::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{vn}({}) => {{ let mut __m = ::serde::Map::new(); __m.insert(::std::string::String::from(\"{vn}\"), {inner}); ::serde::Value::Object(__m) }},\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("let mut __fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fm.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{vn} {{ {binds} }} => {{ {inner} let mut __m = ::serde::Map::new(); __m.insert(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(__fm)); ::serde::Value::Object(__m) }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        impl_header(item, "Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(__v, \"{f}\")?"))
                .collect();
            format!(
                "::core::result::Result::Ok(Self {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            "::core::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "match __v {{ ::serde::Value::Array(__a) if __a.len() == {n} => ::core::result::Result::Ok(Self({})), _ => ::core::result::Result::Err(::serde::Error::msg(\"expected {n}-element array for {name}\")) }}",
                items.join(", ")
            )
        }
        Kind::UnitStruct => "::core::result::Result::Ok(Self)".to_string(),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => return ::core::result::Result::Ok(Self::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return ::core::result::Result::Ok(Self::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ if let ::serde::Value::Array(__a) = __inner {{ if __a.len() == {n} {{ return ::core::result::Result::Ok(Self::{vn}({})); }} }} return ::core::result::Result::Err(::serde::Error::msg(\"expected {n}-element array for variant {vn}\")); }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::get_field(__inner, \"{f}\")?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return ::core::result::Result::Ok(Self::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(__s) = __v {{\nmatch __s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n}}\nif let ::serde::Value::Object(__m) = __v {{\nif __m.len() == 1 {{\nif let ::core::option::Option::Some((__tag, __inner)) = __m.get_index(0) {{\nmatch __tag {{\n{tagged_arms}_ => {{}}\n}}\n}}\n}}\n}}\n::core::result::Result::Err(::serde::Error::msg(\"no matching variant of {name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\nfn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
        impl_header(item, "Deserialize")
    )
}
