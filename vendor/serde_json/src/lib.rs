//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored serde shim's [`Value`] tree to JSON text and parses
//! it back. Numbers round-trip exactly: floats are written with Rust's
//! shortest round-trip formatting, and non-finite values are written as the
//! bare tokens `Infinity` / `-Infinity` / `NaN` (accepted back by the
//! parser) — a deliberate JSON5-style extension so evolution statistics
//! containing infinities survive checkpointing.

pub use serde::{Error, Map, Value};

use serde::{Deserialize, Serialize};

/// Serializes a value into a `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serializes a value as compact JSON text.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors `serde_json`'s API.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON text.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors `serde_json`'s API.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // Rust's `{}` is shortest-round-trip; mark integral values as
        // floats anyway so `1.0` does not reparse as an integer? No —
        // integral floats reparse as `Int`, and the shim's numeric
        // deserializers accept either, preserving the exact value.
        let s = format!("{f}");
        out.push_str(&s);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 192;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    m.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-') if self.bytes[self.pos + 1..].starts_with(b"Infinity") => {
                self.pos += 1 + "Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid UTF-8 in number"))?;
        if text == "-0" {
            // Preserve the sign bit: `Int` cannot represent negative zero.
            Ok(Value::Float(-0.0))
        } else if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if self.eat(b'\\').is_ok() && self.eat(b'u').is_ok() {
                                    let low = self.parse_hex4()?;
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::msg("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::msg("lone surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::msg("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::msg("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal (flat subset of
/// `serde_json::json!`: object/array literals with expression values).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $crate::json_object_internal!(__m; $($body)*);
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($map:ident;) => {};
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
    };
    ($map:ident; $key:literal : $value:expr, $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json_object_internal!($map; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v: Value = from_str("{\"a\": [1, 2.5, null, true, \"x\"]}").unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][3], true);
        assert_eq!(v["a"][4], "x");
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 1.7e308, -0.0, 1e30] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {text} -> {back}");
        }
    }

    #[test]
    fn nonfinite_extension() {
        let v = Value::Array(vec![
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(f64::NAN),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[Infinity,-Infinity,NaN]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert!(back[0].is_infinite() && back[0] > 0.0);
        assert!(back[1].is_infinite() && back[1] < 0.0);
        assert!(back[2].is_nan());
    }

    #[test]
    fn json_macro_builds_objects() {
        let n = 3usize;
        let v = json!({ "a": n, "b": [1, 2], "s": "hi" });
        assert_eq!(v["a"], 3);
        assert_eq!(v["b"][1], 2);
        assert_eq!(v["s"], "hi");
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tタブ";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({ "x": [1, 2], "y": { "z": 0.5 } });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
