//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], `criterion_group!`, `criterion_main!` — over
//! a simple auto-calibrating wall-clock loop. Reported figures are
//! median / min / max time per iteration across the configured number of
//! samples. No statistics beyond that: the point is a stable, dependency-
//! free way to compare kernels on one machine.

use std::time::{Duration, Instant};

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the wall-clock budget per sample (calibration target).
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_sample_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            target_sample_time: self.target_sample_time,
            sample_size: self.sample_size,
            per_iter: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    target_sample_time: Duration,
    sample_size: usize,
    per_iter: Vec<f64>,
}

/// Batch sizing for [`Bencher::iter_batched`] (setup cost excluded from
/// timing either way in this shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl Bencher {
    /// Times `routine` (auto-calibrated batches, `sample_size` samples).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit the per-sample budget?
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.target_sample_time / 4 || iters >= 1 << 24 {
                let per = elapsed.as_secs_f64() / iters as f64;
                let budget = self.target_sample_time.as_secs_f64();
                iters = ((budget / per.max(1e-12)) as u64).clamp(1, 1 << 24);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.per_iter.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.per_iter
                .push(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Times `routine` with a fresh `setup()` input per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.per_iter.clear();
        // Calibrate on a single run.
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let per = t0.elapsed().as_secs_f64();
        let budget = self.target_sample_time.as_secs_f64();
        let iters = ((budget / per.max(1e-12)) as u64).clamp(1, 4096);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.per_iter
                .push(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.per_iter.is_empty() {
            println!("{name:<44} (no measurement)");
            return;
        }
        let mut sorted = self.per_iter.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Mirrors `criterion::black_box` (std's since 1.66).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group (both the simple and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
