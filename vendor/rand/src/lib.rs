//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small deterministic PRNG under the same crate name, exposing exactly the
//! rand 0.8 API subset the seed sources use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64. Unlike the
//! real `StdRng` (which explicitly disclaims stream stability), this
//! generator is **guaranteed reproducible across releases** — run results,
//! checkpoints, and the engine's determinism tests all rely on the stream
//! being part of the repo's contract. The state is serializable (via the
//! vendored serde shim), which is what lets `caffeine-runtime` checkpoint a
//! run mid-flight and resume it bit-exactly.

use std::ops::{Range, RangeInclusive};

/// Random number generator interface (the subset of `rand::Rng` used here).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from a range (half-open or inclusive; integer or
    /// float).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand seeds and to derive independent streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator types.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};
    use serde::{Deserialize, Serialize};

    /// Deterministic xoshiro256++ generator (see the crate docs for the
    /// stability contract).
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
        s2: u64,
        s3: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s0: splitmix64(&mut sm),
                s1: splitmix64(&mut sm),
                s2: splitmix64(&mut sm),
                s3: splitmix64(&mut sm),
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self
                .s0
                .wrapping_add(self.s3)
                .rotate_left(23)
                .wrapping_add(self.s0);
            let t = self.s1 << 17;
            self.s2 ^= self.s0;
            self.s3 ^= self.s1;
            self.s1 ^= self.s2;
            self.s0 ^= self.s3;
            self.s2 ^= t;
            self.s3 = self.s3.rotate_left(45);
            result
        }
    }
}

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Maps 64 random bits onto `[0, span)` without modulo bias worth caring
/// about (fixed-point multiply).
#[inline]
fn bounded(rng_out: u64, span: u128) -> u128 {
    (rng_out as u128 * span) >> 64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = bounded(rng.next_u64(), span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = bounded(rng.next_u64(), span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_from(rng) as f32
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// The subset of `rand::seq::SliceRandom` this workspace uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_is_pinned() {
        // The stream is a repo contract (checkpoints depend on it): these
        // reference values must never change.
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 5987356902031041503);
        assert_eq!(r.next_u64(), 7051070477665621255);
        assert_eq!(r.next_u64(), 6633766593972829180);
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w = r.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&w));
            let f = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
        // Inclusive integer ranges reach both endpoints.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn rng_state_serde_round_trip() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            r.next_u64();
        }
        let v = serde::Serialize::to_value(&r);
        let mut back: StdRng = serde::Deserialize::from_value(&v).unwrap();
        let mut orig = r.clone();
        for _ in 0..50 {
            assert_eq!(orig.next_u64(), back.next_u64());
        }
    }
}
