//! Support code for the `caffeine-cli` binary: CSV dataset loading and
//! argument parsing, kept in the library so they are unit-testable.

use std::collections::BTreeMap;

use caffeine_core::{CaffeineSettings, GrammarConfig};
use caffeine_doe::Dataset;

/// Parsed command-line options of `caffeine-cli`.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Training CSV path.
    pub data: String,
    /// Target column name (defaults to the last column).
    pub target: Option<String>,
    /// Optional held-out test CSV.
    pub test: Option<String>,
    /// Optional grammar file; defaults to the paper's full grammar.
    pub grammar: Option<String>,
    /// Optional JSON output path for the model front.
    pub out: Option<String>,
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Maximum basis functions.
    pub max_bases: usize,
    /// RNG seed.
    pub seed: u64,
    /// Evaluation worker threads.
    pub threads: usize,
    /// Number of islands.
    pub islands: usize,
    /// Ring-migration period in generations (0 disables).
    pub migrate_every: usize,
    /// Checkpoint file path.
    pub checkpoint: Option<String>,
    /// Checkpoint cadence in generations (0 = only on completion).
    pub checkpoint_every: usize,
    /// Resume from the `--checkpoint` file when it exists.
    pub resume: bool,
    /// Flags that were explicitly given (distinguishes `--gens 300` from
    /// the default — resume semantics depend on it).
    pub explicit: Vec<&'static str>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            data: String::new(),
            target: None,
            test: None,
            grammar: None,
            out: None,
            population: 200,
            generations: 300,
            max_bases: 10,
            seed: 0,
            threads: 1,
            islands: 1,
            migrate_every: 25,
            checkpoint: None,
            checkpoint_every: 0,
            resume: false,
            explicit: Vec::new(),
        }
    }
}

/// Every flag the CLI knows, in usage order. Used for duplicate detection
/// and nearest-flag suggestions.
const KNOWN_FLAGS: &[&str] = &[
    "--data",
    "--target",
    "--test",
    "--grammar",
    "--out",
    "--pop",
    "--gens",
    "--max-bases",
    "--seed",
    "--threads",
    "--islands",
    "--migrate-every",
    "--checkpoint",
    "--checkpoint-every",
    "--resume",
];

/// Levenshtein edit distance (for `did you mean ...?` suggestions).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest known flag, when it is close enough to be a plausible typo.
fn nearest_flag(unknown: &str) -> Option<&'static str> {
    KNOWN_FLAGS
        .iter()
        .map(|&f| (edit_distance(unknown, f), f))
        .min()
        .filter(|&(d, f)| d <= (f.len() / 2).max(2))
        .map(|(_, f)| f)
}

impl CliOptions {
    /// Parses `--key value` style arguments (the program name already
    /// stripped).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags (with a
    /// nearest-flag suggestion), duplicated flags, missing values, or a
    /// missing `--data`.
    pub fn parse(args: &[String]) -> Result<CliOptions, String> {
        let mut opts = CliOptions::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if let Some(known) = KNOWN_FLAGS.iter().find(|&&f| f == flag.as_str()) {
                if opts.explicit.contains(known) {
                    return Err(format!("flag {known} given more than once"));
                }
                opts.explicit.push(known);
            }
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            let mut int = |name: &str| -> Result<usize, String> {
                value(name)?
                    .parse()
                    .map_err(|_| format!("{name} needs an integer"))
            };
            match flag.as_str() {
                "--data" => opts.data = value("--data")?,
                "--target" => opts.target = Some(value("--target")?),
                "--test" => opts.test = Some(value("--test")?),
                "--grammar" => opts.grammar = Some(value("--grammar")?),
                "--out" => opts.out = Some(value("--out")?),
                "--pop" => opts.population = int("--pop")?,
                "--gens" => opts.generations = int("--gens")?,
                "--max-bases" => opts.max_bases = int("--max-bases")?,
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed needs an integer".to_string())?
                }
                "--threads" => opts.threads = int("--threads")?,
                "--islands" => opts.islands = int("--islands")?,
                "--migrate-every" => opts.migrate_every = int("--migrate-every")?,
                "--checkpoint" => opts.checkpoint = Some(value("--checkpoint")?),
                "--checkpoint-every" => opts.checkpoint_every = int("--checkpoint-every")?,
                "--resume" => opts.resume = true,
                other => {
                    return Err(match nearest_flag(other) {
                        Some(near) => {
                            format!("unknown flag `{other}` — did you mean `{near}`? (see --help)")
                        }
                        None => format!("unknown flag `{other}` (see --help)"),
                    })
                }
            }
        }
        if opts.data.is_empty() {
            return Err("missing required flag --data <file.csv>".to_string());
        }
        if opts.resume && opts.checkpoint.is_none() {
            return Err("--resume needs --checkpoint <file> to resume from".to_string());
        }
        Ok(opts)
    }

    /// `true` when the flag was explicitly present on the command line.
    pub fn was_set(&self, flag: &str) -> bool {
        self.explicit.contains(&flag)
    }

    /// The runtime configuration implied by these options.
    pub fn runtime_config(&self) -> caffeine_runtime::RuntimeConfig {
        caffeine_runtime::RuntimeConfig {
            threads: self.threads.max(1),
            islands: self.islands.max(1),
            migrate_every: self.migrate_every,
            checkpoint_every: self.checkpoint_every,
            ..caffeine_runtime::RuntimeConfig::default()
        }
    }

    /// The engine settings implied by these options.
    pub fn settings(&self) -> CaffeineSettings {
        let mut s = CaffeineSettings::paper();
        s.population = self.population;
        s.generations = self.generations;
        s.max_bases = self.max_bases;
        s.seed = self.seed;
        s.stats_every = (self.generations / 10).max(1);
        s
    }

    /// Resolves the grammar: parse the file when given, otherwise the full
    /// paper grammar over `n_vars` variables.
    ///
    /// # Errors
    ///
    /// Propagates file-IO and grammar-parse failures as strings.
    pub fn resolve_grammar(&self, n_vars: usize) -> Result<GrammarConfig, String> {
        match &self.grammar {
            None => Ok(GrammarConfig::paper_full(n_vars)),
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read grammar file {path}: {e}"))?;
                let mut g = caffeine_core::grammar::parse_grammar(&text)
                    .map_err(|e| format!("grammar file {path}: {e}"))?;
                if g.n_vars != n_vars {
                    // Data decides the dimensionality; the file's `vars`
                    // is validated against it.
                    return Err(format!(
                        "grammar file declares {} vars but the data has {n_vars}",
                        g.n_vars
                    ));
                }
                g.n_vars = n_vars;
                Ok(g)
            }
        }
    }
}

/// Parsed options of `caffeine-cli serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Bind address.
    pub addr: String,
    /// Registry/checkpoint directory (in-memory when absent).
    pub model_dir: Option<String>,
    /// Worker threads.
    pub threads: usize,
    /// Job-store capacity (terminal records are evicted; 429 beyond).
    pub max_jobs: usize,
    /// Concurrently running GP jobs; submissions beyond this wait in the
    /// FIFO admission queue (0 = same as `threads`).
    pub max_running_jobs: usize,
    /// Requests served per connection before the server closes it.
    pub max_conn_requests: usize,
    /// Keep-alive idle timeout between requests, milliseconds.
    pub idle_timeout_ms: u64,
    /// Log verbosity: `error`, `warn`, `info`, or `debug`.
    pub log_level: caffeine_obs::Level,
    /// Log line format: `text` or `json`.
    pub log_format: caffeine_obs::LogFormat,
    /// Requests slower than this get an `http.slow` warning, ms.
    pub slow_request_ms: u64,
    /// Completed traces kept by the in-process trace store.
    pub trace_capacity: usize,
    /// Fraction of ordinary (fast, non-errored) traces retained by tail
    /// sampling, 0.0–1.0. Slow, errored, and explicitly requested traces
    /// are always kept.
    pub trace_sample_rate: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".into(),
            model_dir: None,
            threads: 4,
            max_jobs: 64,
            max_running_jobs: 0,
            max_conn_requests: 100,
            idle_timeout_ms: 5_000,
            log_level: caffeine_obs::Level::Info,
            log_format: caffeine_obs::LogFormat::Text,
            slow_request_ms: 1_000,
            trace_capacity: 256,
            trace_sample_rate: 0.1,
        }
    }
}

impl ServeOptions {
    /// Parses the arguments after the `serve` subcommand.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<ServeOptions, String> {
        let mut opts = ServeOptions::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            let mut int = |name: &str| -> Result<usize, String> {
                value(name)?
                    .parse()
                    .map_err(|_| format!("{name} needs an integer"))
            };
            match flag.as_str() {
                "--addr" => opts.addr = value("--addr")?,
                "--model-dir" => opts.model_dir = Some(value("--model-dir")?),
                "--threads" => opts.threads = int("--threads")?,
                "--max-jobs" => opts.max_jobs = int("--max-jobs")?,
                "--max-running-jobs" => opts.max_running_jobs = int("--max-running-jobs")?,
                "--max-conn-requests" => opts.max_conn_requests = int("--max-conn-requests")?,
                "--idle-timeout-ms" => opts.idle_timeout_ms = int("--idle-timeout-ms")? as u64,
                "--log-level" => {
                    let raw = value("--log-level")?;
                    opts.log_level = caffeine_obs::Level::parse(&raw).map_err(|_| {
                        format!("--log-level must be error, warn, info, or debug (got `{raw}`)")
                    })?;
                }
                "--log-format" => {
                    let raw = value("--log-format")?;
                    opts.log_format = caffeine_obs::LogFormat::parse(&raw)
                        .map_err(|_| format!("--log-format must be text or json (got `{raw}`)"))?;
                }
                "--slow-request-ms" => opts.slow_request_ms = int("--slow-request-ms")? as u64,
                "--trace-capacity" => opts.trace_capacity = int("--trace-capacity")?,
                "--trace-sample-rate" => {
                    let raw = value("--trace-sample-rate")?;
                    let rate: f64 = raw.parse().map_err(|_| {
                        format!("--trace-sample-rate needs a number in 0..=1 (got `{raw}`)")
                    })?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!(
                            "--trace-sample-rate needs a number in 0..=1 (got `{raw}`)"
                        ));
                    }
                    opts.trace_sample_rate = rate;
                }
                other => return Err(format!("unknown serve flag `{other}` (see --help)")),
            }
        }
        Ok(opts)
    }
}

/// Parsed options of `caffeine-cli jobs <list|submit|watch>`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobsOptions {
    /// The action: `list`, `submit`, or `watch`.
    pub action: String,
    /// Server base URL.
    pub remote: String,
    /// Job id (required by `watch`).
    pub id: Option<u64>,
    /// State filter for `list`.
    pub state: Option<String>,
    /// `watch` only: print a per-phase timing line for each progress
    /// frame instead of the raw frame JSON.
    pub timings: bool,
    /// Job spec JSON file (required by `submit`).
    pub spec: Option<String>,
}

impl JobsOptions {
    /// Parses the arguments after the `jobs` subcommand: an action word
    /// (`list`, `submit`, or `watch`) followed by `--remote`, `--id`,
    /// `--state`, `--spec`.
    ///
    /// # Errors
    ///
    /// A message for a missing/unknown action, unknown flags, missing
    /// values, a `watch` without `--id`, or a `submit` without `--spec`.
    pub fn parse(args: &[String]) -> Result<JobsOptions, String> {
        let action = match args.first().map(String::as_str) {
            Some(a @ ("list" | "submit" | "watch")) => a.to_string(),
            Some(other) => {
                return Err(format!(
                    "unknown jobs action `{other}` (use list, submit, or watch)"
                ))
            }
            None => return Err("jobs needs an action: list, submit, or watch".to_string()),
        };
        let mut remote = None;
        let mut id = None;
        let mut state = None;
        let mut timings = false;
        let mut spec = None;
        let mut it = args[1..].iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--remote" => remote = Some(value("--remote")?),
                "--id" => {
                    id = Some(
                        value("--id")?
                            .parse()
                            .map_err(|_| "--id needs a job id (integer)".to_string())?,
                    )
                }
                "--state" => state = Some(value("--state")?),
                "--timings" => timings = true,
                "--spec" => spec = Some(value("--spec")?),
                other => return Err(format!("unknown jobs flag `{other}` (see --help)")),
            }
        }
        let opts = JobsOptions {
            action,
            remote: remote.ok_or("jobs needs --remote http://host:port")?,
            id,
            state,
            timings,
            spec,
        };
        if opts.action == "watch" && opts.id.is_none() {
            return Err("jobs watch needs --id <job>".to_string());
        }
        if opts.timings && opts.action != "watch" {
            return Err("--timings only applies to jobs watch".to_string());
        }
        if opts.action == "submit" && opts.spec.is_none() {
            return Err("jobs submit needs --spec <file.json>".to_string());
        }
        if opts.spec.is_some() && opts.action != "submit" {
            return Err("--spec only applies to jobs submit".to_string());
        }
        Ok(opts)
    }
}

/// Parsed options of `caffeine-cli predict`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictOptions {
    /// Server base URL, e.g. `http://127.0.0.1:7878`.
    pub remote: String,
    /// Registry model id.
    pub model: String,
    /// Pinned artifact version (latest when absent).
    pub version: Option<String>,
    /// CSV of input points (header row = variable names, no target).
    pub points: String,
    /// Optional JSON output path for the predictions.
    pub out: Option<String>,
}

impl PredictOptions {
    /// Parses the arguments after the `predict` subcommand.
    ///
    /// # Errors
    ///
    /// A message for unknown flags, missing values, or missing required
    /// flags (`--remote`, `--model`, `--points`).
    pub fn parse(args: &[String]) -> Result<PredictOptions, String> {
        let mut remote = None;
        let mut model = None;
        let mut version = None;
        let mut points = None;
        let mut out = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--remote" => remote = Some(value("--remote")?),
                "--model" => model = Some(value("--model")?),
                "--version" => version = Some(value("--version")?),
                "--points" => points = Some(value("--points")?),
                "--out" => out = Some(value("--out")?),
                other => return Err(format!("unknown predict flag `{other}` (see --help)")),
            }
        }
        Ok(PredictOptions {
            remote: remote.ok_or("predict needs --remote http://host:port")?,
            model: model.ok_or("predict needs --model <id>")?,
            version,
            points: points.ok_or("predict needs --points <file.csv>")?,
            out,
        })
    }
}

/// Parses a headers-only CSV of input points (every column is a design
/// variable; no target column).
///
/// # Errors
///
/// A message naming the line for ragged rows or non-numeric cells.
pub fn parse_points_csv(text: &str) -> Result<(Vec<String>, Vec<Vec<f64>>), String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty CSV")?;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let mut rows = Vec::new();
    for (lineno, line) in lines {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != names.len() {
            return Err(format!(
                "line {}: expected {} cells, got {}",
                lineno + 1,
                names.len(),
                cells.len()
            ));
        }
        let row: Result<Vec<f64>, String> = cells
            .iter()
            .map(|cell| {
                cell.parse()
                    .map_err(|_| format!("line {}: `{cell}` is not a number", lineno + 1))
            })
            .collect();
        rows.push(row?);
    }
    if rows.is_empty() {
        return Err("CSV has a header but no data rows".into());
    }
    Ok((names, rows))
}

/// The usage text.
pub fn usage() -> &'static str {
    "caffeine-cli: template-free symbolic modeling (CAFFEINE, DATE 2005)\n\
     \n\
     usage: caffeine-cli --data train.csv [options]\n\
     \n\
     subcommands:\n\
       serve   --addr <host:port> --model-dir <dir> --threads <n>\n\
               [--max-jobs <n>] [--max-running-jobs <n>] [--max-conn-requests <n>]\n\
               [--idle-timeout-ms <n>] [--log-level <error|warn|info|debug>]\n\
               [--log-format <text|json>] [--slow-request-ms <n>]\n\
               [--trace-capacity <n>] [--trace-sample-rate <0..1>]\n\
               run the caffeine-serve daemon (model registry, batched\n\
               /predict, async /jobs with FIFO queued admission — at most\n\
               --max-running-jobs run at once, default = --threads — SSE\n\
               events off a dedicated streamer thread, HTTP keep-alive,\n\
               structured access logs with X-Request-Id tracing, span\n\
               trees per request at /v1/traces (tail-sampled: slow,\n\
               errored, and explicitly requested traces always kept), a\n\
               live HTML dashboard at /dashboard, engine phase timings in\n\
               /metrics, /healthz liveness + /readyz readiness; default\n\
               addr 127.0.0.1:7878; interrupted jobs found under\n\
               --model-dir/.jobs are re-adopted on start; see\n\
               docs/API.md and docs/OBSERVABILITY.md)\n\
       predict --remote http://host:port --model <id> --points <file.csv>\n\
               [--version <hash>] [--out <file.json>]\n\
               query a remote model with a CSV of input points\n\
       jobs    list   --remote http://host:port [--state <s>]\n\
               submit --remote http://host:port --spec <file.json>\n\
               watch  --remote http://host:port --id <job> [--timings]\n\
               list server jobs / submit a job spec (prints the job id\n\
               and its trace id) / tail one job's live SSE event stream\n\
               (--timings renders each progress frame's per-phase\n\
               breakdown as a one-line summary)\n\
     \n\
     options:\n\
       --data <file>       training CSV (header row = variable names)\n\
       --target <name>     target column (default: last column)\n\
       --test <file>       held-out CSV for testing error + SAG filtering\n\
       --grammar <file>    grammar configuration file\n\
       --out <file>        write the model front as JSON\n\
       --pop <n>           population size (default 200)\n\
       --gens <n>          generations (default 300)\n\
       --max-bases <n>     max basis functions per model (default 10)\n\
       --seed <n>          RNG seed (default 0)\n\
     \n\
     runtime options (caffeine-runtime):\n\
       --threads <n>          evaluation worker threads; any n reproduces\n\
                              the --threads 1 result exactly (default 1)\n\
       --islands <k>          island-model islands; the population is split\n\
                              over them (default 1)\n\
       --migrate-every <n>    ring-migrate nondominated individuals every n\n\
                              generations, 0 disables (default 25)\n\
       --checkpoint <file>    write resumable JSON snapshots of the run\n\
       --checkpoint-every <n> snapshot cadence in generations\n\
                              (default: only on completion)\n\
       --resume               continue from --checkpoint if the file exists\n"
}

/// Parses a simple CSV (comma-separated, header row, no quoting) into a
/// [`Dataset`] with the `target` column as `y`.
///
/// # Errors
///
/// Returns a message naming the line for ragged rows, non-numeric cells,
/// an unknown target column, or fewer than two columns.
pub fn parse_csv(text: &str, target: Option<&str>) -> Result<Dataset, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty CSV")?;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if names.len() < 2 {
        return Err("need at least one input column and the target".into());
    }
    let target_idx = match target {
        Some(t) => names
            .iter()
            .position(|n| n == t)
            .ok_or_else(|| format!("target column `{t}` not found in header"))?,
        None => names.len() - 1,
    };
    let var_names: Vec<String> = names
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != target_idx)
        .map(|(_, n)| n.clone())
        .collect();

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (lineno, line) in lines {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != names.len() {
            return Err(format!(
                "line {}: expected {} cells, got {}",
                lineno + 1,
                names.len(),
                cells.len()
            ));
        }
        let mut row = Vec::with_capacity(names.len() - 1);
        let mut y = f64::NAN;
        for (i, cell) in cells.iter().enumerate() {
            let v: f64 = cell
                .parse()
                .map_err(|_| format!("line {}: `{cell}` is not a number", lineno + 1))?;
            if i == target_idx {
                y = v;
            } else {
                row.push(v);
            }
        }
        xs.push(row);
        ys.push(y);
    }
    Dataset::new(var_names, xs, ys).map_err(|e| e.to_string())
}

/// Serializes a model front into the JSON document `--out` writes.
///
/// The document is a strict superset of the
/// [`caffeine_core::ModelArtifact`] schema (`schema_version`,
/// `var_names`, `models`), so it can be published to a `caffeine-serve`
/// registry as-is (`POST /v1/models/{id}` ignores the extra
/// human-readable `front` rows).
pub fn front_to_json(models: &[caffeine_core::Model], var_names: &[String]) -> serde_json::Value {
    let opts = caffeine_core::expr::FormatOptions::with_names(var_names.to_vec());
    let rows: Vec<serde_json::Value> = models
        .iter()
        .map(|m| {
            serde_json::json!({
                "expression": m.format(&opts),
                "train_error": m.train_error,
                "test_error": m.test_error,
                "complexity": m.complexity,
                "n_bases": m.n_bases(),
                "model": m,
            })
        })
        .collect();
    serde_json::json!({
        "schema_version": caffeine_core::MODEL_SCHEMA_VERSION,
        "var_names": var_names,
        "models": models,
        "front": rows,
    })
}

/// Summary statistics of a front, for the CLI's closing line.
pub fn front_summary(models: &[caffeine_core::Model]) -> BTreeMap<&'static str, f64> {
    let mut out = BTreeMap::new();
    out.insert("models", models.len() as f64);
    out.insert(
        "best_train_error",
        models
            .iter()
            .map(|m| m.train_error)
            .fold(f64::INFINITY, f64::min),
    );
    out.insert(
        "max_complexity",
        models.iter().map(|m| m.complexity).fold(0.0, f64::max),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_csv_uses_last_column_by_default() {
        let csv = "a,b,y\n1,2,3\n4,5,6\n";
        let ds = parse_csv(csv, None).unwrap();
        assert_eq!(ds.names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(ds.targets(), &[3.0, 6.0]);
        assert_eq!(ds.point(1), &[4.0, 5.0]);
    }

    #[test]
    fn parse_csv_honors_named_target() {
        let csv = "a,y,b\n1,9,2\n";
        let ds = parse_csv(csv, Some("y")).unwrap();
        assert_eq!(ds.names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(ds.targets(), &[9.0]);
    }

    #[test]
    fn parse_csv_reports_errors_with_line_numbers() {
        assert!(parse_csv("", None).is_err());
        assert!(parse_csv("only\n1\n", None).is_err());
        let ragged = parse_csv("a,y\n1\n", None).unwrap_err();
        assert!(ragged.contains("line 2"), "{ragged}");
        let nonnum = parse_csv("a,y\n1,x\n", None).unwrap_err();
        assert!(nonnum.contains("not a number"), "{nonnum}");
        let badtarget = parse_csv("a,y\n1,2\n", Some("z")).unwrap_err();
        assert!(badtarget.contains("`z`"), "{badtarget}");
    }

    #[test]
    fn parse_csv_skips_blank_lines() {
        let ds = parse_csv("a,y\n\n1,2\n\n3,4\n", None).unwrap();
        assert_eq!(ds.n_samples(), 2);
    }

    #[test]
    fn options_parse_full_flag_set() {
        let args: Vec<String> = [
            "--data",
            "d.csv",
            "--target",
            "pm",
            "--test",
            "t.csv",
            "--pop",
            "50",
            "--gens",
            "10",
            "--max-bases",
            "4",
            "--seed",
            "9",
            "--out",
            "m.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = CliOptions::parse(&args).unwrap();
        assert_eq!(o.data, "d.csv");
        assert_eq!(o.target.as_deref(), Some("pm"));
        assert_eq!(o.population, 50);
        assert_eq!(o.generations, 10);
        assert_eq!(o.max_bases, 4);
        assert_eq!(o.seed, 9);
        assert_eq!(o.out.as_deref(), Some("m.json"));
        let s = o.settings();
        assert_eq!(s.population, 50);
        assert_eq!(s.max_bases, 4);
    }

    #[test]
    fn options_reject_bad_input() {
        let parse =
            |v: &[&str]| CliOptions::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert!(parse(&[]).is_err()); // missing --data
        assert!(parse(&["--data"]).is_err()); // missing value
        assert!(parse(&["--data", "x", "--pop", "abc"]).is_err());
        assert!(parse(&["--data", "x", "--wat", "1"]).is_err());
    }

    #[test]
    fn options_parse_runtime_flags() {
        let args: Vec<String> = [
            "--data",
            "d.csv",
            "--threads",
            "8",
            "--islands",
            "4",
            "--migrate-every",
            "10",
            "--checkpoint",
            "run.ckpt",
            "--checkpoint-every",
            "50",
            "--resume",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = CliOptions::parse(&args).unwrap();
        assert_eq!(o.threads, 8);
        assert_eq!(o.islands, 4);
        assert_eq!(o.migrate_every, 10);
        assert_eq!(o.checkpoint.as_deref(), Some("run.ckpt"));
        assert_eq!(o.checkpoint_every, 50);
        assert!(o.resume);
        let rc = o.runtime_config();
        assert_eq!(rc.threads, 8);
        assert_eq!(rc.islands, 4);
        assert_eq!(rc.migrate_every, 10);
        assert_eq!(rc.checkpoint_every, 50);
    }

    #[test]
    fn explicit_flags_are_tracked() {
        let args: Vec<String> = ["--data", "d.csv", "--gens", "40", "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = CliOptions::parse(&args).unwrap();
        assert!(o.was_set("--gens"));
        assert!(o.was_set("--threads"));
        // Defaults are not "set": bare resume must keep the checkpointed
        // total instead of truncating to the default generations.
        assert!(!o.was_set("--pop"));
        assert!(!o.was_set("--checkpoint-every"));
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        let parse =
            |v: &[&str]| CliOptions::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let err = parse(&["--data", "a.csv", "--data", "b.csv"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        assert!(err.contains("--data"), "{err}");
        let err = parse(&["--data", "a.csv", "--seed", "1", "--seed", "2"]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn unknown_flags_suggest_the_nearest_known_one() {
        let parse =
            |v: &[&str]| CliOptions::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let err = parse(&["--data", "x", "--thread", "4"]).unwrap_err();
        assert!(err.contains("did you mean `--threads`"), "{err}");
        let err = parse(&["--data", "x", "--sed", "4"]).unwrap_err();
        assert!(err.contains("did you mean `--seed`"), "{err}");
        let err = parse(&["--data", "x", "--migrateevery", "4"]).unwrap_err();
        assert!(err.contains("did you mean `--migrate-every`"), "{err}");
        // Nothing plausible: no suggestion.
        let err = parse(&["--data", "x", "--zzzzqqqq", "4"]).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn resume_requires_checkpoint() {
        let args: Vec<String> = ["--data", "d.csv", "--resume"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = CliOptions::parse(&args).unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
    }

    #[test]
    fn default_grammar_matches_data_dimensionality() {
        let o = CliOptions {
            data: "d.csv".into(),
            ..CliOptions::default()
        };
        let g = o.resolve_grammar(7).unwrap();
        assert_eq!(g.n_vars, 7);
    }

    #[test]
    fn front_json_and_summary() {
        use caffeine_core::expr::{BasisFunction, VarCombo, WeightConfig};
        let m = caffeine_core::Model::new(
            vec![BasisFunction::from_vc(VarCombo::single(1, 0, -1))],
            vec![1.0, 2.0],
            WeightConfig::default(),
        )
        .with_metrics(0.05, 11.25);
        let json = front_to_json(std::slice::from_ref(&m), &["x".to_string()]);
        assert_eq!(json["front"][0]["n_bases"], 1);
        // The --out document is a publishable artifact superset.
        let artifact =
            caffeine_core::ModelArtifact::from_json(&serde_json::to_string(&json).unwrap())
                .unwrap();
        assert_eq!(artifact.models, vec![m.clone()]);
        assert_eq!(artifact.var_names, vec!["x".to_string()]);
        assert!(json["front"][0]["expression"]
            .as_str()
            .unwrap()
            .contains("1 / x"));
        let summary = front_summary(&[m]);
        assert_eq!(summary["models"], 1.0);
        assert!((summary["best_train_error"] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn serve_options_parse_and_default() {
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:9000",
            "--model-dir",
            "mdl",
            "--threads",
            "8",
            "--max-jobs",
            "5",
            "--max-running-jobs",
            "3",
            "--max-conn-requests",
            "32",
            "--idle-timeout-ms",
            "750",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = ServeOptions::parse(&args).unwrap();
        assert_eq!(o.addr, "0.0.0.0:9000");
        assert_eq!(o.model_dir.as_deref(), Some("mdl"));
        assert_eq!(o.threads, 8);
        assert_eq!(o.max_jobs, 5);
        assert_eq!(o.max_running_jobs, 3);
        assert_eq!(o.max_conn_requests, 32);
        assert_eq!(o.idle_timeout_ms, 750);
        assert_eq!(ServeOptions::parse(&[]).unwrap(), ServeOptions::default());
        assert_eq!(ServeOptions::default().max_jobs, 64);
        // 0 = "same as --threads": resolved at bind time, not parse time.
        assert_eq!(ServeOptions::default().max_running_jobs, 0);
        assert!(ServeOptions::parse(&["--wat".to_string()]).is_err());
        assert!(ServeOptions::parse(&["--addr".to_string()]).is_err());
        assert!(ServeOptions::parse(&["--max-jobs".to_string(), "x".to_string()]).is_err());
        assert!(ServeOptions::parse(&["--max-running-jobs".to_string()]).is_err());
    }

    #[test]
    fn serve_options_parse_observability_flags() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let o = ServeOptions::parse(&to_args(&[
            "--log-level",
            "debug",
            "--log-format",
            "json",
            "--slow-request-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(o.log_level, caffeine_obs::Level::Debug);
        assert_eq!(o.log_format, caffeine_obs::LogFormat::Json);
        assert_eq!(o.slow_request_ms, 250);
        // Defaults: info-level text logs, 1s slow threshold.
        let d = ServeOptions::default();
        assert_eq!(d.log_level, caffeine_obs::Level::Info);
        assert_eq!(d.log_format, caffeine_obs::LogFormat::Text);
        assert_eq!(d.slow_request_ms, 1_000);
        // Bad values are named in the error.
        let err = ServeOptions::parse(&to_args(&["--log-level", "loud"])).unwrap_err();
        assert!(err.contains("`loud`"), "{err}");
        let err = ServeOptions::parse(&to_args(&["--log-format", "xml"])).unwrap_err();
        assert!(err.contains("`xml`"), "{err}");
        assert!(ServeOptions::parse(&to_args(&["--slow-request-ms", "x"])).is_err());
        // Trace-store tuning.
        let o = ServeOptions::parse(&to_args(&[
            "--trace-capacity",
            "512",
            "--trace-sample-rate",
            "0.25",
        ]))
        .unwrap();
        assert_eq!(o.trace_capacity, 512);
        assert!((o.trace_sample_rate - 0.25).abs() < 1e-12);
        assert_eq!(d.trace_capacity, 256);
        assert!((d.trace_sample_rate - 0.1).abs() < 1e-12);
        let err = ServeOptions::parse(&to_args(&["--trace-sample-rate", "1.5"])).unwrap_err();
        assert!(err.contains("0..=1"), "{err}");
        assert!(ServeOptions::parse(&to_args(&["--trace-sample-rate", "x"])).is_err());
        assert!(ServeOptions::parse(&to_args(&["--trace-capacity", "x"])).is_err());
    }

    #[test]
    fn jobs_options_parse_actions_and_requirements() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let o = JobsOptions::parse(&to_args(&[
            "watch",
            "--remote",
            "http://127.0.0.1:7878",
            "--id",
            "7",
        ]))
        .unwrap();
        assert_eq!(o.action, "watch");
        assert_eq!(o.id, Some(7));
        let o = JobsOptions::parse(&to_args(&[
            "list",
            "--remote",
            "http://x:1",
            "--state",
            "running",
        ]))
        .unwrap();
        assert_eq!(o.action, "list");
        assert_eq!(o.state.as_deref(), Some("running"));
        assert!(o.id.is_none());
        assert!(!o.timings);
        let o = JobsOptions::parse(&to_args(&[
            "watch",
            "--remote",
            "http://x:1",
            "--id",
            "3",
            "--timings",
        ]))
        .unwrap();
        assert!(o.timings);
        // --timings is a watch-only flag.
        let err = JobsOptions::parse(&to_args(&["list", "--remote", "http://x:1", "--timings"]))
            .unwrap_err();
        assert!(err.contains("--timings"), "{err}");
        // submit needs --spec (and --spec is submit-only).
        let o = JobsOptions::parse(&to_args(&[
            "submit",
            "--remote",
            "http://x:1",
            "--spec",
            "job.json",
        ]))
        .unwrap();
        assert_eq!(o.action, "submit");
        assert_eq!(o.spec.as_deref(), Some("job.json"));
        let err = JobsOptions::parse(&to_args(&["submit", "--remote", "http://x:1"])).unwrap_err();
        assert!(err.contains("--spec"), "{err}");
        let err = JobsOptions::parse(&to_args(&[
            "list",
            "--remote",
            "http://x:1",
            "--spec",
            "job.json",
        ]))
        .unwrap_err();
        assert!(err.contains("--spec"), "{err}");
        // watch without --id, missing remote, unknown action/flags.
        let err = JobsOptions::parse(&to_args(&["watch", "--remote", "http://x:1"])).unwrap_err();
        assert!(err.contains("--id"), "{err}");
        let err = JobsOptions::parse(&to_args(&["list"])).unwrap_err();
        assert!(err.contains("--remote"), "{err}");
        assert!(JobsOptions::parse(&to_args(&["purge"])).is_err());
        assert!(JobsOptions::parse(&to_args(&[])).is_err());
        assert!(JobsOptions::parse(&to_args(&["list", "--wat"])).is_err());
        assert!(
            JobsOptions::parse(&to_args(&["watch", "--remote", "http://x", "--id", "z"])).is_err()
        );
    }

    #[test]
    fn predict_options_require_the_essentials() {
        let args: Vec<String> = [
            "--remote",
            "http://127.0.0.1:7878",
            "--model",
            "ota-gain",
            "--points",
            "p.csv",
            "--version",
            "abc",
            "--out",
            "preds.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = PredictOptions::parse(&args).unwrap();
        assert_eq!(o.model, "ota-gain");
        assert_eq!(o.version.as_deref(), Some("abc"));
        let err = PredictOptions::parse(&["--model".to_string(), "m".to_string()]).unwrap_err();
        assert!(err.contains("--remote"), "{err}");
        let err = PredictOptions::parse(&[
            "--remote".to_string(),
            "http://x".to_string(),
            "--model".to_string(),
            "m".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("--points"), "{err}");
    }

    #[test]
    fn points_csv_parses_all_columns_as_inputs() {
        let (names, rows) = parse_points_csv("w,l\n1,2\n3,4\n").unwrap();
        assert_eq!(names, vec!["w".to_string(), "l".to_string()]);
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(parse_points_csv("").is_err());
        assert!(parse_points_csv("w,l\n").is_err());
        assert!(parse_points_csv("w,l\n1\n").unwrap_err().contains("line 2"));
        assert!(parse_points_csv("w\nx\n")
            .unwrap_err()
            .contains("not a number"));
    }

    #[test]
    fn front_json_declares_its_schema_version() {
        let json = front_to_json(&[], &[]);
        assert_eq!(
            json["schema_version"],
            u64::from(caffeine_core::MODEL_SCHEMA_VERSION)
        );
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage();
        for flag in super::KNOWN_FLAGS {
            assert!(u.contains(flag), "usage missing {flag}");
        }
    }
}
