//! CAFFEINE: template-free symbolic model generation of analog circuits.
//!
//! Umbrella crate re-exporting the workspace members. See `caffeine-core`
//! for the algorithm, `caffeine-circuit` for the OTA testbench, and the
//! examples for end-to-end usage.

pub use caffeine_circuit as circuit;
pub use caffeine_core as core;
pub use caffeine_doe as doe;
pub use caffeine_linalg as linalg;
pub use caffeine_obs as obs;
pub use caffeine_posynomial as posynomial;
pub use caffeine_runtime as runtime;
pub use caffeine_serve as serve;

pub mod cli;
