//! `caffeine-cli` — template-free symbolic modeling from CSV data.
//!
//! ```text
//! caffeine-cli --data measurements.csv --target PM --test holdout.csv \
//!              --gens 500 --out models.json
//! ```
//!
//! Reads `{x, y}` samples from a CSV (header row = variable names), runs
//! the CAFFEINE engine, applies SAG post-processing when a test set is
//! given, and prints the error/complexity tradeoff as readable
//! expressions.

use caffeine::cli::{front_summary, front_to_json, parse_csv, usage, CliOptions};
use caffeine::core::expr::FormatOptions;
use caffeine::core::sag::{simplify_front, SagSettings};
use caffeine::core::{pareto, CaffeineEngine};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    if let Err(msg) = run(&args) {
        eprintln!("error: {msg}");
        eprintln!();
        eprint!("{}", usage());
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = CliOptions::parse(args)?;

    let text = std::fs::read_to_string(&opts.data)
        .map_err(|e| format!("cannot read {}: {e}", opts.data))?;
    let mut train = parse_csv(&text, opts.target.as_deref())?;
    let dropped = train.drop_nonfinite();
    if dropped > 0 {
        eprintln!("dropped {dropped} samples with non-finite values");
    }
    eprintln!(
        "training data: {} samples, {} variables",
        train.n_samples(),
        train.n_vars()
    );

    let test = match &opts.test {
        Some(path) => {
            let t = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut ds = parse_csv(&t, opts.target.as_deref())?;
            ds.drop_nonfinite();
            Some(ds)
        }
        None => None,
    };

    let grammar = opts.resolve_grammar(train.n_vars())?;
    let engine = CaffeineEngine::new(opts.settings(), grammar);
    eprintln!(
        "evolving: pop {}, {} generations, max {} bases...",
        opts.population, opts.generations, opts.max_bases
    );
    let result = engine.run(&train).map_err(|e| e.to_string())?;

    let cw = caffeine::core::expr::ComplexityWeights::default();
    let models: Vec<_> = match &test {
        Some(test_ds) => {
            let sag = SagSettings::default();
            let simplified = simplify_front(&result.models, &train, test_ds, &sag);
            pareto::train_tradeoff(&simplified)
        }
        None => result.models.clone(),
    }
    .iter()
    .map(|m| m.simplified(&cw))
    .collect();

    let fmt = FormatOptions::with_names(train.names().to_vec());
    println!("{:>10} {:>10} {:>12}  expression", "train", "test", "complexity");
    for m in &models {
        let test_str = m
            .test_error
            .map(|t| format!("{:.3}%", 100.0 * t))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>9.3}% {:>10} {:>12.2}  {}",
            100.0 * m.train_error,
            test_str,
            m.complexity,
            m.format(&fmt)
        );
    }

    if let Some(path) = &opts.out {
        let json = front_to_json(&models, train.names());
        std::fs::write(path, serde_json::to_string_pretty(&json).unwrap())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("front written to {path}");
    }

    let summary = front_summary(&models);
    eprintln!(
        "done: {} models, best training error {:.4}%",
        summary["models"],
        100.0 * summary["best_train_error"]
    );
    Ok(())
}
