//! `caffeine-cli` — template-free symbolic modeling from CSV data.
//!
//! ```text
//! caffeine-cli --data measurements.csv --target PM --test holdout.csv \
//!              --gens 500 --threads 8 --islands 4 \
//!              --checkpoint pm.ckpt --out models.json
//! ```
//!
//! Reads `{x, y}` samples from a CSV (header row = variable names), runs
//! the CAFFEINE engine through the `caffeine-runtime` island runner
//! (parallel evaluation, optional islands, resumable checkpoints), applies
//! SAG post-processing when a test set is given, and prints the
//! error/complexity tradeoff as readable expressions.

use std::path::Path;
use std::time::Duration;

use caffeine::cli::{
    front_summary, front_to_json, parse_csv, parse_points_csv, usage, CliOptions, JobsOptions,
    PredictOptions, ServeOptions,
};
use caffeine::core::expr::FormatOptions;
use caffeine::core::sag::{simplify_front, SagSettings};
use caffeine::core::{pareto, CaffeineResult};
use caffeine::runtime::{IslandRunner, RunEvent, RuntimeCheckpoint};
use caffeine::serve::{client, ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    let outcome = match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("predict") => run_predict(&args[1..]),
        Some("jobs") => run_jobs(&args[1..]),
        _ => run(&args),
    };
    if let Err(msg) = outcome {
        eprintln!("error: {msg}");
        eprintln!();
        eprint!("{}", usage());
        std::process::exit(1);
    }
}

/// `caffeine-cli serve`: run the daemon until a shutdown request.
fn run_serve(args: &[String]) -> Result<(), String> {
    let opts = ServeOptions::parse(args)?;
    let server = Server::bind(ServeConfig {
        addr: opts.addr.clone(),
        model_dir: opts.model_dir.clone().map(Into::into),
        workers: opts.threads.max(1),
        max_jobs: opts.max_jobs,
        max_running_jobs: opts.max_running_jobs,
        max_conn_requests: opts.max_conn_requests,
        idle_timeout: Duration::from_millis(opts.idle_timeout_ms),
        logger: caffeine::obs::Logger::stderr(opts.log_level, opts.log_format),
        slow_request: Duration::from_millis(opts.slow_request_ms),
        trace_capacity: opts.trace_capacity,
        trace_sample_rate: opts.trace_sample_rate,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    eprintln!(
        "caffeine-serve listening on {} ({} worker(s), registry: {})",
        server.local_addr(),
        opts.threads.max(1),
        opts.model_dir.as_deref().unwrap_or("in-memory"),
    );
    eprintln!(
        "stop with: curl -X POST http://{}/v1/admin/shutdown",
        server.local_addr()
    );
    server
        .serve()
        .map_err(|e| format!("serve loop failed: {e}"))
}

/// `caffeine-cli predict --remote`: batch-query a served model.
fn run_predict(args: &[String]) -> Result<(), String> {
    let opts = PredictOptions::parse(args)?;
    let (addr, base) = client::parse_base_url(&opts.remote)?;
    let text = std::fs::read_to_string(&opts.points)
        .map_err(|e| format!("cannot read {}: {e}", opts.points))?;
    let (names, rows) = parse_points_csv(&text)?;
    eprintln!(
        "querying {} for model `{}` with {} point(s) ({} variable(s))",
        opts.remote,
        opts.model,
        rows.len(),
        names.len()
    );
    let path = match &opts.version {
        Some(v) => format!("{base}/v1/models/{}/predict?version={v}", opts.model),
        None => format!("{base}/v1/models/{}/predict", opts.model),
    };
    let body = serde_json::to_string(&serde_json::json!({ "points": rows })).expect("body renders");
    let response = client::request(
        &addr,
        "POST",
        &path,
        Some(body.as_bytes()),
        Duration::from_secs(60),
    )
    .map_err(|e| format!("request to {addr} failed: {e}"))?;
    let json = response
        .json()
        .map_err(|e| format!("server sent a non-JSON response: {e}"))?;
    if response.status != 200 {
        let detail = json["error"]["message"].as_str().unwrap_or("unknown error");
        return Err(format!("server answered {}: {detail}", response.status));
    }
    let predictions = json["predictions"]
        .as_array()
        .ok_or("response has no `predictions` array")?;
    for p in predictions {
        println!("{}", p.as_f64().unwrap_or(f64::NAN));
    }
    eprintln!(
        "model version {} answered {} prediction(s)",
        json["version"].as_str().unwrap_or("?"),
        predictions.len()
    );
    if let Some(out) = &opts.out {
        std::fs::write(out, serde_json::to_string_pretty(&json).unwrap())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("response written to {out}");
    }
    Ok(())
}

/// `caffeine-cli jobs list|submit|watch`: inspect a remote daemon's job
/// store, submit a job spec, or tail a job's event stream.
fn run_jobs(args: &[String]) -> Result<(), String> {
    let opts = JobsOptions::parse(args)?;
    let (addr, base) = client::parse_base_url(&opts.remote)?;
    match opts.action.as_str() {
        "list" => {
            let path = match &opts.state {
                Some(s) => format!("{base}/v1/jobs?state={s}"),
                None => format!("{base}/v1/jobs"),
            };
            let response = client::request(&addr, "GET", &path, None, Duration::from_secs(30))
                .map_err(|e| format!("request to {addr} failed: {e}"))?;
            let json = response
                .json()
                .map_err(|e| format!("server sent a non-JSON response: {e}"))?;
            if response.status != 200 {
                let detail = json["error"]["message"].as_str().unwrap_or("unknown error");
                return Err(format!("server answered {}: {detail}", response.status));
            }
            let jobs = json["jobs"]
                .as_array()
                .ok_or("response has no `jobs` array")?;
            println!("{:>6}  {:>10}  {:>9}  model", "id", "state", "progress");
            for j in jobs {
                let done = j["progress"]["completed_generations"].as_u64().unwrap_or(0);
                let total = j["progress"]["total_generations"].as_u64().unwrap_or(0);
                println!(
                    "{:>6}  {:>10}  {:>4}/{:<4}  {}{}",
                    j["id"].as_u64().unwrap_or(0),
                    j["state"].as_str().unwrap_or("?"),
                    done,
                    total,
                    j["model_id"].as_str().unwrap_or("?"),
                    if j["resumed"] == serde_json::Value::Bool(true) {
                        " (resumed)"
                    } else {
                        ""
                    },
                );
            }
            eprintln!("{} job(s)", jobs.len());
            Ok(())
        }
        "submit" => {
            let spec_path = opts.spec.as_deref().expect("submit always has a spec");
            let body =
                std::fs::read(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
            // A sampled context asks the server to retain the trace, so
            // the id printed below stays queryable at /v1/traces.
            let mut ctx = caffeine::obs::TraceContext::mint();
            ctx.sampled = true;
            // Submission retries under the client's policy: a received
            // 429/503 (admission backpressure) honors the daemon's
            // Retry-After and re-submits — safe even for POST, since a
            // response in hand proves the job was refused, not spawned.
            let mut conn = client::Connection::new(&addr, Duration::from_secs(30));
            let response = conn
                .request_traced_with_retry(
                    "POST",
                    &format!("{base}/v1/jobs"),
                    Some(&body),
                    ctx,
                    &client::RetryPolicy::default(),
                )
                .map_err(|e| format!("request to {addr} failed: {e}"))?;
            let json = response
                .json()
                .map_err(|e| format!("server sent a non-JSON response: {e}"))?;
            if response.status != 201 {
                let detail = json["error"]["message"].as_str().unwrap_or("unknown error");
                return Err(format!("server answered {}: {detail}", response.status));
            }
            let id = json["id"].as_u64().unwrap_or(0);
            println!("{id}");
            eprintln!(
                "job {id} submitted (state: {}, trace: {})",
                json["state"].as_str().unwrap_or("?"),
                json["trace_id"].as_str().unwrap_or("?"),
            );
            eprintln!(
                "watch with: caffeine-cli jobs watch --remote {} --id {id}",
                opts.remote
            );
            Ok(())
        }
        _ => {
            let id = opts.id.expect("watch always has an id");
            // Show the job's trace id up front so the watcher can pull
            // the span tree from /v1/traces/{trace_id} afterwards.
            if let Ok(response) = client::request(
                &addr,
                "GET",
                &format!("{base}/v1/jobs/{id}"),
                None,
                Duration::from_secs(10),
            ) {
                if let Ok(json) = response.json() {
                    if let Some(trace) = json["trace_id"].as_str() {
                        eprintln!("job {id} trace: {trace}");
                    }
                }
            }
            let path = format!("{base}/v1/jobs/{id}/events");
            eprintln!(
                "tailing job {id} events from {} (ctrl-c to stop)",
                opts.remote
            );
            // The watch survives cut streams: on a transport failure it
            // reconnects and resumes from the server's replay history,
            // using SSE ids to skip frames already printed. A fresh
            // `snapshot` frame after each reconnect shows the current
            // state across the gap.
            let mut saw_done = false;
            client::watch_job(&addr, &path, &client::WatchOptions::default(), |event| {
                if opts.timings && event.event == "progress" {
                    match timings_line(&event.data) {
                        Some(line) => println!("{line}"),
                        None => println!("{}: {}", event.event, event.data),
                    }
                } else {
                    println!("{}: {}", event.event, event.data);
                }
                if event.event == "done" {
                    saw_done = true;
                }
                !saw_done
            })
            .map_err(|e| format!("event stream from {addr} failed: {e}"))?;
            // The watch ends cleanly either at `done` or after repeated
            // reconnects stopped yielding new frames — the latter means
            // the job is still running but this watcher cannot keep up.
            if !saw_done {
                return Err(format!(
                    "event stream for job {id} drained before a `done` event — reconnect \
                     attempts stopped yielding new frames; the job may still be running. \
                     Watch again with: caffeine-cli jobs watch --remote {} --id {id}",
                    opts.remote
                ));
            }
            Ok(())
        }
    }
}

/// Renders one SSE `progress` frame as a compact per-phase timing line
/// (`jobs watch --timings`). `None` when the frame has no phase data
/// (e.g. a frame from an older server).
fn timings_line(data: &str) -> Option<String> {
    let v: serde_json::Value = serde_json::from_str(data).ok()?;
    let phases = v.as_object()?.get("phases")?.as_object()?;
    let ms = |key: &str| phases.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0) * 1e3;
    let wall = ms("wall");
    let pct = |part: f64| {
        if wall > 0.0 {
            format!(" ({:.0}%)", 100.0 * part / wall)
        } else {
            String::new()
        }
    };
    let basis = ms("basis_eval");
    let solve = ms("linear_solve");
    let cache = match v["cache_hit_ratio"].as_f64() {
        Some(r) => format!("{:.1}%", 100.0 * r),
        None => "-".to_string(),
    };
    Some(format!(
        "gen {:>4}  wall {wall:.1}ms  basis {basis:.1}ms{}  solve {solve:.1}ms{}  \
         eval-other {:.1}ms  select {:.1}ms  migrate {:.1}ms  cache {cache}  \
         best_error {}",
        phases
            .get("generation")
            .and_then(|x| x.as_u64())
            .unwrap_or(0),
        pct(basis),
        pct(solve),
        ms("eval_other"),
        ms("selection"),
        ms("migration"),
        v["best_error"]
            .as_f64()
            .map_or_else(|| "-".to_string(), |e| format!("{e:.6}")),
    ))
}

fn evolve(opts: &CliOptions, train: &caffeine::doe::Dataset) -> Result<CaffeineResult, String> {
    let grammar = opts.resolve_grammar(train.n_vars())?;
    let settings = opts.settings();
    let config = opts.runtime_config();

    let resume_from = opts
        .checkpoint
        .as_deref()
        .filter(|p| opts.resume && Path::new(p).exists());
    let mut runner = match resume_from {
        Some(path) => {
            let checkpoint = RuntimeCheckpoint::load(Path::new(path)).map_err(|e| e.to_string())?;
            eprintln!(
                "resuming from {path}: {} of {} generations done",
                checkpoint.completed, checkpoint.master.generations
            );
            // Search-shaping flags are fixed by the checkpoint; warn when
            // the command line tries to change one instead of silently
            // ignoring it.
            for flag in [
                "--pop",
                "--seed",
                "--max-bases",
                "--islands",
                "--migrate-every",
            ] {
                if opts.was_set(flag) {
                    eprintln!("warning: {flag} is fixed by the checkpoint and was ignored");
                }
            }
            let mut runner =
                IslandRunner::from_checkpoint(checkpoint, train).map_err(|e| e.to_string())?;
            // An *explicit* `--gens` retargets the total so a resumed run
            // can be extended; otherwise the checkpointed total stands
            // (the bare-resume case must not truncate to the default).
            if opts.was_set("--gens") {
                runner.set_total_generations(opts.generations);
            }
            // Execution policy never changes the result: always honor it.
            runner.set_threads(opts.threads);
            if opts.was_set("--checkpoint-every") {
                runner.set_checkpoint_every(opts.checkpoint_every);
            }
            runner
        }
        None => IslandRunner::new(settings, grammar, config, train).map_err(|e| e.to_string())?,
    };
    if let Some(path) = &opts.checkpoint {
        runner.set_checkpoint_path(path);
    }

    // Live progress: print runtime events to stderr from a printer thread.
    let (tx, rx) = std::sync::mpsc::channel();
    runner.set_events(tx);
    let printer = std::thread::spawn(move || {
        for event in rx {
            match event {
                RunEvent::Progress { island, stats, .. } => eprintln!(
                    "gen {:>5} island {island}: best error {:.4}%, front {}, feasible {}",
                    stats.generation,
                    100.0 * stats.best_error,
                    stats.front_size,
                    stats.feasible
                ),
                RunEvent::Migrated { generation } => {
                    eprintln!("gen {generation:>5}: ring migration")
                }
                RunEvent::Checkpointed { generation, .. } => {
                    eprintln!("gen {generation:>5}: checkpoint written")
                }
                RunEvent::Finished { .. } => {}
            }
        }
    });
    let result = runner.run(train).map_err(|e| e.to_string());
    drop(runner); // closes the channel so the printer exits
    printer.join().expect("progress printer panicked");
    result
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = CliOptions::parse(args)?;

    let text = std::fs::read_to_string(&opts.data)
        .map_err(|e| format!("cannot read {}: {e}", opts.data))?;
    let mut train = parse_csv(&text, opts.target.as_deref())?;
    let dropped = train.drop_nonfinite();
    if dropped > 0 {
        eprintln!("dropped {dropped} samples with non-finite values");
    }
    eprintln!(
        "training data: {} samples, {} variables",
        train.n_samples(),
        train.n_vars()
    );

    let test = match &opts.test {
        Some(path) => {
            let t =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut ds = parse_csv(&t, opts.target.as_deref())?;
            ds.drop_nonfinite();
            Some(ds)
        }
        None => None,
    };

    eprintln!(
        "evolving: pop {}, {} generations, max {} bases, {} thread(s), {} island(s)...",
        opts.population, opts.generations, opts.max_bases, opts.threads, opts.islands
    );
    let result = evolve(&opts, &train)?;

    let cw = caffeine::core::expr::ComplexityWeights::default();
    let models: Vec<_> = match &test {
        Some(test_ds) => {
            let sag = SagSettings::default();
            let simplified = simplify_front(&result.models, &train, test_ds, &sag);
            pareto::train_tradeoff(&simplified)
        }
        None => result.models.clone(),
    }
    .iter()
    .map(|m| m.simplified(&cw))
    .collect();

    let fmt = FormatOptions::with_names(train.names().to_vec());
    println!(
        "{:>10} {:>10} {:>12}  expression",
        "train", "test", "complexity"
    );
    for m in &models {
        let test_str = m
            .test_error
            .map(|t| format!("{:.3}%", 100.0 * t))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>9.3}% {:>10} {:>12.2}  {}",
            100.0 * m.train_error,
            test_str,
            m.complexity,
            m.format(&fmt)
        );
    }

    if let Some(path) = &opts.out {
        let json = front_to_json(&models, train.names());
        std::fs::write(path, serde_json::to_string_pretty(&json).unwrap())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("front written to {path}");
    }

    let summary = front_summary(&models);
    eprintln!(
        "done: {} models, best training error {:.4}%",
        summary["models"],
        100.0 * summary["best_train_error"]
    );
    Ok(())
}
