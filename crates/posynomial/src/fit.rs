use caffeine_doe::Dataset;
use caffeine_linalg::{lstsq_ridge, nnls, Matrix};

use crate::model::{MonomialTerm, PosynomialModel};
use crate::template::TemplateSpec;
use crate::PosynomialError;

/// Validates posynomial preconditions and evaluates the template columns.
fn template_matrix(
    data: &Dataset,
    spec: &TemplateSpec,
) -> Result<(Matrix, Vec<Vec<i32>>), PosynomialError> {
    if data.n_samples() == 0 || data.n_vars() == 0 {
        return Err(PosynomialError::InvalidData("empty dataset".into()));
    }
    for p in data.points() {
        if p.iter().any(|&v| !(v > 0.0) || !v.is_finite()) {
            return Err(PosynomialError::InvalidData(
                "posynomial models require strictly positive design variables".into(),
            ));
        }
    }
    let exponents = spec.exponent_vectors(data.n_vars());
    if exponents.is_empty() {
        return Err(PosynomialError::EmptyTemplate);
    }
    let a = Matrix::from_fn(data.n_samples(), exponents.len(), |t, k| {
        let term = MonomialTerm {
            coefficient: 1.0,
            exponents: exponents[k].clone(),
        };
        term.monomial_value(data.point(t))
    });
    Ok((a, exponents))
}

/// Scales every column to unit RMS so the active-set solver works on a
/// well-conditioned system (raw monomial columns over physical units can
/// span 20 decades). Returns the scaled matrix and per-column norms.
fn normalize_columns(a: &Matrix) -> (Matrix, Vec<f64>) {
    let mut norms = vec![0.0f64; a.cols()];
    for j in 0..a.cols() {
        let col = a.column(j);
        let rms = (col.iter().map(|v| v * v).sum::<f64>() / a.rows().max(1) as f64).sqrt();
        norms[j] = if rms > 0.0 && rms.is_finite() {
            rms
        } else {
            1.0
        };
    }
    let scaled = Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(i, j)] / norms[j]);
    (scaled, norms)
}

/// Fits a posynomial model (non-negative coefficients) to the data.
///
/// Performances that are predominantly negative (e.g. a negative slew
/// rate) are fit on `−y` and flagged [`PosynomialModel::negated`], the
/// standard trick for positive-valued model families.
///
/// # Errors
///
/// * [`PosynomialError::InvalidData`] for empty data or non-positive
///   design values.
/// * [`PosynomialError::Linalg`] when the NNLS solver fails to converge.
pub fn fit_posynomial(
    data: &Dataset,
    spec: &TemplateSpec,
) -> Result<PosynomialModel, PosynomialError> {
    let (a, exponents) = template_matrix(data, spec)?;
    let mean: f64 = data.targets().iter().sum::<f64>() / data.n_samples() as f64;
    let negated = mean < 0.0;
    let y: Vec<f64> = if negated {
        data.targets().iter().map(|v| -v).collect()
    } else {
        data.targets().to_vec()
    };
    let (scaled, norms) = normalize_columns(&a);
    let solution = nnls(&scaled, &y)?;
    let terms = exponents
        .into_iter()
        .zip(solution.x.iter().zip(norms.iter()))
        .filter(|(_, (&c, _))| c > 0.0)
        .map(|(e, (&c, &n))| MonomialTerm {
            coefficient: c / n,
            exponents: e,
        })
        .collect();
    Ok(PosynomialModel {
        terms,
        negated,
        signomial: false,
        var_names: data.names().to_vec(),
    })
}

/// Fits a *signomial* model (signed coefficients, ridge-regularized least
/// squares) over the same template — a strictly more flexible baseline
/// used in the ablation experiments.
///
/// # Errors
///
/// Same as [`fit_posynomial`], except no NNLS convergence concern.
pub fn fit_signomial(
    data: &Dataset,
    spec: &TemplateSpec,
) -> Result<PosynomialModel, PosynomialError> {
    let (a, exponents) = template_matrix(data, spec)?;
    let (scaled, norms) = normalize_columns(&a);
    let coef = lstsq_ridge(&scaled, data.targets(), 1e-10)?;
    let terms = exponents
        .into_iter()
        .zip(coef.iter().zip(norms.iter()))
        .filter(|(_, (&c, _))| c != 0.0)
        .map(|(e, (&c, &n))| MonomialTerm {
            coefficient: c / n,
            exponents: e,
        })
        .collect();
    Ok(PosynomialModel {
        terms,
        negated: false,
        signomial: true,
        var_names: data.names().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d(f: impl Fn(f64, f64) -> f64) -> Dataset {
        let mut xs = Vec::new();
        for i in 1..=6 {
            for j in 1..=6 {
                xs.push(vec![0.5 + i as f64 * 0.25, 0.5 + j as f64 * 0.4]);
            }
        }
        let ys: Vec<f64> = xs.iter().map(|p| f(p[0], p[1])).collect();
        Dataset::new(vec!["a".into(), "b".into()], xs, ys).unwrap()
    }

    #[test]
    fn recovers_posynomial_ground_truth() {
        let data = grid_2d(|a, b| 1.5 + 2.0 * a + 3.0 / b + 0.5 * a / b);
        let model = fit_posynomial(&data, &TemplateSpec::order2()).unwrap();
        assert!(model.relative_rms_error(&data, 0.0) < 1e-8);
        assert!(model.terms.iter().all(|t| t.coefficient > 0.0));
        assert!(!model.negated);
    }

    #[test]
    fn negative_targets_use_negation() {
        let data = grid_2d(|a, b| -(2.0 * a + 1.0 / b));
        let model = fit_posynomial(&data, &TemplateSpec::order2()).unwrap();
        assert!(model.negated);
        assert!(model.relative_rms_error(&data, 0.0) < 1e-8);
        // Predictions carry the right sign.
        assert!(model.predict_one(&[1.0, 1.0]) < 0.0);
    }

    #[test]
    fn non_posynomial_target_shows_bias() {
        // y = sin-flavoured response: posynomial cannot fit exactly.
        let data = grid_2d(|a, b| (a * b).sin() + 3.0);
        let model = fit_posynomial(&data, &TemplateSpec::order2()).unwrap();
        let err = model.relative_rms_error(&data, 0.0);
        assert!(err > 1e-4, "template bias should leave residual, err={err}");
    }

    #[test]
    fn signomial_is_at_least_as_good_as_posynomial() {
        // A target with a genuinely negative coefficient.
        let data = grid_2d(|a, b| 5.0 + 2.0 * a - 3.0 / b);
        let pos = fit_posynomial(&data, &TemplateSpec::order2()).unwrap();
        let sig = fit_signomial(&data, &TemplateSpec::order2()).unwrap();
        let pe = pos.relative_rms_error(&data, 0.0);
        let se = sig.relative_rms_error(&data, 0.0);
        assert!(se <= pe + 1e-9, "signomial {se} vs posynomial {pe}");
        assert!(sig.signomial);
    }

    #[test]
    fn nonpositive_design_values_rejected() {
        let data =
            Dataset::new(vec!["a".into()], vec![vec![1.0], vec![0.0]], vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            fit_posynomial(&data, &TemplateSpec::order2()),
            Err(PosynomialError::InvalidData(_))
        ));
    }

    #[test]
    fn empty_dataset_rejected() {
        let data = Dataset::new(vec!["a".into()], vec![], vec![]).unwrap();
        assert!(fit_posynomial(&data, &TemplateSpec::order2()).is_err());
    }

    #[test]
    fn zero_coefficient_terms_are_dropped() {
        let data = grid_2d(|a, _| a);
        let model = fit_posynomial(&data, &TemplateSpec::order2()).unwrap();
        assert!(model.n_terms() < TemplateSpec::order2().n_terms(2));
    }
}
