//! Posynomial performance-model baseline.
//!
//! Implements the fixed-template approach CAFFEINE is compared against in
//! the paper's Fig. 4 (Daems, Gielen, Sansen — "Simulation-based generation
//! of posynomial performance models for the sizing of analog integrated
//! circuits", IEEE TCAD 22(5), 2003).
//!
//! A posynomial is `f(x) = Σ_k c_k · Π_i x_i^{α_ik}` with `c_k > 0` and
//! `x_i > 0`. The simulation-based flow fits the coefficients of a *fixed
//! term template* (monomials up to order 2 with integer exponents) to
//! sampled data; positivity makes the fit a non-negative least-squares
//! problem, solved here with the workspace's Lawson–Hanson kernel.
//!
//! The two key properties the paper contrasts with CAFFEINE both emerge
//! naturally from this construction:
//!
//! * the functional form is **constrained by the template** (bias when the
//!   true response is not posynomial), and
//! * the fitted models have **dozens of terms**, hurting interpretability
//!   and generalization (Fig. 4: posynomial testing error exceeds training
//!   error).
//!
//! # Example
//!
//! ```
//! use caffeine_doe::Dataset;
//! use caffeine_posynomial::{fit_posynomial, TemplateSpec};
//!
//! # fn main() -> Result<(), caffeine_posynomial::PosynomialError> {
//! // y = 2·x0 + 3/x1 is posynomial; the template recovers it.
//! let xs: Vec<Vec<f64>> = (1..=20)
//!     .map(|i| vec![1.0 + i as f64 * 0.1, 2.0 + (i % 5) as f64 * 0.3])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 3.0 / x[1]).collect();
//! let data = Dataset::new(vec!["a".into(), "b".into()], xs, ys).unwrap();
//! let model = fit_posynomial(&data, &TemplateSpec::order2())?;
//! let err = model.relative_rms_error(&data, 0.0);
//! assert!(err < 1e-6, "err = {err}");
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod fit;
mod model;
mod template;

pub use error::PosynomialError;
pub use fit::{fit_posynomial, fit_signomial};
pub use model::{MonomialTerm, PosynomialModel};
pub use template::TemplateSpec;
