use serde::{Deserialize, Serialize};

/// A fixed posynomial term template: which monomials are available to the
/// fit. This is exactly the "model template" CAFFEINE dispenses with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateSpec {
    /// Maximum absolute exponent for single-variable terms.
    pub max_single_exponent: i32,
    /// Include two-variable cross terms `x_i·x_j`, `x_i/x_j`, `x_j/x_i`,
    /// `1/(x_i·x_j)`.
    pub cross_terms: bool,
    /// Include the constant term.
    pub constant: bool,
}

impl TemplateSpec {
    /// The order-2 template of the simulation-based posynomial flow:
    /// constant, `x^±1`, `x^±2`, and all pairwise cross terms.
    pub fn order2() -> TemplateSpec {
        TemplateSpec {
            max_single_exponent: 2,
            cross_terms: true,
            constant: true,
        }
    }

    /// A small order-1 template (constant plus `x^±1`), useful when the
    /// sample budget is tight.
    pub fn order1() -> TemplateSpec {
        TemplateSpec {
            max_single_exponent: 1,
            cross_terms: false,
            constant: true,
        }
    }

    /// Generates the exponent vectors of every template term for `n_vars`
    /// design variables.
    pub fn exponent_vectors(&self, n_vars: usize) -> Vec<Vec<i32>> {
        let mut out = Vec::new();
        if self.constant {
            out.push(vec![0; n_vars]);
        }
        for i in 0..n_vars {
            for mag in 1..=self.max_single_exponent {
                for sign in [1, -1] {
                    let mut e = vec![0; n_vars];
                    e[i] = sign * mag;
                    out.push(e);
                }
            }
        }
        if self.cross_terms {
            for i in 0..n_vars {
                for j in (i + 1)..n_vars {
                    for (ei, ej) in [(1, 1), (1, -1), (-1, 1), (-1, -1)] {
                        let mut e = vec![0; n_vars];
                        e[i] = ei;
                        e[j] = ej;
                        out.push(e);
                    }
                }
            }
        }
        out
    }

    /// Number of terms the template generates for `n_vars` variables.
    pub fn n_terms(&self, n_vars: usize) -> usize {
        let singles = 2 * self.max_single_exponent as usize * n_vars;
        let crosses = if self.cross_terms {
            2 * n_vars * n_vars.saturating_sub(1)
        } else {
            0
        };
        usize::from(self.constant) + singles + crosses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order2_term_count_matches_formula() {
        let t = TemplateSpec::order2();
        for n in [1usize, 2, 5, 13] {
            let vecs = t.exponent_vectors(n);
            assert_eq!(vecs.len(), t.n_terms(n), "n = {n}");
        }
        // 13 vars: 1 + 52 + 312 = 365 terms.
        assert_eq!(t.n_terms(13), 365);
    }

    #[test]
    fn order1_has_no_cross_terms() {
        let t = TemplateSpec::order1();
        let vecs = t.exponent_vectors(3);
        assert!(vecs
            .iter()
            .all(|e| e.iter().filter(|&&v| v != 0).count() <= 1));
        assert_eq!(vecs.len(), 1 + 6);
    }

    #[test]
    fn all_terms_are_distinct() {
        let t = TemplateSpec::order2();
        let mut vecs = t.exponent_vectors(4);
        let before = vecs.len();
        vecs.sort();
        vecs.dedup();
        assert_eq!(vecs.len(), before);
    }

    #[test]
    fn exponents_respect_bounds() {
        let t = TemplateSpec::order2();
        for e in t.exponent_vectors(5) {
            assert!(e.iter().all(|v| v.abs() <= 2));
        }
    }
}
