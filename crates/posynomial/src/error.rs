use std::error::Error;
use std::fmt;

use caffeine_linalg::LinalgError;

/// Error type of the posynomial baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum PosynomialError {
    /// The dataset violates posynomial preconditions (empty, or design
    /// values that are not strictly positive).
    InvalidData(String),
    /// The template generated no terms.
    EmptyTemplate,
    /// Underlying numerical failure.
    Linalg(LinalgError),
}

impl fmt::Display for PosynomialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosynomialError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            PosynomialError::EmptyTemplate => write!(f, "template generated no terms"),
            PosynomialError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for PosynomialError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PosynomialError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for PosynomialError {
    fn from(e: LinalgError) -> Self {
        PosynomialError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        assert!(PosynomialError::InvalidData("neg".into())
            .to_string()
            .contains("neg"));
        assert!(!PosynomialError::EmptyTemplate.to_string().is_empty());
        let e: PosynomialError = LinalgError::Singular { pivot: 2 }.into();
        assert!(Error::source(&e).is_some());
    }
}
