use serde::{Deserialize, Serialize};

use caffeine_doe::Dataset;
use caffeine_linalg::stats;

/// One monomial term `c · Π x_i^{e_i}` with integer exponents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonomialTerm {
    /// Coefficient (`> 0` for a posynomial; any sign for a signomial).
    pub coefficient: f64,
    /// One integer exponent per design variable.
    pub exponents: Vec<i32>,
}

impl MonomialTerm {
    /// Evaluates the monomial (without coefficient) at a point.
    pub fn monomial_value(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.exponents.len());
        let mut acc = 1.0;
        for (&xi, &e) in x.iter().zip(self.exponents.iter()) {
            if e != 0 {
                acc *= xi.powi(e);
            }
        }
        acc
    }
}

/// A fitted posynomial (or signomial) model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PosynomialModel {
    /// The active terms (zero-coefficient template entries are dropped).
    pub terms: Vec<MonomialTerm>,
    /// `true` when the model was fit on `−y` because the target is
    /// predominantly negative (posynomials are positive-valued).
    pub negated: bool,
    /// `true` when coefficients were allowed to be negative (signomial).
    pub signomial: bool,
    /// Variable names, for display.
    pub var_names: Vec<String>,
}

impl PosynomialModel {
    /// Predicts one design point.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        let mut y = 0.0;
        for t in &self.terms {
            y += t.coefficient * t.monomial_value(x);
        }
        if self.negated {
            -y
        } else {
            y
        }
    }

    /// Predicts a batch of points.
    pub fn predict(&self, points: &[Vec<f64>]) -> Vec<f64> {
        points.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Number of active (nonzero-coefficient) terms — the "dozens of
    /// terms" the paper criticizes.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// The Daems quality measure (relative RMS error with constant `c`;
    /// `qwc`/`qtc` of the paper) on a dataset.
    pub fn relative_rms_error(&self, data: &Dataset, c: f64) -> f64 {
        stats::relative_rms_error(&self.predict(data.points()), data.targets(), c)
    }

    /// Formats the model as a readable sum of monomials.
    pub fn format(&self) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let sign = if self.negated { "-(" } else { "" };
        let mut out = String::from(sign);
        for (k, t) in self.terms.iter().enumerate() {
            if k > 0 {
                out.push_str(if t.coefficient >= 0.0 { " + " } else { " - " });
            } else if t.coefficient < 0.0 {
                out.push('-');
            }
            out.push_str(&format!("{:.4e}", t.coefficient.abs()));
            for (i, &e) in t.exponents.iter().enumerate() {
                if e == 0 {
                    continue;
                }
                let name = self
                    .var_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("x{i}"));
                if e == 1 {
                    out.push_str(&format!("*{name}"));
                } else {
                    out.push_str(&format!("*{name}^{e}"));
                }
            }
        }
        if self.negated {
            out.push(')');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PosynomialModel {
        PosynomialModel {
            terms: vec![
                MonomialTerm {
                    coefficient: 2.0,
                    exponents: vec![1, 0],
                },
                MonomialTerm {
                    coefficient: 3.0,
                    exponents: vec![0, -1],
                },
            ],
            negated: false,
            signomial: false,
            var_names: vec!["a".into(), "b".into()],
        }
    }

    #[test]
    fn prediction_matches_hand_computation() {
        let m = model();
        assert!((m.predict_one(&[2.0, 3.0]) - (4.0 + 1.0)).abs() < 1e-12);
        assert_eq!(m.predict(&[vec![1.0, 1.0]]), vec![5.0]);
        assert_eq!(m.n_terms(), 2);
    }

    #[test]
    fn negated_model_flips_sign() {
        let mut m = model();
        m.negated = true;
        assert!((m.predict_one(&[2.0, 3.0]) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn quality_measure_is_zero_on_perfect_fit() {
        let m = model();
        let xs = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let ys = m.predict(&xs);
        let data = Dataset::new(vec!["a".into(), "b".into()], xs, ys).unwrap();
        assert_eq!(m.relative_rms_error(&data, 0.0), 0.0);
    }

    #[test]
    fn format_shows_terms_and_exponents() {
        let s = model().format();
        assert!(s.contains("*a"), "s = {s}");
        assert!(s.contains("b^-1"), "s = {s}");
        let mut m = model();
        m.negated = true;
        assert!(m.format().starts_with("-("));
        m.terms.clear();
        assert_eq!(m.format(), "0");
    }

    #[test]
    fn serde_round_trip() {
        let m = model();
        let s = serde_json::to_string(&m).unwrap();
        let back: PosynomialModel = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
