//! Distributed tracing: trace/span identity, W3C `traceparent`
//! propagation, an RAII span guard, and a bounded in-process store of
//! completed traces with tail sampling.
//!
//! The pieces compose bottom-up:
//!
//! * [`TraceContext`] is the propagated identity — a 128-bit trace id
//!   plus the 64-bit id of the current span — parsed from and rendered
//!   to the W3C `traceparent` header. Parsing is **total**: arbitrary
//!   bytes yield `None`, never a panic.
//! * [`SpanRecord`] is one completed span: name, kind, wall-clock start,
//!   duration, key-value attributes, ok/error status, and the parent
//!   link that makes the records a tree.
//! * [`TraceSpan`] is the RAII guard (same clock discipline as
//!   [`crate::PhaseAccumulator`]'s [`crate::Span`]: `Instant` for the
//!   duration, recorded on drop). Layers that only learn about timing
//!   after the fact (engine-phase breakdowns, queue waits) record
//!   [`SpanRecord`]s directly instead.
//! * [`TraceStore`] buffers in-flight traces and keeps a bounded ring of
//!   completed ones with **tail sampling**: the keep/drop decision is
//!   made when the trace completes, so slow traces, errored traces, and
//!   explicitly requested ones (inbound `traceparent` with the sampled
//!   flag) are always retained while routine traffic is sampled at a
//!   configurable rate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// In-flight spans a single trace may accumulate before further records
/// are dropped (a runaway job must not grow one trace without bound).
const MAX_SPANS_PER_TRACE: usize = 512;
/// In-flight traces the store tracks at once; a request trace lives for
/// one request and a job trace for one job, so this is generous.
const MAX_PENDING_TRACES: usize = 1024;

/// The propagated identity of the current span: which trace this work
/// belongs to and which span is its parent-to-be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span in the trace (non-zero).
    pub trace_id: u128,
    /// 64-bit id of the current span (non-zero).
    pub span_id: u64,
    /// The `traceparent` sampled flag (`01`). An inbound context with
    /// this set is an explicit request to retain the trace.
    pub sampled: bool,
}

impl TraceContext {
    /// Mints a fresh root context (new trace id, new span id).
    pub fn mint() -> TraceContext {
        TraceContext {
            trace_id: fresh_trace_id(),
            span_id: fresh_span_id(),
            sampled: false,
        }
    }

    /// A child context: same trace, fresh span id, same sampled flag.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: fresh_span_id(),
            sampled: self.sampled,
        }
    }

    /// Parses a W3C `traceparent` header value. Total: any input that is
    /// not a well-formed `00-{32 hex}-{16 hex}-{2 hex}` header (with
    /// non-zero trace and span ids and a known version) yields `None`.
    pub fn parse(header: &str) -> Option<TraceContext> {
        let header = header.trim();
        // version "-" trace-id "-" parent-id "-" flags = 2+1+32+1+16+1+2
        if header.len() != 55 {
            return None;
        }
        let bytes = header.as_bytes();
        if bytes[2] != b'-' || bytes[35] != b'-' || bytes[52] != b'-' {
            return None;
        }
        let version = &header[0..2];
        if !version.bytes().all(|b| b.is_ascii_hexdigit()) || version.eq_ignore_ascii_case("ff") {
            return None;
        }
        let trace_id = parse_hex_u128(&header[3..35])?;
        let span_id = parse_hex_u64(&header[36..52])?;
        let flags = parse_hex_u64(&header[53..55])?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            sampled: flags & 0x01 != 0,
        })
    }

    /// Renders the context as a `traceparent` header value.
    pub fn traceparent(&self) -> String {
        let flags: u8 = if self.sampled { 0x01 } else { 0x00 };
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id, self.span_id, flags
        )
    }

    /// The trace id as its canonical 32-char lowercase hex form.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// The span id as its canonical 16-char lowercase hex form.
    pub fn span_id_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }
}

/// Strict fixed-width hex: every byte must be a hex digit (no sign, no
/// whitespace, no `0x` — everything `from_str_radix` would forgive).
fn parse_hex_u128(s: &str) -> Option<u128> {
    if !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    if !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// A fresh non-zero 64-bit id (same splitmix64-over-clock-and-counter
/// discipline as [`crate::request_id`]).
pub fn fresh_span_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = unix_ns();
    crate::splitmix64(nanos ^ count.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1
}

fn fresh_trace_id() -> u128 {
    (u128::from(fresh_span_id()) << 64) | u128::from(fresh_span_id())
}

/// Wall-clock nanoseconds since the unix epoch (0 when the clock is
/// before the epoch), truncated to 64 bits — good until the year 2554.
pub fn unix_ns() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| {
        u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
    })
}

/// What role a span plays in its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Handling an inbound request (the root of a request trace).
    Server,
    /// Issuing an outbound request.
    Client,
    /// Work inside the process (job lifecycle, engine phases).
    Internal,
}

impl SpanKind {
    /// The lowercase label used in rendered traces.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Server => "server",
            SpanKind::Client => "client",
            SpanKind::Internal => "internal",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u128,
    /// This span's id (unique within the trace).
    pub span_id: u64,
    /// Parent span id; `None` for a root, and an id outside the trace's
    /// own spans when the parent lives in another process (an inbound
    /// `traceparent`).
    pub parent_span_id: Option<u64>,
    /// Human-readable operation name (`http POST /v1/jobs`, `queued`,
    /// `basis_eval`, ...).
    pub name: String,
    /// Role of the span.
    pub kind: SpanKind,
    /// Wall-clock start, nanoseconds since the unix epoch.
    pub start_unix_ns: u64,
    /// Elapsed nanoseconds.
    pub duration_ns: u64,
    /// Key-value attributes (route, status, job id, generation, ...).
    pub attrs: Vec<(String, String)>,
    /// `Some(message)` when the span ended in an error; status is ok
    /// otherwise.
    pub error: Option<String>,
}

impl SpanRecord {
    fn approx_bytes(&self) -> usize {
        let attrs: usize = self.attrs.iter().map(|(k, v)| k.len() + v.len() + 8).sum();
        let error = self.error.as_ref().map_or(0, String::len);
        80 + self.name.len() + attrs + error
    }
}

/// An RAII span: measures from construction to [`TraceSpan::finish`] (or
/// drop) on the monotonic clock and records itself into the store. The
/// no-op form ([`TraceSpan::noop`]) records nothing, so instrumented
/// paths need no branching at use sites.
#[derive(Debug)]
pub struct TraceSpan {
    store: Option<Arc<TraceStore>>,
    ctx: TraceContext,
    parent_span_id: Option<u64>,
    name: String,
    kind: SpanKind,
    start_unix_ns: u64,
    started: Instant,
    attrs: Vec<(String, String)>,
    error: Option<String>,
}

impl TraceSpan {
    /// A span that records nothing.
    pub fn noop() -> TraceSpan {
        TraceSpan {
            store: None,
            ctx: TraceContext {
                trace_id: 0,
                span_id: 0,
                sampled: false,
            },
            parent_span_id: None,
            name: String::new(),
            kind: SpanKind::Internal,
            start_unix_ns: 0,
            started: Instant::now(),
            attrs: Vec::new(),
            error: None,
        }
    }

    /// `true` when finishing this span will record somewhere.
    pub fn is_recording(&self) -> bool {
        self.store.is_some()
    }

    /// This span's propagation context (for headers and child spans).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Adds a key-value attribute.
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        if self.store.is_some() {
            self.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Marks the span as errored.
    pub fn set_error(&mut self, message: impl Into<String>) {
        if self.store.is_some() {
            self.error = Some(message.into());
        }
    }

    /// A child span of this one, started now.
    pub fn child(&self, name: &str, kind: SpanKind) -> TraceSpan {
        match &self.store {
            Some(store) => store.span(name, kind, self.ctx.child(), Some(self.ctx.span_id)),
            None => TraceSpan::noop(),
        }
    }

    /// Ends the span now and records it (drop does the same; `finish`
    /// just makes the end explicit at call sites that care).
    pub fn finish(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(store) = self.store.take() {
            store.record(SpanRecord {
                trace_id: self.ctx.trace_id,
                span_id: self.ctx.span_id,
                parent_span_id: self.parent_span_id,
                name: std::mem::take(&mut self.name),
                kind: self.kind,
                start_unix_ns: self.start_unix_ns,
                duration_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                attrs: std::mem::take(&mut self.attrs),
                error: self.error.take(),
            });
        }
    }
}

/// Tail-sampling and capacity knobs of a [`TraceStore`].
#[derive(Debug, Clone)]
pub struct TraceStoreConfig {
    /// Completed traces retained (ring buffer; older ones are evicted).
    pub capacity: usize,
    /// Fraction of unremarkable traces (not slow, not errored, not
    /// explicitly requested) retained, `0.0..=1.0`. Sampling is
    /// deterministic (every ⌈1/rate⌉-th candidate), not random.
    pub sample_rate: f64,
    /// Traces whose total duration reaches this are always retained
    /// (wire `--slow-request-ms` into this).
    pub slow_threshold: Duration,
}

impl Default for TraceStoreConfig {
    fn default() -> Self {
        TraceStoreConfig {
            capacity: 256,
            sample_rate: 0.1,
            slow_threshold: Duration::from_secs(1),
        }
    }
}

/// A completed, retained trace: its spans plus the roll-up the list view
/// needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrace {
    /// Trace id.
    pub trace_id: u128,
    /// Name of the root span.
    pub root_name: String,
    /// Earliest span start, nanoseconds since the unix epoch.
    pub start_unix_ns: u64,
    /// Latest span end minus earliest span start.
    pub duration_ns: u64,
    /// `true` when any span errored.
    pub error: bool,
    /// Every span, in recording order.
    pub spans: Vec<SpanRecord>,
    /// Approximate heap footprint, for the store-bytes gauge.
    pub approx_bytes: usize,
}

/// A list-view row for `GET /v1/traces`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Trace id.
    pub trace_id: u128,
    /// Name of the root span.
    pub root_name: String,
    /// Earliest span start, nanoseconds since the unix epoch.
    pub start_unix_ns: u64,
    /// Total duration in nanoseconds.
    pub duration_ns: u64,
    /// Number of spans retained.
    pub n_spans: usize,
    /// `true` when any span errored.
    pub error: bool,
}

/// Monotonic counters describing a [`TraceStore`]'s activity, for the
/// `/metrics` exposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Spans ever recorded (including spans of traces later dropped).
    pub spans_total: u64,
    /// Completed traces retained by tail sampling.
    pub sampled_total: u64,
    /// Retained traces later evicted by the ring buffer.
    pub dropped_total: u64,
    /// Approximate bytes currently held by the completed-trace ring.
    pub store_bytes: u64,
}

#[derive(Debug, Default)]
struct PendingTrace {
    spans: Vec<SpanRecord>,
    /// Completion is deferred to an explicit owner (a job adopted the
    /// trace); `finish_unless_held` becomes a no-op.
    held: bool,
    /// The request path reached `finish_unless_held` while the trace was
    /// held — the originating request's spans are all recorded, so the
    /// owner's `finish_held` may complete immediately.
    request_done: bool,
    /// The owner reached `finish_held` before the request path did; the
    /// request's eventual `finish_unless_held` completes the trace.
    owner_done: bool,
    /// Tail sampling must retain this trace regardless of duration.
    force_keep: bool,
    error: bool,
}

/// Bounded in-process store of traces.
///
/// Spans are recorded into a pending table as they finish; when the
/// trace completes ([`TraceStore::finish`]) the tail-sampling decision
/// runs and retained traces enter a fixed-capacity ring (oldest evicted
/// first). Every method is thread-safe and total — recording into an
/// unknown or overflowing trace is silently dropped, never a panic.
#[derive(Debug)]
pub struct TraceStore {
    config: TraceStoreConfig,
    pending: Mutex<HashMap<u128, PendingTrace>>,
    completed: Mutex<std::collections::VecDeque<Arc<CompletedTrace>>>,
    spans_total: AtomicU64,
    sampled_total: AtomicU64,
    dropped_total: AtomicU64,
    store_bytes: AtomicU64,
    sample_counter: AtomicU64,
}

impl TraceStore {
    /// An empty store with the given knobs (capacity clamped to ≥ 1,
    /// sample rate to `0.0..=1.0`).
    pub fn new(mut config: TraceStoreConfig) -> TraceStore {
        config.capacity = config.capacity.max(1);
        config.sample_rate = config.sample_rate.clamp(0.0, 1.0);
        TraceStore {
            config,
            pending: Mutex::new(HashMap::new()),
            completed: Mutex::new(std::collections::VecDeque::new()),
            spans_total: AtomicU64::new(0),
            sampled_total: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
            store_bytes: AtomicU64::new(0),
            sample_counter: AtomicU64::new(0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &TraceStoreConfig {
        &self.config
    }

    /// Starts an RAII span recording into this store on drop.
    pub fn span(
        self: &Arc<Self>,
        name: &str,
        kind: SpanKind,
        ctx: TraceContext,
        parent_span_id: Option<u64>,
    ) -> TraceSpan {
        TraceSpan {
            store: Some(Arc::clone(self)),
            ctx,
            parent_span_id,
            name: name.to_string(),
            kind,
            start_unix_ns: unix_ns(),
            started: Instant::now(),
            attrs: Vec::new(),
            error: None,
        }
    }

    /// Records one completed span into its pending trace. Bounded: a
    /// trace past `MAX_SPANS_PER_TRACE` spans, or a span for a brand
    /// new trace when `MAX_PENDING_TRACES` are already in flight, is
    /// dropped silently.
    pub fn record(&self, span: SpanRecord) {
        self.spans_total.fetch_add(1, Ordering::Relaxed);
        let mut pending = self.pending.lock().expect("trace store lock");
        if !pending.contains_key(&span.trace_id) && pending.len() >= MAX_PENDING_TRACES {
            return;
        }
        let trace = pending.entry(span.trace_id).or_default();
        if trace.spans.len() >= MAX_SPANS_PER_TRACE {
            return;
        }
        trace.error |= span.error.is_some();
        trace.spans.push(span);
    }

    /// Defers completion of a trace to an explicit later
    /// [`TraceStore::finish`] — [`TraceStore::finish_unless_held`]
    /// becomes a no-op for it. Used when a job adopts the submitting
    /// request's trace and outlives the request.
    pub fn hold(&self, trace_id: u128) {
        let mut pending = self.pending.lock().expect("trace store lock");
        if pending.len() < MAX_PENDING_TRACES || pending.contains_key(&trace_id) {
            pending.entry(trace_id).or_default().held = true;
        }
    }

    /// Reverses a [`TraceStore::hold`]: the would-be owner failed to take
    /// over, so `finish_unless_held` applies to the trace again.
    pub fn release(&self, trace_id: u128) {
        if let Some(trace) = self
            .pending
            .lock()
            .expect("trace store lock")
            .get_mut(&trace_id)
        {
            trace.held = false;
        }
    }

    /// Marks a trace as always-retained by tail sampling (explicitly
    /// requested via the inbound sampled flag, or otherwise notable).
    pub fn force_keep(&self, trace_id: u128) {
        let mut pending = self.pending.lock().expect("trace store lock");
        if pending.len() < MAX_PENDING_TRACES || pending.contains_key(&trace_id) {
            pending.entry(trace_id).or_default().force_keep = true;
        }
    }

    /// Completes a trace unless a longer-lived owner [`TraceStore::hold`]s
    /// it — the per-request path, so one request's trace survives its
    /// adoption by a job. On a held trace it instead marks the request
    /// side done; if the owner already reached [`TraceStore::finish_held`]
    /// (a job that outran its own submit response), the trace completes
    /// now, with the request's spans included.
    pub fn finish_unless_held(&self, trace_id: u128) {
        let finish_now = {
            let mut pending = self.pending.lock().expect("trace store lock");
            match pending.get_mut(&trace_id) {
                None => false,
                Some(t) if t.held => {
                    t.request_done = true;
                    t.owner_done
                }
                Some(_) => true,
            }
        };
        if finish_now {
            self.finish(trace_id);
        }
    }

    /// Completion from the trace's [`TraceStore::hold`]er (a job's event
    /// pump): completes the trace only once the originating request has
    /// also finished, so a job that outruns its own submit response
    /// cannot publish a tree missing the request's root span. When the
    /// request side is still in flight, the trace stays pending and the
    /// request's `finish_unless_held` completes it.
    pub fn finish_held(&self, trace_id: u128) {
        let finish_now = {
            let mut pending = self.pending.lock().expect("trace store lock");
            match pending.get_mut(&trace_id) {
                None => false,
                Some(t) if t.held && !t.request_done => {
                    t.owner_done = true;
                    false
                }
                Some(_) => true,
            }
        };
        if finish_now {
            self.finish(trace_id);
        }
    }

    /// Completes a trace: runs the tail-sampling decision over its
    /// recorded spans and retains it in the ring when it was slow,
    /// errored, force-kept, or picked by the sampling rate. A no-op for
    /// unknown (or already finished) trace ids.
    pub fn finish(&self, trace_id: u128) {
        let Some(trace) = self
            .pending
            .lock()
            .expect("trace store lock")
            .remove(&trace_id)
        else {
            return;
        };
        if trace.spans.is_empty() {
            return;
        }
        let start = trace
            .spans
            .iter()
            .map(|s| s.start_unix_ns)
            .min()
            .unwrap_or(0);
        let end = trace
            .spans
            .iter()
            .map(|s| s.start_unix_ns.saturating_add(s.duration_ns))
            .max()
            .unwrap_or(start);
        let duration_ns = end.saturating_sub(start);
        let slow = u128::from(duration_ns) >= self.config.slow_threshold.as_nanos();
        let keep = trace.force_keep || trace.error || slow || self.sample();
        if !keep {
            return;
        }
        let ids: std::collections::HashSet<u64> = trace.spans.iter().map(|s| s.span_id).collect();
        let root = trace
            .spans
            .iter()
            .find(|s| s.parent_span_id.is_none_or(|p| !ids.contains(&p)))
            .unwrap_or(&trace.spans[0]);
        let approx_bytes = 96
            + trace
                .spans
                .iter()
                .map(SpanRecord::approx_bytes)
                .sum::<usize>();
        let completed = Arc::new(CompletedTrace {
            trace_id,
            root_name: root.name.clone(),
            start_unix_ns: start,
            duration_ns,
            error: trace.error,
            spans: trace.spans,
            approx_bytes,
        });
        let mut ring = self.completed.lock().expect("trace store lock");
        while ring.len() >= self.config.capacity {
            if let Some(evicted) = ring.pop_front() {
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
                self.store_bytes
                    .fetch_sub(evicted.approx_bytes as u64, Ordering::Relaxed);
            }
        }
        self.store_bytes
            .fetch_add(approx_bytes as u64, Ordering::Relaxed);
        self.sampled_total.fetch_add(1, Ordering::Relaxed);
        ring.push_back(completed);
    }

    /// The deterministic keep-1-in-N decision for unremarkable traces.
    fn sample(&self) -> bool {
        let rate = self.config.sample_rate;
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let period = (1.0 / rate).round().max(1.0) as u64;
        self.sample_counter.fetch_add(1, Ordering::Relaxed) % period == 0
    }

    /// Retained traces, newest first, optionally filtered by minimum
    /// duration, error status, and one `key=value` attribute match on
    /// any span (the handlers use `("job.id", id)`).
    pub fn list(
        &self,
        min_duration: Duration,
        error_only: bool,
        attr: Option<(&str, &str)>,
    ) -> Vec<TraceSummary> {
        let min_ns = u64::try_from(min_duration.as_nanos()).unwrap_or(u64::MAX);
        self.completed
            .lock()
            .expect("trace store lock")
            .iter()
            .rev()
            .filter(|t| t.duration_ns >= min_ns)
            .filter(|t| !error_only || t.error)
            .filter(|t| {
                attr.is_none_or(|(key, value)| {
                    t.spans
                        .iter()
                        .any(|s| s.attrs.iter().any(|(k, v)| k == key && v == value))
                })
            })
            .map(|t| TraceSummary {
                trace_id: t.trace_id,
                root_name: t.root_name.clone(),
                start_unix_ns: t.start_unix_ns,
                duration_ns: t.duration_ns,
                n_spans: t.spans.len(),
                error: t.error,
            })
            .collect()
    }

    /// One retained trace with all its spans.
    pub fn get(&self, trace_id: u128) -> Option<Arc<CompletedTrace>> {
        self.completed
            .lock()
            .expect("trace store lock")
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// The store's activity counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            spans_total: self.spans_total.load(Ordering::Relaxed),
            sampled_total: self.sampled_total.load(Ordering::Relaxed),
            dropped_total: self.dropped_total.load(Ordering::Relaxed),
            store_bytes: self.store_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(store: &TraceStore, trace: u128, span: u64, parent: Option<u64>, dur_ms: u64) {
        store.record(SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_span_id: parent,
            name: format!("span-{span}"),
            kind: SpanKind::Internal,
            start_unix_ns: 1_000_000,
            duration_ns: dur_ms * 1_000_000,
            attrs: vec![("job.id".into(), trace.to_string())],
            error: None,
        });
    }

    #[test]
    fn traceparent_round_trips_canonical_headers() {
        let original = TraceContext {
            trace_id: 0x0af7_6519_16cd_43dd_8448_eb21_1c80_319c,
            span_id: 0x00f0_67aa_0ba9_02b7,
            sampled: true,
        };
        let header = original.traceparent();
        assert_eq!(header.len(), 55, "{header}");
        assert_eq!(TraceContext::parse(&header), Some(original));
        let unsampled = TraceContext {
            sampled: false,
            ..original
        };
        assert!(unsampled.traceparent().ends_with("-00"));
        assert_eq!(
            TraceContext::parse(&unsampled.traceparent()),
            Some(unsampled)
        );
    }

    #[test]
    fn traceparent_parsing_is_total_on_hostile_input() {
        for bad in [
            "",
            "00",
            "garbage",
            "00-abc-def-01",
            // all-zero trace id
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            // all-zero span id
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
            // forbidden version
            "ff-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01",
            // non-hex digits in the right shape
            "00-0af7651916cd43dd8448eb211c80319z-00f067aa0ba902b7-01",
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902bz-01",
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-0x",
            // signs / whitespace from_str_radix would forgive
            "00-+af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01",
            // truncated / oversized
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-0",
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-011",
            "00_0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01",
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
        // Whitespace padding is trimmed, not fatal.
        let ok = " 00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01 ";
        assert!(TraceContext::parse(ok).is_some());
    }

    #[test]
    fn minted_contexts_are_distinct_and_children_share_the_trace() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
        let child = a.child();
        assert_eq!(child.trace_id, a.trace_id);
        assert_ne!(child.span_id, a.span_id);
    }

    #[test]
    fn raii_spans_record_attributes_and_errors_on_drop() {
        let store = Arc::new(TraceStore::new(TraceStoreConfig {
            sample_rate: 1.0,
            ..TraceStoreConfig::default()
        }));
        let root_ctx = TraceContext::mint();
        {
            let mut root = store.span("root", SpanKind::Server, root_ctx, None);
            root.attr("route", "jobs.submit");
            let mut child = root.child("work", SpanKind::Internal);
            child.set_error("boom");
            child.finish();
            root.finish();
        }
        store.finish(root_ctx.trace_id);
        let trace = store.get(root_ctx.trace_id).expect("trace retained");
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.root_name, "root");
        assert!(trace.error);
        let child = trace.spans.iter().find(|s| s.name == "work").unwrap();
        assert_eq!(child.parent_span_id, Some(root_ctx.span_id));
        assert_eq!(child.error.as_deref(), Some("boom"));
        let root = trace.spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(
            root.attrs[0],
            ("route".to_string(), "jobs.submit".to_string())
        );
        assert!(!TraceSpan::noop().is_recording());
    }

    #[test]
    fn tail_sampling_keeps_slow_errored_and_forced_traces() {
        let store = TraceStore::new(TraceStoreConfig {
            capacity: 16,
            sample_rate: 0.0, // nothing unremarkable survives
            slow_threshold: Duration::from_millis(100),
        });
        // Fast, clean, unforced: dropped.
        record(&store, 1, 10, None, 5);
        store.finish(1);
        assert!(store.get(1).is_none());
        // Slow: kept.
        record(&store, 2, 20, None, 500);
        store.finish(2);
        assert!(store.get(2).is_some());
        // Errored: kept.
        store.record(SpanRecord {
            error: Some("boom".into()),
            ..SpanRecord {
                trace_id: 3,
                span_id: 30,
                parent_span_id: None,
                name: "x".into(),
                kind: SpanKind::Internal,
                start_unix_ns: 0,
                duration_ns: 1,
                attrs: Vec::new(),
                error: None,
            }
        });
        store.finish(3);
        assert!(store.get(3).is_some());
        // Forced (explicitly requested): kept.
        store.force_keep(4);
        record(&store, 4, 40, None, 1);
        store.finish(4);
        assert!(store.get(4).is_some());
        let stats = store.stats();
        assert_eq!(stats.sampled_total, 3);
        assert_eq!(stats.spans_total, 4);
    }

    #[test]
    fn held_traces_survive_the_request_finish_until_released() {
        let store = TraceStore::new(TraceStoreConfig {
            sample_rate: 0.0,
            slow_threshold: Duration::from_millis(1),
            ..TraceStoreConfig::default()
        });
        store.hold(7);
        record(&store, 7, 70, None, 50);
        store.finish_unless_held(7); // the request ends; trace lives on
        assert!(store.get(7).is_none());
        record(&store, 7, 71, Some(70), 80);
        store.finish(7); // the job ends; now it completes
        let trace = store.get(7).expect("held trace finished");
        assert_eq!(trace.spans.len(), 2);
        // An unheld trace finishes on the request path.
        record(&store, 8, 80, None, 50);
        store.finish_unless_held(8);
        assert!(store.get(8).is_some());
    }

    /// A job fast enough to outrun its own submit response: the holder
    /// reaches `finish_held` first, the trace stays pending, and the
    /// request's later `finish_unless_held` completes it with *both*
    /// sides' spans in the tree.
    #[test]
    fn held_finish_waits_for_the_request_side() {
        let store = TraceStore::new(TraceStoreConfig {
            sample_rate: 0.0,
            slow_threshold: Duration::from_millis(1),
            ..TraceStoreConfig::default()
        });
        store.hold(11);
        record(&store, 11, 111, Some(110), 80); // the job span
        store.finish_held(11); // pump done, request still in flight
        assert!(store.get(11).is_none(), "completed without the request");
        record(&store, 11, 110, None, 50); // the request's root span lands
        store.finish_unless_held(11);
        let trace = store.get(11).expect("rendezvous never completed");
        assert_eq!(trace.spans.len(), 2);
        assert!(store.pending.lock().unwrap().is_empty());
    }

    /// The common order — the request finishes first — completes the
    /// trace at the holder's `finish_held`, immediately.
    #[test]
    fn held_finish_completes_at_once_when_the_request_already_ended() {
        let store = TraceStore::new(TraceStoreConfig {
            sample_rate: 0.0,
            slow_threshold: Duration::from_millis(1),
            ..TraceStoreConfig::default()
        });
        store.hold(12);
        record(&store, 12, 120, None, 50);
        store.finish_unless_held(12); // request ends; trace lives on
        assert!(store.get(12).is_none());
        record(&store, 12, 121, Some(120), 80);
        store.finish_held(12);
        let trace = store.get(12).expect("held trace finished");
        assert_eq!(trace.spans.len(), 2);
        assert!(store.pending.lock().unwrap().is_empty());
    }

    /// A hold whose would-be owner backs out (`release`) hands the
    /// trace back to the request path: the next `finish_unless_held`
    /// completes it instead of leaking it in the pending table.
    #[test]
    fn released_holds_return_the_trace_to_the_request_path() {
        let store = TraceStore::new(TraceStoreConfig {
            sample_rate: 0.0,
            slow_threshold: Duration::from_millis(1),
            ..TraceStoreConfig::default()
        });
        store.hold(9);
        record(&store, 9, 90, None, 50);
        store.release(9); // owner failed to take over
        store.finish_unless_held(9);
        assert!(store.get(9).is_some(), "released trace never completed");
        assert_eq!(store.pending.lock().unwrap().len(), 0);
    }

    /// The job lifecycle's hold/finish path under a hammer: hundreds of
    /// jobs hold their trace open past the submitting request, then
    /// finish. Every hold must drain from the pending table, every
    /// completed job trace must become evictable like any other, and
    /// the byte gauge must track the ring exactly — held traces cause
    /// no permanent byte-count growth.
    #[test]
    fn completed_job_holds_drain_and_stay_evictable_without_byte_growth() {
        let capacity = 8;
        let store = TraceStore::new(TraceStoreConfig {
            capacity,
            sample_rate: 0.0,
            slow_threshold: Duration::from_millis(1),
        });
        for i in 0..200u64 {
            let trace = u128::from(i + 1);
            store.hold(trace); // the job adopts the request's trace
            record(&store, trace, 1, None, 50);
            store.finish_unless_held(trace); // the request ends first
            assert!(store.get(trace).is_none(), "held trace completed early");
            record(&store, trace, 2, Some(1), 80);
            store.finish(trace); // the job completes: the hold ends here
            assert!(store.get(trace).is_some(), "job trace was not retained");
        }
        // No leaked holds: the pending table is empty once every job
        // finished, so pending-side memory returns to zero.
        assert_eq!(store.pending.lock().unwrap().len(), 0);
        // Completed job traces evict like any others — the ring holds
        // the newest `capacity`, everything older was dropped.
        let stats = store.stats();
        assert_eq!(stats.sampled_total, 200);
        assert_eq!(stats.dropped_total, 200 - capacity as u64);
        assert!(store.get(200).is_some());
        assert!(store.get(1).is_none(), "old held trace pinned the ring");
        // The byte gauge equals the ring's exact contents: capacity ×
        // the uniform per-trace footprint. Nothing accumulated.
        let per_trace = store.get(200).unwrap().approx_bytes as u64;
        assert_eq!(stats.store_bytes, per_trace * capacity as u64);
    }

    #[test]
    fn ring_is_bounded_under_a_trace_hammer_and_counts_evictions() {
        let capacity = 256;
        let store = TraceStore::new(TraceStoreConfig {
            capacity,
            sample_rate: 0.0,
            slow_threshold: Duration::from_millis(1),
        });
        // 500 kept traces against a 256-slot ring — the shape of the
        // 500-job hammer in the acceptance criteria.
        for i in 0..500u64 {
            let trace = u128::from(i + 1);
            record(&store, trace, 1, None, 10);
            record(&store, trace, 2, Some(1), 5);
            store.finish(trace);
        }
        let stats = store.stats();
        assert_eq!(stats.sampled_total, 500);
        assert_eq!(stats.dropped_total, 500 - capacity as u64);
        assert_eq!(store.list(Duration::ZERO, false, None).len(), capacity);
        // The byte gauge tracks the ring exactly: capacity × the uniform
        // per-trace footprint, with no growth past the cap.
        let per_trace = store.get(500).unwrap().approx_bytes as u64;
        assert_eq!(stats.store_bytes, per_trace * capacity as u64);
        // Oldest evicted first: traces 1..=244 are gone, 245..=500 survive.
        assert!(store.get(1).is_none());
        assert!(store.get(244).is_none());
        assert!(store.get(245).is_some());
        assert!(store.get(490).is_some());
    }

    #[test]
    fn span_and_pending_bounds_never_grow_without_limit() {
        let store = TraceStore::new(TraceStoreConfig {
            sample_rate: 1.0,
            ..TraceStoreConfig::default()
        });
        for span in 0..2 * MAX_SPANS_PER_TRACE as u64 {
            record(&store, 9, span + 1, None, 1);
        }
        store.finish(9);
        assert_eq!(
            store.get(9).unwrap().spans.len(),
            MAX_SPANS_PER_TRACE,
            "per-trace span cap"
        );
        // Unfinished traces cannot accumulate past the pending cap.
        for trace in 100..100 + 2 * MAX_PENDING_TRACES as u128 {
            record(&store, trace, 1, None, 1);
        }
        let pending = store.pending.lock().unwrap().len();
        assert!(pending <= MAX_PENDING_TRACES, "{pending}");
    }

    #[test]
    fn list_filters_by_duration_error_and_attribute() {
        let store = TraceStore::new(TraceStoreConfig {
            sample_rate: 1.0,
            ..TraceStoreConfig::default()
        });
        record(&store, 1, 10, None, 5);
        store.finish(1);
        record(&store, 2, 20, None, 800);
        store.finish(2);
        store.record(SpanRecord {
            trace_id: 3,
            span_id: 30,
            parent_span_id: None,
            name: "failing".into(),
            kind: SpanKind::Server,
            start_unix_ns: 0,
            duration_ns: 1_000_000,
            attrs: Vec::new(),
            error: Some("boom".into()),
        });
        store.finish(3);
        assert_eq!(store.list(Duration::ZERO, false, None).len(), 3);
        let slow = store.list(Duration::from_millis(100), false, None);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace_id, 2);
        let errored = store.list(Duration::ZERO, true, None);
        assert_eq!(errored.len(), 1);
        assert_eq!(errored[0].trace_id, 3);
        assert!(errored[0].error);
        let by_job = store.list(Duration::ZERO, false, Some(("job.id", "1")));
        assert_eq!(by_job.len(), 1);
        assert_eq!(by_job[0].trace_id, 1);
        assert!(store
            .list(Duration::ZERO, false, Some(("job.id", "nope")))
            .is_empty());
        // Newest first.
        let all = store.list(Duration::ZERO, false, None);
        assert_eq!(all[0].trace_id, 3);
    }

    #[test]
    fn deterministic_sampling_keeps_one_in_n() {
        let store = TraceStore::new(TraceStoreConfig {
            capacity: 1024,
            sample_rate: 0.1,
            slow_threshold: Duration::from_secs(3600),
        });
        for i in 0..100u64 {
            let trace = u128::from(i + 1);
            record(&store, trace, 1, None, 1);
            store.finish(trace);
        }
        assert_eq!(store.stats().sampled_total, 10, "1-in-10 of 100");
    }
}
