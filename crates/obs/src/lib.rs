//! Zero-dependency observability primitives for the CAFFEINE workspace.
//!
//! Three small, composable pieces:
//!
//! * **Structured leveled logging** ([`Logger`]): one line per event, in a
//!   `key=value` text format or a JSON-object-per-line format, filtered by
//!   [`Level`]. Logs below the configured level cost one enum comparison.
//! * **Span timers** ([`PhaseAccumulator`], [`Span`]): a guard that records
//!   its elapsed wall time into a named phase cell on drop. Cells are plain
//!   atomics, so accumulators can be shared across threads and sampled
//!   without stopping the work they measure. [`Logger::span`] gates a span
//!   on a level, compiling it to a no-op (`Instant` is never read) when the
//!   level is filtered out.
//! * **Request ids** ([`request_id`]): short unique hex tokens for
//!   request/response correlation, safe to accept from untrusted clients
//!   after [`valid_request_id`] screening.
//!
//! * **Distributed tracing** ([`trace`]): W3C `traceparent` propagation
//!   ([`TraceContext`]), RAII spans ([`TraceSpan`]) and a bounded
//!   tail-sampling store of completed traces ([`TraceStore`]) — the
//!   per-request counterpart to the aggregate phase timers above.
//!
//! Everything here is plain `std`; the crate exists so the engine, runtime
//! and serving layers can share one vocabulary for "where did the time go"
//! without pulling in a logging framework.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod trace;

pub use trace::{
    CompletedTrace, SpanKind, SpanRecord, TraceContext, TraceSpan, TraceStore, TraceStoreConfig,
    TraceStoreStats, TraceSummary,
};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed.
    Error,
    /// Something is degraded (e.g. a slow request) but service continues.
    Warn,
    /// Routine operational events: one access-log line per request.
    Info,
    /// High-volume detail for debugging (per-handler internals).
    Debug,
}

impl Level {
    /// The lowercase name used in log lines and on the command line.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (case-insensitive).
    ///
    /// # Errors
    ///
    /// A human-readable message listing the valid names.
    pub fn parse(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level `{other}` (use error, warn, info, or debug)"
            )),
        }
    }
}

/// The wire format of emitted log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// `ts=... level=info event=http.access key=value ...`
    Text,
    /// One JSON object per line: `{"ts":...,"level":"info",...}`.
    Json,
}

impl LogFormat {
    /// Parses a format name (case-insensitive).
    ///
    /// # Errors
    ///
    /// A human-readable message listing the valid names.
    pub fn parse(s: &str) -> Result<LogFormat, String> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format `{other}` (use text or json)")),
        }
    }
}

/// A typed log-field value; build with the `From` impls.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// A string value (quoted in text format when it contains spaces).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, rendered with three decimals.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}
impl From<&String> for Field {
    fn from(v: &String) -> Field {
        Field::Str(v.clone())
    }
}
impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}
impl From<u16> for Field {
    fn from(v: u16) -> Field {
        Field::U64(u64::from(v))
    }
}
impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl Field {
    fn render_text(&self, out: &mut String) {
        match self {
            Field::Str(s) => {
                if s.is_empty() || s.contains(|c: char| c.is_whitespace() || c == '"') {
                    out.push('"');
                    for c in s.chars() {
                        if c == '"' || c == '\\' {
                            out.push('\\');
                        }
                        out.push(c);
                    }
                    out.push('"');
                } else {
                    out.push_str(s);
                }
            }
            Field::U64(v) => out.push_str(&v.to_string()),
            Field::I64(v) => out.push_str(&v.to_string()),
            Field::F64(v) => out.push_str(&format!("{v:.3}")),
            Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }

    fn render_json(&self, out: &mut String) {
        match self {
            Field::Str(s) => escape_json(s, out),
            Field::U64(v) => out.push_str(&v.to_string()),
            Field::I64(v) => out.push_str(&v.to_string()),
            Field::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.3}"));
                } else {
                    out.push_str("null");
                }
            }
            Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

/// Writes `s` as a JSON string literal (quotes included) onto `out`.
fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug, Clone)]
enum Sink {
    /// Production sink: `eprintln!`, so the test harness can capture it.
    Stderr,
    /// Test sink: lines accumulate in memory for assertions.
    Capture(Arc<Mutex<String>>),
}

/// A leveled structured logger. Cheap to clone (the sink is shared).
#[derive(Debug, Clone)]
pub struct Logger {
    level: Level,
    format: LogFormat,
    sink: Sink,
}

/// Read side of a [`Logger::capture`] pair: collected log lines.
#[derive(Debug, Clone)]
pub struct LogCapture(Arc<Mutex<String>>);

impl LogCapture {
    /// Everything logged so far (newline-terminated lines).
    pub fn contents(&self) -> String {
        self.0.lock().expect("log capture lock").clone()
    }

    /// The collected lines, split for per-line assertions.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().map(str::to_string).collect()
    }
}

impl Logger {
    /// A logger writing to stderr, the production configuration.
    pub fn stderr(level: Level, format: LogFormat) -> Logger {
        Logger {
            level,
            format,
            sink: Sink::Stderr,
        }
    }

    /// A logger writing into memory, plus the handle that reads it back.
    pub fn capture(level: Level, format: LogFormat) -> (Logger, LogCapture) {
        let buf = Arc::new(Mutex::new(String::new()));
        (
            Logger {
                level,
                format,
                sink: Sink::Capture(Arc::clone(&buf)),
            },
            LogCapture(buf),
        )
    }

    /// The configured threshold.
    pub fn level(&self) -> Level {
        self.level
    }

    /// The configured line format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// `true` when events at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Emits one structured line; a no-op when `level` is filtered out.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Field)]) {
        if !self.enabled(level) {
            return;
        }
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO);
        let ts = ts.as_secs_f64();
        let mut line = String::with_capacity(96);
        match self.format {
            LogFormat::Text => {
                line.push_str(&format!("ts={ts:.3} level={} event=", level.as_str()));
                Field::Str(event.to_string()).render_text(&mut line);
                for (key, value) in fields {
                    line.push(' ');
                    line.push_str(key);
                    line.push('=');
                    value.render_text(&mut line);
                }
            }
            LogFormat::Json => {
                line.push_str(&format!(
                    "{{\"ts\":{ts:.3},\"level\":\"{}\",\"event\":",
                    level.as_str()
                ));
                escape_json(event, &mut line);
                for (key, value) in fields {
                    line.push(',');
                    escape_json(key, &mut line);
                    line.push(':');
                    value.render_json(&mut line);
                }
                line.push('}');
            }
        }
        match &self.sink {
            Sink::Stderr => eprintln!("{line}"),
            Sink::Capture(buf) => {
                let mut buf = buf.lock().expect("log capture lock");
                buf.push_str(&line);
                buf.push('\n');
            }
        }
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, Field)]) {
        self.log(Level::Error, event, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, Field)]) {
        self.log(Level::Warn, event, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, Field)]) {
        self.log(Level::Info, event, fields);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, Field)]) {
        self.log(Level::Debug, event, fields);
    }

    /// A span recording into `acc` when `level` is enabled, and a true
    /// no-op (no clock read at all) when it is filtered out.
    pub fn span<'a>(
        &self,
        level: Level,
        phase: &'static str,
        acc: &'a PhaseAccumulator,
    ) -> Span<'a> {
        if self.enabled(level) {
            acc.span(phase)
        } else {
            Span::noop()
        }
    }
}

/// Named monotonic counters (nanoseconds for spans, raw units for
/// [`PhaseAccumulator::incr`]), shared across threads.
///
/// The cell set is fixed at construction; recording into an unknown name
/// is silently ignored, so instrumentation never panics in release paths.
#[derive(Debug)]
pub struct PhaseAccumulator {
    cells: Vec<(&'static str, AtomicU64)>,
}

impl PhaseAccumulator {
    /// An accumulator with one zeroed cell per name.
    pub fn new(names: &[&'static str]) -> PhaseAccumulator {
        PhaseAccumulator {
            cells: names.iter().map(|&n| (n, AtomicU64::new(0))).collect(),
        }
    }

    fn cell(&self, name: &str) -> Option<&AtomicU64> {
        self.cells.iter().find(|(n, _)| *n == name).map(|(_, c)| c)
    }

    /// Adds raw units (used for counters such as cache hits).
    pub fn incr(&self, name: &str, amount: u64) {
        if let Some(cell) = self.cell(name) {
            cell.fetch_add(amount, Ordering::Relaxed);
        }
    }

    /// Adds a duration (stored as nanoseconds).
    pub fn add(&self, name: &str, elapsed: Duration) {
        self.incr(name, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The current raw value of a cell (0 for unknown names).
    pub fn get(&self, name: &str) -> u64 {
        self.cell(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// A span-cell value interpreted as seconds.
    pub fn seconds(&self, name: &str) -> f64 {
        self.get(name) as f64 / 1e9
    }

    /// Every cell's current raw value, in construction order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.cells
            .iter()
            .map(|(n, c)| (*n, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// A guard that adds its elapsed wall time to `name` when dropped.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            target: Some((self, name)),
            start: Instant::now(),
        }
    }
}

/// The timing guard of [`PhaseAccumulator::span`]; records on drop.
pub struct Span<'a> {
    target: Option<(&'a PhaseAccumulator, &'static str)>,
    start: Instant,
}

impl Span<'_> {
    /// A span that records nothing (the filtered-out fast path).
    pub fn noop() -> Span<'static> {
        Span {
            target: None,
            // Never read back: `drop` short-circuits on `target`.
            start: Instant::now(),
        }
    }

    /// `true` when dropping this span will record somewhere.
    pub fn is_recording(&self) -> bool {
        self.target.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((acc, name)) = self.target {
            acc.add(name, self.start.elapsed());
        }
    }
}

impl fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("recording", &self.is_recording())
            .finish()
    }
}

/// Mixes a seed into a well-distributed 64-bit value (splitmix64 finalizer).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fresh 16-hex-char request id, unique within (and overwhelmingly
/// likely across) a process: wall-clock nanoseconds mixed with a process
/// counter through splitmix64.
pub fn request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| {
        u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
    });
    let id = splitmix64(nanos ^ count.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
    format!("{id:016x}")
}

/// Screens a client-supplied `X-Request-Id`: 1–64 chars of
/// `[A-Za-z0-9._:-]`. Anything else is replaced with a generated id, so
/// hostile values can never corrupt log lines or response headers.
pub fn valid_request_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("WARN").unwrap(), Level::Warn);
        assert_eq!(Level::parse("warning").unwrap(), Level::Warn);
        assert_eq!(Level::parse("debug").unwrap(), Level::Debug);
        assert!(Level::parse("loud").is_err());
        assert_eq!(LogFormat::parse("JSON").unwrap(), LogFormat::Json);
        assert!(LogFormat::parse("xml").is_err());
    }

    #[test]
    fn text_lines_render_key_values() {
        let (logger, capture) = Logger::capture(Level::Info, LogFormat::Text);
        logger.info(
            "http.access",
            &[
                ("route", "predict".into()),
                ("status", 200u16.into()),
                ("latency_ms", 1.5f64.into()),
                ("agent", "a b".into()),
            ],
        );
        let line = capture.contents();
        assert!(line.contains("level=info"), "{line}");
        assert!(line.contains("event=http.access"), "{line}");
        assert!(line.contains("route=predict"), "{line}");
        assert!(line.contains("status=200"), "{line}");
        assert!(line.contains("latency_ms=1.500"), "{line}");
        assert!(line.contains("agent=\"a b\""), "{line}");
        assert!(line.contains("ts="), "{line}");
    }

    #[test]
    fn json_lines_are_parseable_objects() {
        let (logger, capture) = Logger::capture(Level::Debug, LogFormat::Json);
        logger.debug(
            "predict",
            &[
                ("model", "ota \"x\"\n".into()),
                ("points", 3usize.into()),
                ("ok", true.into()),
                ("nan", f64::NAN.into()),
            ],
        );
        let line = capture.lines().pop().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"event\":\"predict\""), "{line}");
        assert!(line.contains("\"model\":\"ota \\\"x\\\"\\n\""), "{line}");
        assert!(line.contains("\"points\":3"), "{line}");
        assert!(line.contains("\"ok\":true"), "{line}");
        // Non-finite floats degrade to null instead of invalid JSON.
        assert!(line.contains("\"nan\":null"), "{line}");
    }

    #[test]
    fn level_filter_suppresses_lines() {
        let (logger, capture) = Logger::capture(Level::Warn, LogFormat::Text);
        logger.info("quiet", &[]);
        logger.debug("quieter", &[]);
        assert_eq!(capture.contents(), "");
        logger.warn("loud", &[]);
        logger.error("louder", &[]);
        assert_eq!(capture.lines().len(), 2);
        assert!(logger.enabled(Level::Error));
        assert!(!logger.enabled(Level::Info));
    }

    #[test]
    fn spans_accumulate_and_noop_below_level() {
        let acc = PhaseAccumulator::new(&["solve", "eval"]);
        {
            let _s = acc.span("solve");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(acc.get("solve") >= 1_000_000, "{}", acc.get("solve"));
        assert_eq!(acc.get("eval"), 0);
        assert_eq!(acc.get("unknown"), 0);
        acc.incr("eval", 7);
        assert_eq!(acc.get("eval"), 7);
        assert_eq!(acc.snapshot().len(), 2);

        let (logger, _) = Logger::capture(Level::Info, LogFormat::Text);
        assert!(!logger.span(Level::Debug, "solve", &acc).is_recording());
        assert!(logger.span(Level::Info, "solve", &acc).is_recording());
        assert!(!Span::noop().is_recording());
    }

    #[test]
    fn request_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = request_id();
            assert_eq!(id.len(), 16, "{id}");
            assert!(valid_request_id(&id), "{id}");
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn request_id_screening_rejects_hostile_values() {
        assert!(valid_request_id("req-1.2:abc_DEF"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"x".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("newline\nid"));
        assert!(!valid_request_id("quote\"id"));
    }

    #[test]
    fn seconds_view_converts_nanos() {
        let acc = PhaseAccumulator::new(&["p"]);
        acc.add("p", Duration::from_millis(1500));
        assert!((acc.seconds("p") - 1.5).abs() < 1e-9);
    }
}
