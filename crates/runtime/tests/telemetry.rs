//! Phase-telemetry integration: every progress event carries a
//! [`PhaseBreakdown`] whose phases account for the generation's wall
//! time, and the side channel never perturbs the evolved result.

use std::sync::mpsc;

use caffeine_core::{CaffeineSettings, GrammarConfig};
use caffeine_doe::Dataset;
use caffeine_runtime::{IslandRunner, PhaseBreakdown, RunController, RunEvent, RuntimeConfig};

fn dataset() -> Dataset {
    let xs: Vec<Vec<f64>> = (1..=60)
        .map(|i| vec![0.4 + i as f64 * 0.1, 1.0 + (i % 7) as f64 * 0.3])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 3.0 / x[1]).collect();
    Dataset::new(vec!["x0".into(), "x1".into()], xs, ys).unwrap()
}

fn runner(threads: usize, islands: usize, generations: usize, data: &Dataset) -> IslandRunner {
    let mut settings = CaffeineSettings::quick_test();
    settings.population = 60;
    settings.generations = generations;
    settings.stats_every = 1;
    settings.seed = 23;
    let config = RuntimeConfig {
        threads,
        islands,
        migrate_every: 2,
        ..RuntimeConfig::default()
    };
    IslandRunner::new(settings, GrammarConfig::rational(2), config, data).unwrap()
}

#[test]
fn serial_phase_sums_account_for_generation_wall_time() {
    let data = dataset();
    // The whole 12-generation run completes in a few milliseconds in
    // release, where a single scheduler preemption under parallel test
    // load can eat >10% of the wall — so the aggregate 90%-accounted
    // contract gets up to three independent runs before it is declared
    // broken. Every structural invariant stays hard on every run.
    let mut shortfall = String::new();
    for _ in 0..3 {
        let mut runner = runner(1, 1, 12, &data);
        let (tx, rx) = mpsc::channel();
        runner.set_events(tx);
        runner.run_generations(&data, 12).unwrap();
        drop(runner);

        let breakdowns: Vec<PhaseBreakdown> = rx
            .into_iter()
            .filter_map(|e| match e {
                RunEvent::Progress { phases, .. } => Some(phases),
                _ => None,
            })
            .collect();
        assert_eq!(breakdowns.len(), 12, "one breakdown per generation");

        for b in &breakdowns {
            assert!(b.wall > 0.0, "wall must be measured: {b:?}");
            assert!(b.phase_sum() <= b.wall * 1.10, "phases exceed wall: {b:?}");
            assert!(b.basis_eval >= 0.0 && b.linear_solve >= 0.0 && b.selection >= 0.0);
            assert_eq!(b.migration, 0.0, "single island never migrates: {b:?}");
        }
        // The basis cache sees traffic every generation.
        let lookups: u64 = breakdowns
            .iter()
            .map(|b| b.cache_hits + b.cache_misses)
            .sum();
        assert!(lookups > 0, "no cache traffic recorded");
        let ratio = breakdowns
            .last()
            .and_then(PhaseBreakdown::cache_hit_ratio)
            .unwrap_or(0.0);
        assert!((0.0..=1.0).contains(&ratio), "ratio out of range: {ratio}");

        // Aggregated over the run (robust to per-generation clock noise),
        // the instrumented phases must account for at least 90% of the
        // wall time spent stepping — the "phases sum within 10% of wall"
        // contract.
        let wall: f64 = breakdowns.iter().map(|b| b.wall).sum();
        let accounted: f64 = breakdowns.iter().map(|b| b.phase_sum()).sum();
        if accounted >= wall * 0.90 {
            return;
        }
        shortfall = format!("{accounted:.6}s of {wall:.6}s wall");
    }
    panic!("phases account for {shortfall} in 3 consecutive runs");
}

#[test]
fn migration_generations_record_migration_time() {
    let data = dataset();
    let mut runner = runner(2, 2, 4, &data);
    let (tx, rx) = mpsc::channel();
    runner.set_events(tx);
    runner.run_generations(&data, 4).unwrap();
    let last = runner.last_phases().cloned().expect("ran generations");
    drop(runner);
    // Generation 4 is a migrate_every=2 boundary.
    assert_eq!(last.generation, 4);
    assert!(
        last.migration > 0.0,
        "migration span not recorded: {last:?}"
    );

    // Progress events still arrive before the Migrated marker of the
    // same generation, now with phase payloads attached.
    let events: Vec<RunEvent> = rx.into_iter().collect();
    let first_migrated = events
        .iter()
        .position(|e| matches!(e, RunEvent::Migrated { generation: 2 }))
        .expect("migration event");
    let progress_gen2 = events
        .iter()
        .position(|e| matches!(e, RunEvent::Progress { phases, .. } if phases.generation == 2))
        .expect("gen-2 progress event");
    assert!(
        progress_gen2 < first_migrated,
        "Progress must precede Migrated"
    );
}

#[test]
fn controller_snapshot_exposes_last_breakdown() {
    let data = dataset();
    let mut runner = runner(1, 1, 3, &data);
    let ctl = RunController::new();
    assert!(ctl.snapshot().phases.is_none(), "no phases before driving");
    ctl.drive(&mut runner, &data).unwrap().unwrap();
    let snap = ctl.snapshot();
    let phases = snap.phases.expect("breakdown after a driven run");
    assert_eq!(phases.generation, 3);
    assert!(phases.wall > 0.0);

    // The breakdown round-trips through JSON (it rides in SSE frames).
    let json = serde_json::to_string(&serde_json::to_value(&phases)).unwrap();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let back: PhaseBreakdown = serde::Deserialize::from_value(&value).unwrap();
    assert_eq!(back, phases);
}

#[test]
fn telemetry_never_changes_the_evolved_result() {
    // The accumulator is a side channel: a run observed through events
    // and breakdowns is bit-identical to an unobserved one.
    let data = dataset();
    let mut observed = runner(2, 2, 6, &data);
    let (tx, rx) = mpsc::channel();
    observed.set_events(tx);
    let with_events = observed.run(&data).unwrap();
    drop(rx);
    let mut plain = runner(2, 2, 6, &data);
    let without = plain.run(&data).unwrap();
    assert_eq!(with_events.models, without.models);
}
