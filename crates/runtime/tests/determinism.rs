//! Determinism guarantees of the runtime: thread count must never change
//! a result, islands must reduce to the serial engine at K = 1, and a
//! resumed checkpoint must match the uninterrupted run.

use caffeine_core::{CaffeineEngine, CaffeineSettings, GrammarConfig};
use caffeine_doe::Dataset;
use caffeine_runtime::{IslandRunner, RuntimeCheckpoint, RuntimeConfig};

fn ota_like_dataset() -> Dataset {
    // 3 variables, multiplicative/rational target — the shape of the
    // paper's OTA performances, sized for test speed.
    let mut xs = Vec::new();
    for i in 0..36 {
        xs.push(vec![
            0.5 + (i % 6) as f64 * 0.4,
            1.0 + (i / 6) as f64 * 0.3,
            0.8 + ((i * 5) % 7) as f64 * 0.25,
        ]);
    }
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 3.0 * x[0] / x[1] + 0.5 * x[2] + 1.0 / (x[0] * x[2]))
        .collect();
    Dataset::new(vec!["x0".into(), "x1".into(), "x2".into()], xs, ys).unwrap()
}

fn settings() -> CaffeineSettings {
    let mut s = CaffeineSettings::quick_test();
    s.population = 40;
    s.generations = 15;
    s.seed = 29;
    s.stats_every = 5;
    s
}

fn front_errors(models: &[caffeine_core::Model]) -> Vec<(u64, u64)> {
    models
        .iter()
        .map(|m| (m.train_error.to_bits(), m.complexity.to_bits()))
        .collect()
}

#[test]
fn thread_count_never_changes_the_front() {
    let data = ota_like_dataset();
    let grammar = GrammarConfig::rational(3);
    let mut fronts = Vec::new();
    for threads in [1, 2, 8] {
        let config = RuntimeConfig {
            threads,
            islands: 1,
            ..RuntimeConfig::default()
        };
        let mut runner = IslandRunner::new(settings(), grammar.clone(), config, &data).unwrap();
        let result = runner.run(&data).unwrap();
        fronts.push((threads, front_errors(&result.models)));
    }
    for w in fronts.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "fronts differ between {} and {} threads",
            w[0].0, w[1].0
        );
    }
}

#[test]
fn islands_are_deterministic_across_thread_counts() {
    let data = ota_like_dataset();
    let grammar = GrammarConfig::rational(3);
    let run = |threads: usize| {
        let config = RuntimeConfig {
            threads,
            islands: 4,
            migrate_every: 4,
            migrants: 2,
            ..RuntimeConfig::default()
        };
        let mut runner = IslandRunner::new(settings(), grammar.clone(), config, &data).unwrap();
        front_errors(&runner.run(&data).unwrap().models)
    };
    assert_eq!(run(1), run(8), "island run depends on thread count");
}

#[test]
fn one_island_matches_the_serial_engine_exactly() {
    let data = ota_like_dataset();
    let grammar = GrammarConfig::rational(3);

    let reference = CaffeineEngine::new(settings(), grammar.clone())
        .run(&data)
        .unwrap();

    let config = RuntimeConfig {
        threads: 4,
        islands: 1,
        ..RuntimeConfig::default()
    };
    let mut runner = IslandRunner::new(settings(), grammar, config, &data).unwrap();
    let result = runner.run(&data).unwrap();

    assert_eq!(
        front_errors(&reference.models),
        front_errors(&result.models)
    );
    assert_eq!(reference.stats, result.stats);
}

#[test]
fn islands_change_the_search_but_keep_the_contract() {
    // Not an equivalence test — K islands is a *different* (coarser-
    // grained) search — but the result must still be a valid front.
    let data = ota_like_dataset();
    let grammar = GrammarConfig::rational(3);
    let config = RuntimeConfig {
        threads: 2,
        islands: 3,
        migrate_every: 5,
        migrants: 1,
        ..RuntimeConfig::default()
    };
    let mut runner = IslandRunner::new(settings(), grammar, config, &data).unwrap();
    let result = runner.run(&data).unwrap();
    assert!(!result.models.is_empty());
    for w in result.models.windows(2) {
        assert!(w[0].complexity <= w[1].complexity, "front not sorted");
    }
    // The constant anchor is present.
    assert!(result.models.iter().any(|m| m.complexity == 0.0));
}

#[test]
fn resumed_checkpoint_matches_uninterrupted_run() {
    let data = ota_like_dataset();
    let grammar = GrammarConfig::rational(3);
    let config = RuntimeConfig {
        threads: 2,
        islands: 2,
        migrate_every: 4,
        migrants: 1,
        ..RuntimeConfig::default()
    };

    // Uninterrupted reference.
    let mut full = IslandRunner::new(settings(), grammar.clone(), config.clone(), &data).unwrap();
    let reference = full.run(&data).unwrap();

    // Interrupted run: 7 generations, snapshot (through JSON text, the
    // same path the CLI uses), rebuild, continue.
    let mut first = IslandRunner::new(settings(), grammar.clone(), config.clone(), &data).unwrap();
    first.run_generations(&data, 7).unwrap();
    assert_eq!(first.completed_generations(), 7);
    let json = serde_json::to_string(&first.checkpoint(&data)).unwrap();
    drop(first);

    let checkpoint: RuntimeCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(checkpoint.completed, 7);
    let mut resumed = IslandRunner::from_checkpoint(checkpoint, &data).unwrap();
    let result = resumed.run(&data).unwrap();

    assert_eq!(
        front_errors(&reference.models),
        front_errors(&result.models)
    );
    assert_eq!(reference.stats, result.stats);
}

#[test]
fn checkpoint_file_round_trip_and_validation() {
    let data = ota_like_dataset();
    let grammar = GrammarConfig::rational(3);
    let mut runner =
        IslandRunner::new(settings(), grammar, RuntimeConfig::default(), &data).unwrap();
    runner.run_generations(&data, 3).unwrap();

    let dir = std::env::temp_dir().join("caffeine-runtime-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.json");
    runner.checkpoint(&data).save(&path).unwrap();
    let loaded = RuntimeCheckpoint::load(&path).unwrap();
    assert_eq!(loaded.completed, 3);

    // A mismatched dataset is rejected on resume.
    let other = Dataset::new(
        vec!["a".into()],
        vec![vec![1.0], vec![2.0], vec![3.0]],
        vec![1.0, 2.0, 3.0],
    )
    .unwrap();
    assert!(IslandRunner::from_checkpoint(loaded, &other).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn events_are_emitted_in_order() {
    use caffeine_runtime::RunEvent;
    let data = ota_like_dataset();
    let grammar = GrammarConfig::rational(3);
    let config = RuntimeConfig {
        threads: 1,
        islands: 2,
        migrate_every: 5,
        migrants: 1,
        ..RuntimeConfig::default()
    };
    let mut runner = IslandRunner::new(settings(), grammar, config, &data).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    runner.set_events(tx);
    runner.run(&data).unwrap();
    let events: Vec<RunEvent> = rx.try_iter().collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RunEvent::Progress { .. })),
        "no progress events"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RunEvent::Migrated { .. })),
        "no migration events"
    );
    assert!(
        matches!(events.last(), Some(RunEvent::Finished { generation }) if *generation == 15),
        "missing final event: {:?}",
        events.last()
    );
}
