//! Checkpoint snapshots: the full runner state as JSON on disk.

use std::fmt;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use caffeine_core::{CaffeineError, CaffeineSettings, EngineState, GrammarConfig};

use crate::config::RuntimeConfig;

/// Runtime error: the engine's own failures plus checkpoint IO/decode.
#[derive(Debug)]
pub enum RuntimeError {
    /// An engine/validation failure.
    Engine(CaffeineError),
    /// A checkpoint file could not be read or written.
    Io(std::io::Error),
    /// A checkpoint file was unreadable or inconsistent with the run.
    Corrupt(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Engine(e) => write!(f, "{e}"),
            RuntimeError::Io(e) => write!(f, "checkpoint IO failure: {e}"),
            RuntimeError::Corrupt(msg) => write!(f, "checkpoint unusable: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Engine(e) => Some(e),
            RuntimeError::Io(e) => Some(e),
            RuntimeError::Corrupt(_) => None,
        }
    }
}

impl From<CaffeineError> for RuntimeError {
    fn from(e: CaffeineError) -> Self {
        RuntimeError::Engine(e)
    }
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

/// A complete, resumable snapshot of an [`crate::IslandRunner`].
///
/// Contains every island's population *and* RNG position, so resuming
/// reproduces the uninterrupted run bit for bit. The dataset itself is not
/// stored (it can be large and lives in the user's files); its shape is,
/// and is re-validated on resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeCheckpoint {
    /// Format version (see [`RuntimeCheckpoint::VERSION`]).
    pub version: u32,
    /// The master settings the run was started with.
    pub master: CaffeineSettings,
    /// The grammar configuration.
    pub grammar: GrammarConfig,
    /// The runtime configuration.
    pub config: RuntimeConfig,
    /// Completed generations.
    pub completed: usize,
    /// Every island's full engine state.
    pub islands: Vec<EngineState>,
    /// Variable count of the training dataset (resume validation).
    pub n_vars: usize,
    /// Sample count of the training dataset (resume validation).
    pub n_samples: usize,
}

impl RuntimeCheckpoint {
    /// Current checkpoint format version.
    pub const VERSION: u32 = 1;

    /// Writes the checkpoint as JSON, atomically (temp file + rename), so
    /// an interruption mid-write never corrupts the previous snapshot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), RuntimeError> {
        let json = serde_json::to_string(self).map_err(|e| RuntimeError::Corrupt(e.to_string()))?;
        // Append (never replace) a suffix: `with_extension` would map both
        // `a.json` and `a.ckpt` — or `state.tmp` and the staging file
        // itself — onto the same path, truncating the good snapshot.
        let mut staged = path.as_os_str().to_owned();
        staged.push(".partial");
        let tmp = std::path::PathBuf::from(staged);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint back from disk.
    ///
    /// The `version` field is inspected *before* the typed decode, so a
    /// checkpoint written by a future format — which may have renamed or
    /// dropped fields — fails with a clear version message instead of a
    /// missing-field error.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] for filesystem failures,
    /// [`RuntimeError::Corrupt`] for undecodable or version-mismatched
    /// files.
    pub fn load(path: &Path) -> Result<RuntimeCheckpoint, RuntimeError> {
        let text = std::fs::read_to_string(path)?;
        let value: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| RuntimeError::Corrupt(format!("{}: {e}", path.display())))?;
        let declared = value["version"].as_u64().ok_or_else(|| {
            RuntimeError::Corrupt(format!(
                "{}: not a checkpoint (missing `version`)",
                path.display()
            ))
        })?;
        if declared != u64::from(RuntimeCheckpoint::VERSION) {
            return Err(RuntimeError::Corrupt(format!(
                "checkpoint version {declared} (this build reads {})",
                RuntimeCheckpoint::VERSION
            )));
        }
        serde::Deserialize::from_value(&value)
            .map_err(|e: serde::Error| RuntimeError::Corrupt(format!("{}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_version_checkpoints_fail_with_the_version_not_a_field_error() {
        let dir = std::env::temp_dir().join(format!("caffeine-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A "future" checkpoint: right version field, unrecognizable rest.
        let path = dir.join("future.ckpt");
        std::fs::write(&path, "{\"version\": 99, \"archipelago\": {}}").unwrap();
        let err = RuntimeCheckpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        // Not a checkpoint at all.
        let path = dir.join("not.ckpt");
        std::fs::write(&path, "{\"models\": []}").unwrap();
        let err = RuntimeCheckpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("missing `version`"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
