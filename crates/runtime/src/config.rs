//! Runtime configuration.

use serde::{Deserialize, Serialize};

use caffeine_core::CaffeineError;

/// Execution policy for an [`crate::IslandRunner`] run.
///
/// Only `islands`, `migrate_every`, and `migrants` shape the search result;
/// `threads` and the checkpoint cadence are pure execution details (any
/// thread count reproduces the same front, and checkpointing never
/// perturbs the run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Worker threads for fitness evaluation (1 = serial).
    pub threads: usize,
    /// Number of islands (1 = plain panmictic NSGA-II).
    pub islands: usize,
    /// Ring-migrate every this many generations (0 disables migration).
    pub migrate_every: usize,
    /// Individuals cloned to the ring neighbor per migration event.
    pub migrants: usize,
    /// Write a checkpoint every this many generations (0 = only on
    /// completion; ignored without a checkpoint path).
    pub checkpoint_every: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            threads: 1,
            islands: 1,
            migrate_every: 25,
            migrants: 2,
            checkpoint_every: 0,
        }
    }
}

impl RuntimeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CaffeineError::InvalidSettings`] for zero thread/island counts.
    pub fn check(&self) -> Result<(), CaffeineError> {
        if self.threads == 0 {
            return Err(CaffeineError::InvalidSettings(
                "threads must be at least 1".into(),
            ));
        }
        if self.islands == 0 {
            return Err(CaffeineError::InvalidSettings(
                "islands must be at least 1".into(),
            ));
        }
        if self.migrants == 0 && self.islands > 1 && self.migrate_every > 0 {
            return Err(CaffeineError::InvalidSettings(
                "migrants must be at least 1 when migration is enabled".into(),
            ));
        }
        Ok(())
    }
}
