//! Job control: a cloneable handle to pause, resume, cancel, and observe
//! a run while it executes on another thread.
//!
//! [`IslandRunner::run`] drives a run to completion in one call; a
//! long-running service needs to own the loop instead — check for a
//! cancel request between generations, expose live progress to pollers,
//! and stop cleanly halfway. [`RunController`] packages that policy:
//! hand a clone to the thread calling [`RunController::drive`] and keep a
//! clone wherever status queries or cancellation come from.

use std::sync::{Arc, Condvar, Mutex};

use serde::{Deserialize, Serialize};

use caffeine_core::{CaffeineResult, EvolutionStats};
use caffeine_doe::Dataset;

use crate::checkpoint::RuntimeError;
use crate::island::IslandRunner;
use crate::stats::PhaseBreakdown;

/// What the controller has most recently been told / observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunPhase {
    /// Advancing generations.
    Running,
    /// Holding between generations until resumed or cancelled.
    Paused,
    /// A cancel request was honored; the run stopped early.
    Cancelled,
    /// Every generation completed.
    Finished,
}

impl RunPhase {
    /// Lowercase label (for JSON status endpoints).
    pub fn as_str(self) -> &'static str {
        match self {
            RunPhase::Running => "running",
            RunPhase::Paused => "paused",
            RunPhase::Cancelled => "cancelled",
            RunPhase::Finished => "finished",
        }
    }
}

/// A point-in-time view of a controlled run's progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Current phase.
    pub phase: RunPhase,
    /// Generations completed so far.
    pub completed_generations: usize,
    /// Total generations the run targets.
    pub total_generations: usize,
    /// The most recent island-0 statistics snapshot, when one exists.
    pub latest: Option<EvolutionStats>,
    /// Where the most recent generation's time went, once one generation
    /// has run under this controller.
    pub phases: Option<PhaseBreakdown>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Desired {
    Run,
    Pause,
    Cancel,
}

#[derive(Debug)]
struct ControlState {
    desired: Desired,
    progress: ProgressSnapshot,
}

/// Shared pause/cancel/progress handle for a run driven by
/// [`RunController::drive`]. Clones share state; every method is safe to
/// call from any thread at any time.
#[derive(Debug, Clone)]
pub struct RunController {
    inner: Arc<(Mutex<ControlState>, Condvar)>,
}

impl Default for RunController {
    fn default() -> Self {
        RunController::new()
    }
}

impl RunController {
    /// Creates a controller in the running phase with empty progress.
    pub fn new() -> RunController {
        RunController {
            inner: Arc::new((
                Mutex::new(ControlState {
                    desired: Desired::Run,
                    progress: ProgressSnapshot {
                        phase: RunPhase::Running,
                        completed_generations: 0,
                        total_generations: 0,
                        latest: None,
                        phases: None,
                    },
                }),
                Condvar::new(),
            )),
        }
    }

    /// Requests a pause; the driving thread holds before the next
    /// generation. Ignored after cancellation.
    pub fn pause(&self) {
        let (lock, cvar) = &*self.inner;
        let mut st = lock.lock().expect("controller lock");
        if st.desired == Desired::Run {
            st.desired = Desired::Pause;
        }
        cvar.notify_all();
    }

    /// Resumes a paused run. Ignored after cancellation.
    pub fn resume(&self) {
        let (lock, cvar) = &*self.inner;
        let mut st = lock.lock().expect("controller lock");
        if st.desired == Desired::Pause {
            st.desired = Desired::Run;
        }
        cvar.notify_all();
    }

    /// Requests cancellation; the driving thread stops before the next
    /// generation (waking it if paused). Irreversible.
    pub fn cancel(&self) {
        let (lock, cvar) = &*self.inner;
        lock.lock().expect("controller lock").desired = Desired::Cancel;
        cvar.notify_all();
    }

    /// `true` once [`RunController::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.0.lock().expect("controller lock").desired == Desired::Cancel
    }

    /// The current progress snapshot.
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.inner
            .0
            .lock()
            .expect("controller lock")
            .progress
            .clone()
    }

    fn set_progress(&self, progress: ProgressSnapshot) {
        self.inner.0.lock().expect("controller lock").progress = progress;
    }

    /// Blocks while paused; returns `false` when cancellation was
    /// requested.
    fn wait_for_go(&self) -> bool {
        let (lock, cvar) = &*self.inner;
        let mut st = lock.lock().expect("controller lock");
        while st.desired == Desired::Pause {
            let phase = RunPhase::Paused;
            st.progress.phase = phase;
            st = cvar.wait(st).expect("controller lock");
        }
        match st.desired {
            Desired::Cancel => false,
            _ => {
                st.progress.phase = RunPhase::Running;
                true
            }
        }
    }

    /// Drives `runner` to completion one generation at a time, honoring
    /// pause/cancel requests between generations and publishing progress
    /// after every generation.
    ///
    /// Returns `Ok(Some(result))` on completion and `Ok(None)` when the
    /// run was cancelled — a cancelled run is not an error, it just has
    /// no harvest. Checkpoints and live events attached to the runner
    /// keep their usual schedules, so a cancelled job can later resume
    /// from its last checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates the runner's validation/IO failures.
    pub fn drive(
        &self,
        runner: &mut IslandRunner,
        data: &Dataset,
    ) -> Result<Option<CaffeineResult>, RuntimeError> {
        self.publish(runner, RunPhase::Running);
        // One evaluator for the whole drive: building it copies the
        // dataset into column-major form, which must not be paid per
        // generation.
        let evaluator = runner.evaluator(data)?;
        loop {
            if !self.wait_for_go() {
                self.publish(runner, RunPhase::Cancelled);
                return Ok(None);
            }
            if runner.is_done() {
                break;
            }
            runner.run_generations_with(&evaluator, data, 1)?;
            self.publish(runner, RunPhase::Running);
        }
        let result = runner.run(data)?; // finishes checkpoint + events, harvests
        self.publish(runner, RunPhase::Finished);
        Ok(Some(result))
    }

    fn publish(&self, runner: &IslandRunner, phase: RunPhase) {
        let latest = runner
            .islands()
            .first()
            .and_then(|i| i.stats.last().cloned());
        self.set_progress(ProgressSnapshot {
            phase,
            completed_generations: runner.completed_generations(),
            total_generations: runner.total_generations(),
            latest,
            phases: runner.last_phases().cloned(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caffeine_core::{CaffeineSettings, GrammarConfig};
    use caffeine_doe::Dataset;

    use crate::config::RuntimeConfig;

    fn tiny_dataset() -> Dataset {
        let xs: Vec<Vec<f64>> = (1..=16).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 / x[0]).collect();
        Dataset::new(vec!["x0".into()], xs, ys).unwrap()
    }

    fn tiny_runner(generations: usize, data: &Dataset) -> IslandRunner {
        let mut settings = CaffeineSettings::quick_test();
        settings.population = 16;
        settings.generations = generations;
        settings.seed = 11;
        IslandRunner::new(
            settings,
            GrammarConfig::rational(1),
            RuntimeConfig::default(),
            data,
        )
        .unwrap()
    }

    #[test]
    fn drive_completes_and_matches_uncontrolled_run() {
        let data = tiny_dataset();
        let mut controlled = tiny_runner(6, &data);
        let mut plain = tiny_runner(6, &data);
        let ctl = RunController::new();
        let result = ctl.drive(&mut controlled, &data).unwrap().unwrap();
        let reference = plain.run(&data).unwrap();
        assert_eq!(result.models, reference.models);
        let snap = ctl.snapshot();
        assert_eq!(snap.phase, RunPhase::Finished);
        assert_eq!(snap.completed_generations, 6);
        assert_eq!(snap.total_generations, 6);
    }

    #[test]
    fn cancel_stops_the_run_early() {
        let data = tiny_dataset();
        let mut runner = tiny_runner(5000, &data);
        let ctl = RunController::new();
        let observer = ctl.clone();
        let handle = std::thread::spawn(move || {
            // Let a few generations pass, then cancel.
            loop {
                let snap = observer.snapshot();
                if snap.completed_generations >= 2 {
                    observer.cancel();
                    return;
                }
                std::thread::yield_now();
            }
        });
        let outcome = ctl.drive(&mut runner, &data).unwrap();
        handle.join().unwrap();
        assert!(outcome.is_none());
        let snap = ctl.snapshot();
        assert_eq!(snap.phase, RunPhase::Cancelled);
        assert!(snap.completed_generations < 5000);
    }

    #[test]
    fn pause_holds_and_resume_releases() {
        let data = tiny_dataset();
        let mut runner = tiny_runner(4, &data);
        let ctl = RunController::new();
        ctl.pause();
        let driver = ctl.clone();
        let handle = std::thread::spawn(move || {
            // The drive blocks immediately (paused before generation 0).
            driver.drive(&mut runner, &data).map(|r| r.is_some())
        });
        // While paused, progress stays at zero completed generations.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(ctl.snapshot().completed_generations, 0);
        ctl.resume();
        assert!(handle.join().unwrap().unwrap());
        assert_eq!(ctl.snapshot().phase, RunPhase::Finished);
    }

    #[test]
    fn cancel_wakes_a_paused_run() {
        let data = tiny_dataset();
        let mut runner = tiny_runner(50, &data);
        let ctl = RunController::new();
        ctl.pause();
        let driver = ctl.clone();
        let handle =
            std::thread::spawn(move || driver.drive(&mut runner, &data).map(|r| r.is_none()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        ctl.cancel();
        assert!(handle.join().unwrap().unwrap());
        assert!(ctl.is_cancelled());
    }

    #[test]
    fn phase_labels_are_lowercase() {
        assert_eq!(RunPhase::Running.as_str(), "running");
        assert_eq!(RunPhase::Paused.as_str(), "paused");
        assert_eq!(RunPhase::Cancelled.as_str(), "cancelled");
        assert_eq!(RunPhase::Finished.as_str(), "finished");
    }
}
