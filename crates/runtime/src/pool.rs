//! Deterministic parallel fitness evaluation.

use std::sync::{Arc, Mutex};

use caffeine_core::gp::Individual;
use caffeine_core::{DatasetEvaluator, Evaluator, FitScratch};
use caffeine_obs::PhaseAccumulator;

/// An [`Evaluator`] that fans a population batch out over scoped worker
/// threads.
///
/// The population slice is split into `threads` contiguous chunks; each
/// worker evaluates its chunk in place with the wrapped serial
/// [`DatasetEvaluator`]. Because per-individual evaluation is pure (no
/// RNG, no cross-individual state), the filled-in evaluations — and hence
/// the whole run — are bit-identical regardless of the thread count or
/// scheduling order. Threads are scoped (`std::thread::scope`), so no
/// `'static` bounds or channel plumbing are needed and a panic in any
/// worker propagates.
///
/// Worker scratches are pooled across generations: each worker checks a
/// [`FitScratch`] out of a shared pool (touching the lock twice per
/// *batch*, never inside the evaluation loop), so the tape VM's chunk
/// stack, its column-buffer pool, and the spare-tape list stay warm from
/// one generation to the next. The basis-column cache is cleared at
/// checkout — memoization never changes outcomes, so pooling preserves
/// the bit-identity guarantee, and clearing keeps the cache scoped to
/// exactly one generation just like the fresh-scratch-per-batch scheme
/// it replaces.
#[derive(Debug)]
pub struct ParallelEvaluator<'a> {
    inner: DatasetEvaluator<'a>,
    threads: usize,
    scratches: Mutex<Vec<FitScratch>>,
}

impl<'a> ParallelEvaluator<'a> {
    /// Wraps a serial evaluator with a thread count (clamped to ≥ 1).
    pub fn new(inner: DatasetEvaluator<'a>, threads: usize) -> ParallelEvaluator<'a> {
        ParallelEvaluator {
            inner,
            threads: threads.max(1),
            scratches: Mutex::new(Vec::new()),
        }
    }

    /// Number of worker scratches currently pooled (diagnostic).
    pub fn pooled_scratches(&self) -> usize {
        self.scratches.lock().map(|s| s.len()).unwrap_or(0)
    }

    /// The wrapped serial evaluator.
    pub fn inner(&self) -> &DatasetEvaluator<'a> {
        &self.inner
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a phase accumulator; every worker's scratch records
    /// basis/solve time and cache traffic into it. Telemetry only — the
    /// evaluation results are unchanged.
    pub fn set_phases(&mut self, phases: Arc<PhaseAccumulator>) {
        self.inner.set_phases(phases);
    }
}

impl Evaluator for ParallelEvaluator<'_> {
    fn phases(&self) -> Option<&Arc<PhaseAccumulator>> {
        self.inner.phases()
    }

    fn evaluate_all(&self, population: &mut [Individual]) {
        if self.threads == 1 || population.len() < 2 {
            self.inner.evaluate_all(population);
            return;
        }
        let chunk = population.len().div_ceil(self.threads);
        std::thread::scope(|scope| {
            for part in population.chunks_mut(chunk) {
                let inner = &self.inner;
                let scratches = &self.scratches;
                scope.spawn(move || {
                    // Check a pooled scratch out (or start fresh on the
                    // first generation). Clearing the cache at checkout
                    // scopes memoization to this batch while keeping the
                    // VM buffer pool and spare tapes warm; inside the
                    // batch the scratch is thread-owned and lock-free,
                    // so chunking stays bit-identical to the serial
                    // evaluator.
                    let mut scratch = scratches
                        .lock()
                        .ok()
                        .and_then(|mut s| s.pop())
                        .unwrap_or_default();
                    scratch.clear_cache();
                    inner.evaluate_batch(part, &mut scratch);
                    if let Ok(mut s) = scratches.lock() {
                        s.push(scratch);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caffeine_core::grammar::RandomExprGen;
    use caffeine_core::{CaffeineSettings, GrammarConfig};
    use caffeine_doe::Dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Dataset {
        let xs: Vec<Vec<f64>> = (1..=20).map(|i| vec![0.5 + i as f64 * 0.2]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 / x[0]).collect();
        Dataset::new(vec!["x0".into()], xs, ys).unwrap()
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let settings = CaffeineSettings::quick_test();
        let grammar = GrammarConfig::rational(1);
        let data = data();
        let gen = RandomExprGen::new(&grammar);
        let mut rng = StdRng::seed_from_u64(5);
        let make = |rng: &mut StdRng| -> Vec<Individual> {
            (0..37)
                .map(|_| Individual::new(vec![gen.gen_basis(rng), gen.gen_basis(rng)]))
                .collect()
        };
        let population = make(&mut rng);

        let serial = DatasetEvaluator::new(&settings, &grammar, &data).unwrap();
        let mut expect = population.clone();
        serial.evaluate_all(&mut expect);

        for threads in [2, 3, 8, 64] {
            let par = ParallelEvaluator::new(
                DatasetEvaluator::new(&settings, &grammar, &data).unwrap(),
                threads,
            );
            let mut got = population.clone();
            par.evaluate_all(&mut got);
            assert_eq!(expect, got, "thread count {threads} diverged");
        }
    }

    #[test]
    fn pooled_scratches_are_reused_and_stay_deterministic() {
        let settings = CaffeineSettings::quick_test();
        let grammar = GrammarConfig::rational(1);
        let data = data();
        let gen = RandomExprGen::new(&grammar);
        let mut rng = StdRng::seed_from_u64(17);
        let population: Vec<Individual> = (0..24)
            .map(|_| Individual::new(vec![gen.gen_basis(&mut rng), gen.gen_basis(&mut rng)]))
            .collect();

        let serial = DatasetEvaluator::new(&settings, &grammar, &data).unwrap();
        let mut expect = population.clone();
        serial.evaluate_all(&mut expect);

        let threads = 4;
        let par = ParallelEvaluator::new(
            DatasetEvaluator::new(&settings, &grammar, &data).unwrap(),
            threads,
        );
        assert_eq!(par.pooled_scratches(), 0);
        // Several "generations" through the same evaluator: every round
        // after the first runs on recycled scratches and must reproduce
        // the serial results exactly.
        for round in 0..3 {
            let mut got = population.clone();
            for ind in &mut got {
                ind.invalidate();
            }
            par.evaluate_all(&mut got);
            assert_eq!(expect, got, "round {round} diverged on pooled scratches");
            let pooled = par.pooled_scratches();
            assert!(
                pooled >= 1 && pooled <= threads,
                "expected 1..={threads} pooled scratches after round {round}, got {pooled}"
            );
        }
    }
}
