//! Deterministic parallel fitness evaluation.

use std::sync::Arc;

use caffeine_core::gp::Individual;
use caffeine_core::{DatasetEvaluator, Evaluator, FitScratch};
use caffeine_obs::PhaseAccumulator;

/// An [`Evaluator`] that fans a population batch out over scoped worker
/// threads.
///
/// The population slice is split into `threads` contiguous chunks; each
/// worker evaluates its chunk in place with the wrapped serial
/// [`DatasetEvaluator`]. Because per-individual evaluation is pure (no
/// RNG, no cross-individual state), the filled-in evaluations — and hence
/// the whole run — are bit-identical regardless of the thread count or
/// scheduling order. Threads are scoped (`std::thread::scope`), so no
/// `'static` bounds or channel plumbing are needed and a panic in any
/// worker propagates.
#[derive(Debug)]
pub struct ParallelEvaluator<'a> {
    inner: DatasetEvaluator<'a>,
    threads: usize,
}

impl<'a> ParallelEvaluator<'a> {
    /// Wraps a serial evaluator with a thread count (clamped to ≥ 1).
    pub fn new(inner: DatasetEvaluator<'a>, threads: usize) -> ParallelEvaluator<'a> {
        ParallelEvaluator {
            inner,
            threads: threads.max(1),
        }
    }

    /// The wrapped serial evaluator.
    pub fn inner(&self) -> &DatasetEvaluator<'a> {
        &self.inner
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a phase accumulator; every worker's scratch records
    /// basis/solve time and cache traffic into it. Telemetry only — the
    /// evaluation results are unchanged.
    pub fn set_phases(&mut self, phases: Arc<PhaseAccumulator>) {
        self.inner.set_phases(phases);
    }
}

impl Evaluator for ParallelEvaluator<'_> {
    fn phases(&self) -> Option<&Arc<PhaseAccumulator>> {
        self.inner.phases()
    }

    fn evaluate_all(&self, population: &mut [Individual]) {
        if self.threads == 1 || population.len() < 2 {
            self.inner.evaluate_all(population);
            return;
        }
        let chunk = population.len().div_ceil(self.threads);
        std::thread::scope(|scope| {
            for part in population.chunks_mut(chunk) {
                let inner = &self.inner;
                scope.spawn(move || {
                    // Each worker owns its scratch: the basis-column
                    // cache and tape VM are lock-free, and memoization
                    // never changes outcomes, so chunking stays
                    // bit-identical to the serial evaluator.
                    let mut scratch = FitScratch::new();
                    inner.evaluate_batch(part, &mut scratch);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caffeine_core::grammar::RandomExprGen;
    use caffeine_core::{CaffeineSettings, GrammarConfig};
    use caffeine_doe::Dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Dataset {
        let xs: Vec<Vec<f64>> = (1..=20).map(|i| vec![0.5 + i as f64 * 0.2]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 / x[0]).collect();
        Dataset::new(vec!["x0".into()], xs, ys).unwrap()
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let settings = CaffeineSettings::quick_test();
        let grammar = GrammarConfig::rational(1);
        let data = data();
        let gen = RandomExprGen::new(&grammar);
        let mut rng = StdRng::seed_from_u64(5);
        let make = |rng: &mut StdRng| -> Vec<Individual> {
            (0..37)
                .map(|_| Individual::new(vec![gen.gen_basis(rng), gen.gen_basis(rng)]))
                .collect()
        };
        let population = make(&mut rng);

        let serial = DatasetEvaluator::new(&settings, &grammar, &data).unwrap();
        let mut expect = population.clone();
        serial.evaluate_all(&mut expect);

        for threads in [2, 3, 8, 64] {
            let par = ParallelEvaluator::new(
                DatasetEvaluator::new(&settings, &grammar, &data).unwrap(),
                threads,
            );
            let mut got = population.clone();
            par.evaluate_all(&mut got);
            assert_eq!(expect, got, "thread count {threads} diverged");
        }
    }
}
