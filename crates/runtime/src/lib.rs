//! `caffeine-runtime` — the parallel island-model execution runtime for
//! the CAFFEINE engine.
//!
//! The core crate deliberately exposes evolution as *state + step +
//! evaluator* ([`caffeine_core::EngineState`], [`caffeine_core::Evaluator`]);
//! this crate supplies the execution policy around that surface:
//!
//! * [`ParallelEvaluator`]: evaluates a population in contiguous chunks on
//!   scoped worker threads. Fitness evaluation is pure per individual, so
//!   the result is **bit-identical** for 1 or N threads — parallelism is
//!   an execution detail, never an algorithmic one.
//! * [`IslandRunner`]: the island model. The population is split over K
//!   islands, each evolving under its own RNG stream derived from the
//!   master seed; every `migrate_every` generations each island's best
//!   nondominated individuals are cloned to its ring neighbor, replacing
//!   the neighbor's worst. With K = 1 the runner reduces exactly to
//!   [`caffeine_core::CaffeineEngine::run`].
//! * [`RuntimeCheckpoint`]: serde snapshots of the full runner state
//!   (every island's population *and* RNG position) written as JSON, with
//!   [`IslandRunner::from_checkpoint`] resuming a run bit-exactly — a
//!   5000-generation reference run survives interruption.
//! * [`RunEvent`]: a live statistics channel; attach any
//!   `std::sync::mpsc::Sender<RunEvent>` to watch progress while a run is
//!   executing.
//! * [`RunController`]: a cloneable pause/resume/cancel handle with live
//!   [`ProgressSnapshot`]s for runs driven on a background thread — the
//!   job-control surface the `caffeine-serve` daemon builds on.
//!
//! # Quickstart
//!
//! ```
//! use caffeine_core::{CaffeineSettings, GrammarConfig};
//! use caffeine_doe::Dataset;
//! use caffeine_runtime::{IslandRunner, RuntimeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let xs: Vec<Vec<f64>> = (1..=24).map(|i| vec![i as f64 * 0.25]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 3.0 / x[0]).collect();
//! let data = Dataset::new(vec!["x0".into()], xs, ys)?;
//!
//! let mut settings = CaffeineSettings::quick_test();
//! settings.seed = 7;
//! let config = RuntimeConfig { threads: 2, islands: 2, ..RuntimeConfig::default() };
//! let mut runner = IslandRunner::new(settings, GrammarConfig::rational(1), config, &data)?;
//! let result = runner.run(&data)?;
//! assert!(!result.models.is_empty());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod checkpoint;
mod config;
mod control;
mod island;
mod pool;
mod stats;

pub use checkpoint::{RuntimeCheckpoint, RuntimeError};
pub use config::RuntimeConfig;
pub use control::{ProgressSnapshot, RunController, RunPhase};
pub use island::{derive_island_seed, IslandRunner};
pub use pool::ParallelEvaluator;
pub use stats::{FrontPoint, PhaseBreakdown, RunEvent};
