//! Live progress events and per-generation phase telemetry.

use caffeine_core::EvolutionStats;
use serde::{Deserialize, Serialize};

/// Where one generation's wall time went, split along the engine's phase
/// vocabulary ([`caffeine_core::phases`]). All durations are seconds.
///
/// Built by [`crate::IslandRunner`] from accumulator deltas around each
/// generation; with a single worker thread the phase fields sum to
/// roughly `wall`, while parallel evaluation makes `basis_eval` /
/// `linear_solve` CPU-time sums that can exceed the wall clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Completed generations when this breakdown was taken.
    pub generation: usize,
    /// Basis-column production (tape compile + cache + evaluation).
    pub basis_eval: f64,
    /// Design-matrix assembly and least-squares / ridge solves.
    pub linear_solve: f64,
    /// Evaluation wall time not covered by the two phases above
    /// (objective assembly, scratch bookkeeping, thread fan-out).
    pub eval_other: f64,
    /// Ranking, tournament variation, and environmental selection.
    pub selection: f64,
    /// Ring migration between islands (zero on non-migration generations).
    pub migration: f64,
    /// Wall time of the whole generation as seen by the runner.
    pub wall: f64,
    /// Basis-column cache hits during the generation.
    pub cache_hits: u64,
    /// Basis-column cache misses during the generation.
    pub cache_misses: u64,
}

impl PhaseBreakdown {
    /// The sum of every phase field (seconds) — the accounted-for part
    /// of [`PhaseBreakdown::wall`].
    pub fn phase_sum(&self) -> f64 {
        self.basis_eval + self.linear_solve + self.eval_other + self.selection + self.migration
    }

    /// Cache hits over total lookups, or `None` when nothing was looked
    /// up this generation.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

/// One point of a live (error, complexity) Pareto front, as carried by
/// [`RunEvent::Progress`] for dashboards and watchers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// Normalized training error (objective 0).
    pub error: f64,
    /// Expression complexity (objective 1).
    pub complexity: f64,
}

/// One progress event emitted by [`crate::IslandRunner`] while a run is
/// executing (send half: any `std::sync::mpsc::Sender<RunEvent>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// Periodic per-island statistics (emitted on the engine's
    /// `stats_every` schedule).
    Progress {
        /// Which island the snapshot belongs to.
        island: usize,
        /// The snapshot.
        stats: EvolutionStats,
        /// Where the generation's time went.
        phases: PhaseBreakdown,
        /// The island's current nondominated (error, complexity) front,
        /// sorted by error and capped at
        /// [`crate::IslandRunner::FRONT_POINT_CAP`] points.
        front: Vec<FrontPoint>,
    },
    /// A migration round completed after this many total generations.
    Migrated {
        /// Completed generations at migration time.
        generation: usize,
    },
    /// A checkpoint was written.
    Checkpointed {
        /// Completed generations at checkpoint time.
        generation: usize,
        /// How long serializing + atomically writing the snapshot took.
        duration_secs: f64,
    },
    /// The run finished all generations.
    Finished {
        /// Total completed generations.
        generation: usize,
    },
}
