//! Live progress events.

use caffeine_core::EvolutionStats;
use serde::{Deserialize, Serialize};

/// One progress event emitted by [`crate::IslandRunner`] while a run is
/// executing (send half: any `std::sync::mpsc::Sender<RunEvent>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// Periodic per-island statistics (emitted on the engine's
    /// `stats_every` schedule).
    Progress {
        /// Which island the snapshot belongs to.
        island: usize,
        /// The snapshot.
        stats: EvolutionStats,
    },
    /// A migration round completed after this many total generations.
    Migrated {
        /// Completed generations at migration time.
        generation: usize,
    },
    /// A checkpoint was written.
    Checkpointed {
        /// Completed generations at checkpoint time.
        generation: usize,
    },
    /// The run finished all generations.
    Finished {
        /// Total completed generations.
        generation: usize,
    },
}
