//! The island model: K engine states evolving side by side with periodic
//! ring migration of nondominated individuals.

use std::path::PathBuf;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

use rand::splitmix64;

use caffeine_core::gp::Individual;
use caffeine_core::phases;
use caffeine_core::{
    assemble_result, nsga2, CaffeineResult, CaffeineSettings, DatasetEvaluator, EngineState,
    EvolutionStats, GrammarConfig,
};
use caffeine_doe::Dataset;
use caffeine_obs::PhaseAccumulator;

use crate::checkpoint::{RuntimeCheckpoint, RuntimeError};
use crate::config::RuntimeConfig;
use crate::pool::ParallelEvaluator;
use crate::stats::{FrontPoint, PhaseBreakdown, RunEvent};

/// Derives the RNG seed of island `island` from the master seed.
///
/// Island 0 keeps the master seed unchanged, so a 1-island run is
/// bit-identical to [`caffeine_core::CaffeineEngine::run`] with the same
/// settings; higher islands get independent SplitMix64-derived streams.
pub fn derive_island_seed(master_seed: u64, island: usize) -> u64 {
    if island == 0 {
        master_seed
    } else {
        let mut state = master_seed ^ (island as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut state)
    }
}

/// Splits a total population over `islands`, remainder to the first ones.
fn split_population(total: usize, islands: usize) -> Vec<usize> {
    let base = total / islands;
    let extra = total % islands;
    (0..islands)
        .map(|i| base + usize::from(i < extra))
        .collect()
}

/// Drives K [`EngineState`] islands to completion with parallel fitness
/// evaluation, ring migration, optional checkpointing, and live progress
/// events. See the crate docs for the determinism guarantees.
#[derive(Debug)]
pub struct IslandRunner {
    master: CaffeineSettings,
    grammar: GrammarConfig,
    config: RuntimeConfig,
    islands: Vec<EngineState>,
    completed: usize,
    checkpoint_path: Option<PathBuf>,
    events: Option<Sender<RunEvent>>,
    /// Telemetry side channel: never serialized into checkpoints and
    /// never compared, so instrumentation cannot perturb determinism.
    phases: Arc<PhaseAccumulator>,
    last_phases: Option<PhaseBreakdown>,
}

impl IslandRunner {
    /// Maximum points in the live Pareto front a Progress event carries —
    /// keeps SSE frames small however large the population gets.
    pub const FRONT_POINT_CAP: usize = 64;

    /// Creates a runner: validates everything, splits the population over
    /// the islands, and draws + evaluates every island's initial
    /// population.
    ///
    /// # Errors
    ///
    /// Propagates settings/grammar/data validation failures; additionally
    /// rejects configurations whose per-island population would drop
    /// below 2.
    pub fn new(
        settings: CaffeineSettings,
        grammar: GrammarConfig,
        config: RuntimeConfig,
        data: &Dataset,
    ) -> Result<IslandRunner, RuntimeError> {
        settings.check()?;
        config.check()?;
        let shares = split_population(settings.population, config.islands);
        if shares.iter().any(|&s| s < 2) {
            return Err(caffeine_core::CaffeineError::InvalidSettings(format!(
                "population {} split over {} islands leaves fewer than 2 individuals per island",
                settings.population, config.islands
            ))
            .into());
        }
        let evaluator = ParallelEvaluator::new(
            DatasetEvaluator::new(&settings, &grammar, data)?,
            config.threads,
        );
        let mut islands = Vec::with_capacity(config.islands);
        for (i, &share) in shares.iter().enumerate() {
            let mut island_settings = settings.clone();
            island_settings.population = share;
            island_settings.seed = derive_island_seed(settings.seed, i);
            islands.push(EngineState::new(
                island_settings,
                grammar.clone(),
                &evaluator,
            )?);
        }
        Ok(IslandRunner {
            master: settings,
            grammar,
            config,
            islands,
            completed: 0,
            checkpoint_path: None,
            events: None,
            phases: Arc::new(phases::engine_accumulator()),
            last_phases: None,
        })
    }

    /// Rebuilds a runner from a checkpoint (see
    /// [`RuntimeCheckpoint::load`]), validating the dataset shape against
    /// the one recorded at save time.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Corrupt`] when the dataset does not match the
    /// checkpointed run.
    pub fn from_checkpoint(
        checkpoint: RuntimeCheckpoint,
        data: &Dataset,
    ) -> Result<IslandRunner, RuntimeError> {
        if checkpoint.n_vars != data.n_vars() || checkpoint.n_samples != data.n_samples() {
            return Err(RuntimeError::Corrupt(format!(
                "checkpoint was taken on a {}×{} dataset but the given one is {}×{}",
                checkpoint.n_samples,
                checkpoint.n_vars,
                data.n_samples(),
                data.n_vars()
            )));
        }
        Ok(IslandRunner {
            master: checkpoint.master,
            grammar: checkpoint.grammar,
            config: checkpoint.config,
            islands: checkpoint.islands,
            completed: checkpoint.completed,
            checkpoint_path: None,
            events: None,
            phases: Arc::new(phases::engine_accumulator()),
            last_phases: None,
        })
    }

    /// Attaches a checkpoint file path; snapshots are written there on the
    /// configured cadence and when the run completes.
    pub fn set_checkpoint_path(&mut self, path: impl Into<PathBuf>) {
        self.checkpoint_path = Some(path.into());
    }

    /// Retargets the total generation count (used to *extend* a resumed
    /// run past the total it was checkpointed with). The evolved state is
    /// untouched: extending a completed 20-generation run to 40 produces
    /// the same models as one uninterrupted 40-generation run, because the
    /// RNG streams continue from where they stopped.
    pub fn set_total_generations(&mut self, generations: usize) {
        self.master.generations = generations;
        for island in &mut self.islands {
            island.settings.generations = generations;
        }
    }

    /// Overrides the worker-thread count. Pure execution policy: any
    /// value reproduces the same result, so this is always safe — on
    /// resume included.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// Overrides the checkpoint cadence (pure execution policy, safe on
    /// resume).
    pub fn set_checkpoint_every(&mut self, generations: usize) {
        self.config.checkpoint_every = generations;
    }

    /// Attaches a live progress channel.
    pub fn set_events(&mut self, sender: Sender<RunEvent>) {
        self.events = Some(sender);
    }

    /// Number of completed generations.
    pub fn completed_generations(&self) -> usize {
        self.completed
    }

    /// Total generations the run targets.
    pub fn total_generations(&self) -> usize {
        self.master.generations
    }

    /// `true` once every generation has run.
    pub fn is_done(&self) -> bool {
        self.completed >= self.master.generations
    }

    /// The runner's execution configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The island states (for inspection/tests).
    pub fn islands(&self) -> &[EngineState] {
        &self.islands
    }

    /// The shared phase accumulator this runner's evaluators record into
    /// (cumulative over the whole run).
    pub fn phases(&self) -> &Arc<PhaseAccumulator> {
        &self.phases
    }

    /// The most recent generation's phase breakdown, once one generation
    /// has run under this runner.
    pub fn last_phases(&self) -> Option<&PhaseBreakdown> {
        self.last_phases.as_ref()
    }

    /// Takes the current state as a serializable checkpoint value.
    pub fn checkpoint(&self, data: &Dataset) -> RuntimeCheckpoint {
        RuntimeCheckpoint {
            version: RuntimeCheckpoint::VERSION,
            master: self.master.clone(),
            grammar: self.grammar.clone(),
            config: self.config.clone(),
            completed: self.completed,
            islands: self.islands.clone(),
            n_vars: data.n_vars(),
            n_samples: data.n_samples(),
        }
    }

    fn emit(&self, event: RunEvent) {
        if let Some(tx) = &self.events {
            let _ = tx.send(event);
        }
    }

    /// Builds one generation's [`PhaseBreakdown`] from the accumulator
    /// deltas since `before` (a [`PhaseAccumulator::snapshot`] taken at
    /// the start of the generation) and the measured wall time.
    fn take_breakdown(&self, before: &[(&'static str, u64)], wall: f64) -> PhaseBreakdown {
        let delta = |name: &str| -> u64 {
            let prev = before
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, v)| *v);
            self.phases.get(name).saturating_sub(prev)
        };
        let secs = |name: &str| delta(name) as f64 / 1e9;
        let basis_eval = secs(phases::BASIS_EVAL);
        let linear_solve = secs(phases::LINEAR_SOLVE);
        let eval_wall = secs(phases::EVAL_WALL);
        PhaseBreakdown {
            generation: self.completed,
            basis_eval,
            linear_solve,
            // Clamped: with parallel workers basis+solve sum CPU time
            // and can exceed the evaluation wall clock.
            eval_other: (eval_wall - basis_eval - linear_solve).max(0.0),
            selection: secs(phases::SELECTION),
            migration: secs(phases::MIGRATION),
            wall,
            cache_hits: delta(phases::CACHE_HITS),
            cache_misses: delta(phases::CACHE_MISSES),
        }
    }

    /// Builds the parallel evaluator this runner's loops use. Creation
    /// copies the dataset into column-major form, so drivers stepping one
    /// generation at a time (e.g. [`crate::RunController::drive`])
    /// should build it once and reuse it via
    /// [`IslandRunner::run_generations_with`].
    ///
    /// # Errors
    ///
    /// Propagates dataset validation failures.
    pub fn evaluator<'a>(&self, data: &'a Dataset) -> Result<ParallelEvaluator<'a>, RuntimeError> {
        let mut evaluator = ParallelEvaluator::new(
            DatasetEvaluator::new(&self.master, &self.grammar, data)?,
            self.config.threads,
        );
        evaluator.set_phases(Arc::clone(&self.phases));
        Ok(evaluator)
    }

    /// Advances the whole archipelago by at most `n` generations
    /// (stopping at the configured total), including migration and
    /// checkpoint writes on their schedules.
    ///
    /// # Errors
    ///
    /// Propagates dataset validation and checkpoint-write failures.
    pub fn run_generations(&mut self, data: &Dataset, n: usize) -> Result<(), RuntimeError> {
        let evaluator = self.evaluator(data)?;
        self.run_generations_with(&evaluator, data, n)
    }

    /// [`IslandRunner::run_generations`] with a caller-owned evaluator
    /// (built by [`IslandRunner::evaluator`]), for drivers that step
    /// repeatedly without paying the per-call dataset copy.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint-write failures.
    pub fn run_generations_with(
        &mut self,
        evaluator: &ParallelEvaluator,
        data: &Dataset,
        n: usize,
    ) -> Result<(), RuntimeError> {
        let target = self.master.generations.min(self.completed + n);
        while self.completed < target {
            let cells_before = self.phases.snapshot();
            // lint: allow(determinism) — telemetry side channel: wall time flows only into PhaseBreakdown events, never into evolution state
            let wall_start = Instant::now();
            let mut grown: Vec<(usize, EvolutionStats, Vec<FrontPoint>)> = Vec::new();
            for (idx, island) in self.islands.iter_mut().enumerate() {
                let before = island.stats.len();
                island.step(evaluator);
                if island.stats.len() > before {
                    let stats = island.stats[island.stats.len() - 1].clone();
                    let front = live_front(&island.population);
                    grown.push((idx, stats, front));
                }
            }
            self.completed += 1;
            // Purely schedule-driven (never conditioned on the total), so
            // a resumed-and-extended run replays the exact migration
            // sequence of an uninterrupted longer run.
            let migration_due = self.islands.len() > 1
                && self.config.migrate_every > 0
                && self.completed.is_multiple_of(self.config.migrate_every);
            if migration_due {
                let acc = Arc::clone(&self.phases);
                let _migration = acc.span(phases::MIGRATION);
                self.migrate();
            }
            let breakdown = self.take_breakdown(&cells_before, wall_start.elapsed().as_secs_f64());
            self.last_phases = Some(breakdown.clone());
            // Progress first, then Migrated — the event order consumers
            // already rely on — with every Progress carrying the full
            // per-generation breakdown (migration time included).
            for (idx, stats, front) in grown {
                self.emit(RunEvent::Progress {
                    island: idx,
                    stats,
                    phases: breakdown.clone(),
                    front,
                });
            }
            if migration_due {
                self.emit(RunEvent::Migrated {
                    generation: self.completed,
                });
            }
            let checkpoint_due = self.checkpoint_path.is_some()
                && self.config.checkpoint_every > 0
                && self.completed.is_multiple_of(self.config.checkpoint_every);
            if checkpoint_due {
                self.write_checkpoint(data)?;
            }
        }
        Ok(())
    }

    /// Runs to completion and harvests the combined result: every island's
    /// feasible individuals pooled, plus the constant anchor, filtered to
    /// the (train-error, complexity) front. Statistics come from island 0
    /// (the master-seed stream).
    ///
    /// # Errors
    ///
    /// Propagates validation/IO failures and
    /// [`caffeine_core::CaffeineError::NoFeasibleModel`] when nothing
    /// evaluable evolved.
    pub fn run(&mut self, data: &Dataset) -> Result<CaffeineResult, RuntimeError> {
        let remaining = self.master.generations - self.completed.min(self.master.generations);
        self.run_generations(data, remaining)?;
        if self.checkpoint_path.is_some() {
            self.write_checkpoint(data)?;
        }
        self.emit(RunEvent::Finished {
            generation: self.completed,
        });
        self.finish(data)
    }

    /// Harvests the current populations without running further (used for
    /// the final result and by tests).
    ///
    /// # Errors
    ///
    /// Propagates dataset validation failures and
    /// [`caffeine_core::CaffeineError::NoFeasibleModel`].
    pub fn finish(&self, data: &Dataset) -> Result<CaffeineResult, RuntimeError> {
        let evaluator = DatasetEvaluator::new(&self.master, &self.grammar, data)?;
        let mut models = Vec::new();
        for island in &self.islands {
            models.extend(island.harvest());
        }
        let anchor = evaluator.constant_model(self.grammar.weights);
        let stats = self.islands[0].stats.clone();
        Ok(assemble_result(models, anchor, stats)?)
    }

    fn write_checkpoint(&self, data: &Dataset) -> Result<(), RuntimeError> {
        if let Some(path) = &self.checkpoint_path {
            // lint: allow(determinism) — telemetry side channel: checkpoint write timing is reported on RunEvent::Checkpointed, never read back
            let started = Instant::now();
            self.checkpoint(data).save(path)?;
            self.emit(RunEvent::Checkpointed {
                generation: self.completed,
                duration_secs: started.elapsed().as_secs_f64(),
            });
        }
        Ok(())
    }

    /// One ring-migration round: island `i` sends clones of its best
    /// `migrants` individuals to island `(i+1) % K`, replacing the
    /// destination's worst. "Best"/"worst" use the NSGA-II crowded
    /// comparison with index order as the final tiebreak, so migration is
    /// fully deterministic.
    fn migrate(&mut self) {
        let k = self.islands.len();
        let emigrants: Vec<Vec<Individual>> = self
            .islands
            .iter()
            .map(|island| {
                let order = crowded_order(&island.population);
                order
                    .iter()
                    .take(self.config.migrants.min(island.population.len()))
                    .map(|&i| island.population[i].clone())
                    .collect()
            })
            .collect();
        for (src, movers) in emigrants.into_iter().enumerate() {
            let dst = (src + 1) % k;
            let island = &mut self.islands[dst];
            let order = crowded_order(&island.population);
            // Worst first: walk the crowded order from the back.
            for (mover, &slot) in movers.into_iter().zip(order.iter().rev()) {
                island.population[slot] = mover;
            }
        }
    }
}

/// The population's current nondominated (error, complexity) points,
/// sorted by error, deduplicated, and capped at
/// [`IslandRunner::FRONT_POINT_CAP`]. Read-only telemetry — no RNG, no
/// mutation — so carrying it on progress events cannot perturb the run.
fn live_front(population: &[Individual]) -> Vec<FrontPoint> {
    let objectives: Vec<Vec<f64>> = population.iter().map(|i| i.objectives().to_vec()).collect();
    let ranked = nsga2::rank_population(&objectives);
    let mut points: Vec<FrontPoint> = objectives
        .iter()
        .enumerate()
        .filter(|(i, o)| ranked.rank[*i] == 0 && o.len() >= 2 && o.iter().all(|v| v.is_finite()))
        .map(|(_, o)| FrontPoint {
            error: o[0],
            complexity: o[1],
        })
        .collect();
    points.sort_by(|a, b| {
        a.error
            .partial_cmp(&b.error)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                a.complexity
                    .partial_cmp(&b.complexity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    });
    points.dedup_by(|a, b| a.error == b.error && a.complexity == b.complexity);
    points.truncate(IslandRunner::FRONT_POINT_CAP);
    points
}

/// Indices sorted best-to-worst under the NSGA-II crowded comparison
/// (rank ascending, crowding distance descending, index ascending).
fn crowded_order(population: &[Individual]) -> Vec<usize> {
    let objectives: Vec<Vec<f64>> = population.iter().map(|i| i.objectives().to_vec()).collect();
    let ranked = nsga2::rank_population(&objectives);
    let mut order: Vec<usize> = (0..population.len()).collect();
    order.sort_by(|&a, &b| {
        ranked.rank[a]
            .cmp(&ranked.rank[b])
            .then_with(|| {
                ranked.crowding[b]
                    .partial_cmp(&ranked.crowding[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn island_seeds_are_distinct_streams() {
        let master = 42;
        assert_eq!(derive_island_seed(master, 0), master);
        let seeds: Vec<u64> = (0..8).map(|i| derive_island_seed(master, i)).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "islands {i} and {j} share a seed");
            }
        }
    }

    #[test]
    fn population_split_covers_total() {
        assert_eq!(split_population(10, 3), vec![4, 3, 3]);
        assert_eq!(split_population(9, 3), vec![3, 3, 3]);
        assert_eq!(split_population(7, 1), vec![7]);
        for (total, k) in [(200, 8), (50, 3), (11, 5)] {
            let shares = split_population(total, k);
            assert_eq!(shares.iter().sum::<usize>(), total);
        }
    }
}
