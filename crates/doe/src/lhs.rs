use rand::seq::SliceRandom;
use rand::Rng;

use crate::DoeError;

/// Latin hypercube sample of `n` points in `[0, 1]^d`.
///
/// Each dimension is divided into `n` equal strata and each stratum is hit
/// exactly once, with a uniformly random offset inside the stratum and an
/// independent random permutation per dimension.
///
/// Not used by the paper's headline experiment (which uses an orthogonal
/// array), but provided for broader design-space modeling and the
/// extension experiments.
///
/// # Errors
///
/// Returns [`DoeError::EmptyDesign`] when `n == 0` or `d == 0`.
///
/// # Example
///
/// ```
/// use caffeine_doe::latin_hypercube;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let pts = latin_hypercube(10, 3, &mut rng).unwrap();
/// assert_eq!(pts.len(), 10);
/// assert!(pts.iter().all(|p| p.iter().all(|&v| (0.0..1.0).contains(&v))));
/// ```
pub fn latin_hypercube<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Vec<Vec<f64>>, DoeError> {
    if n == 0 || d == 0 {
        return Err(DoeError::EmptyDesign);
    }
    let mut points = vec![vec![0.0; d]; n];
    let mut strata: Vec<usize> = (0..n).collect();
    for dim in 0..d {
        strata.shuffle(rng);
        for (i, &s) in strata.iter().enumerate() {
            let offset: f64 = rng.gen_range(0.0..1.0);
            points[i][dim] = (s as f64 + offset) / n as f64;
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn each_stratum_hit_exactly_once() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 16;
        let pts = latin_hypercube(n, 4, &mut rng).unwrap();
        for dim in 0..4 {
            let mut hit = vec![false; n];
            for p in &pts {
                let stratum = (p[dim] * n as f64).floor() as usize;
                assert!(!hit[stratum], "stratum {stratum} hit twice in dim {dim}");
                hit[stratum] = true;
            }
            assert!(hit.iter().all(|&h| h));
        }
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = latin_hypercube(100, 2, &mut rng).unwrap();
        assert!(pts
            .iter()
            .all(|p| p.iter().all(|&v| (0.0..1.0).contains(&v))));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            latin_hypercube(0, 3, &mut rng),
            Err(DoeError::EmptyDesign)
        ));
        assert!(matches!(
            latin_hypercube(3, 0, &mut rng),
            Err(DoeError::EmptyDesign)
        ));
    }

    #[test]
    fn different_seeds_give_different_designs() {
        let a = latin_hypercube(8, 2, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = latin_hypercube(8, 2, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_reproduces() {
        let a = latin_hypercube(8, 2, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = latin_hypercube(8, 2, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
