use crate::gf3::{all_vectors, dot, Gf3};
use crate::DoeError;

/// A strength-2 orthogonal array with 3 levels, `OA(3^k, q, 3, 2)`.
///
/// Built with the Rao–Hamming construction: runs are the vectors of
/// GF(3)^k; columns are the projective points of PG(k−1, 3) — the nonzero
/// vectors whose first nonzero coordinate is 1, `q = (3^k − 1)/2` of them —
/// and entry `(r, c)` is the dot product `r·c` over GF(3).
///
/// Strength 2 means: in any *pair* of columns, each of the 9 level pairs
/// appears exactly `3^(k−2)` times. This is the "full orthogonal-hypercube
/// DOE" of the paper: for `k = 5` we get 243 runs, exactly the paper's
/// sample count, and 121 available columns from which the 13 design
/// variables take the first 13.
///
/// # Example
///
/// ```
/// use caffeine_doe::OrthogonalArray;
///
/// let oa = OrthogonalArray::rao_hamming(2).unwrap(); // OA(9, 4, 3, 2)
/// assert_eq!(oa.runs(), 9);
/// assert_eq!(oa.columns(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrthogonalArray {
    /// Level matrix, `runs × columns`, entries in `{0, 1, 2}`.
    levels: Vec<Vec<u8>>,
    runs: usize,
    columns: usize,
}

impl OrthogonalArray {
    /// Builds `OA(3^k, (3^k − 1)/2, 3, 2)` with the Rao–Hamming construction.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::InvalidParameter`] when `k = 0` or when `3^k`
    /// would overflow the address space (`k > 12`).
    pub fn rao_hamming(k: usize) -> Result<Self, DoeError> {
        if k == 0 {
            return Err(DoeError::InvalidParameter("k must be >= 1".into()));
        }
        if k > 12 {
            return Err(DoeError::InvalidParameter(format!(
                "k = {k} gives 3^{k} runs, which is unreasonably large"
            )));
        }
        // Column generators: projective representatives (first nonzero
        // coordinate equals 1).
        let mut generators: Vec<Vec<Gf3>> = Vec::new();
        for v in all_vectors(k) {
            if let Some(first_nonzero) = v.iter().find(|g| **g != Gf3::ZERO) {
                if *first_nonzero == Gf3::ONE {
                    generators.push(v);
                }
            }
        }
        debug_assert_eq!(generators.len(), (3usize.pow(k as u32) - 1) / 2);
        // Order by Hamming weight so the k unit vectors come first: any
        // prefix of >= k columns then spans GF(3)^k, which makes the
        // run -> levels projection injective (distinct design points when
        // only the first q columns are used, as the OTA experiment does).
        generators.sort_by_key(|v| v.iter().filter(|g| **g != Gf3::ZERO).count());

        let runs_vecs = all_vectors(k);
        let levels: Vec<Vec<u8>> = runs_vecs
            .iter()
            .map(|r| generators.iter().map(|c| dot(r, c).value()).collect())
            .collect();
        let runs = levels.len();
        let columns = generators.len();
        Ok(OrthogonalArray {
            levels,
            runs,
            columns,
        })
    }

    /// Builds the smallest Rao–Hamming array that offers at least
    /// `min_columns` columns (and therefore at least `min_runs` runs).
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::TooManyColumns`] if no `k ≤ 12` suffices.
    pub fn with_capacity(min_runs: usize, min_columns: usize) -> Result<Self, DoeError> {
        for k in 1..=12usize {
            let runs = 3usize.pow(k as u32);
            let cols = (runs - 1) / 2;
            if runs >= min_runs && cols >= min_columns {
                return Self::rao_hamming(k);
            }
        }
        Err(DoeError::TooManyColumns {
            requested: min_columns,
            available: (3usize.pow(12) - 1) / 2,
        })
    }

    /// Number of runs (rows).
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Number of available columns (factors).
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// The level (0, 1 or 2) of factor `column` in run `run`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn level(&self, run: usize, column: usize) -> u8 {
        self.levels[run][column]
    }

    /// Borrows run `run` as a slice of levels.
    ///
    /// # Panics
    ///
    /// Panics when `run >= runs`.
    pub fn run_levels(&self, run: usize) -> &[u8] {
        &self.levels[run]
    }

    /// Extracts a sub-array keeping only the first `n` columns.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::TooManyColumns`] when `n > columns`.
    pub fn take_columns(&self, n: usize) -> Result<OrthogonalArray, DoeError> {
        if n > self.columns {
            return Err(DoeError::TooManyColumns {
                requested: n,
                available: self.columns,
            });
        }
        let levels: Vec<Vec<u8>> = self.levels.iter().map(|row| row[..n].to_vec()).collect();
        Ok(OrthogonalArray {
            levels,
            runs: self.runs,
            columns: n,
        })
    }

    /// Checks the strength-2 property on the given columns: every ordered
    /// pair of levels appears equally often in every pair of distinct
    /// columns.
    pub fn verify_strength_two(&self, columns: &[usize]) -> bool {
        let expected = self.runs / 9;
        for (ai, &a) in columns.iter().enumerate() {
            for &b in &columns[ai + 1..] {
                if a >= self.columns || b >= self.columns {
                    return false;
                }
                let mut counts = [[0usize; 3]; 3];
                for row in &self.levels {
                    counts[row[a] as usize][row[b] as usize] += 1;
                }
                for r in &counts {
                    for &c in r {
                        if c != expected {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Checks level balance in a single column (each level appears
    /// `runs / 3` times).
    pub fn verify_balance(&self, column: usize) -> bool {
        if column >= self.columns {
            return false;
        }
        let mut counts = [0usize; 3];
        for row in &self.levels {
            counts[row[column] as usize] += 1;
        }
        counts.iter().all(|&c| c == self.runs / 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oa9_matches_textbook_size() {
        let oa = OrthogonalArray::rao_hamming(2).unwrap();
        assert_eq!(oa.runs(), 9);
        assert_eq!(oa.columns(), 4);
        assert!(oa.verify_strength_two(&[0, 1, 2, 3]));
    }

    #[test]
    fn oa243_has_enough_columns_for_the_ota() {
        let oa = OrthogonalArray::rao_hamming(5).unwrap();
        assert_eq!(oa.runs(), 243);
        assert_eq!(oa.columns(), 121);
        let cols: Vec<usize> = (0..13).collect();
        assert!(oa.verify_strength_two(&cols));
        for c in 0..13 {
            assert!(oa.verify_balance(c));
        }
    }

    #[test]
    fn with_capacity_picks_smallest_k() {
        let oa = OrthogonalArray::with_capacity(100, 13).unwrap();
        assert_eq!(oa.runs(), 243); // 3^4=81 runs is too few
        let oa2 = OrthogonalArray::with_capacity(9, 4).unwrap();
        assert_eq!(oa2.runs(), 9);
    }

    #[test]
    fn take_columns_preserves_strength() {
        let oa = OrthogonalArray::rao_hamming(3).unwrap();
        let sub = oa.take_columns(5).unwrap();
        assert_eq!(sub.columns(), 5);
        assert!(sub.verify_strength_two(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn take_too_many_columns_errors() {
        let oa = OrthogonalArray::rao_hamming(2).unwrap();
        assert!(matches!(
            oa.take_columns(5),
            Err(DoeError::TooManyColumns { .. })
        ));
    }

    #[test]
    fn k_zero_rejected() {
        assert!(matches!(
            OrthogonalArray::rao_hamming(0),
            Err(DoeError::InvalidParameter(_))
        ));
    }

    #[test]
    fn huge_k_rejected() {
        assert!(matches!(
            OrthogonalArray::rao_hamming(13),
            Err(DoeError::InvalidParameter(_))
        ));
    }

    #[test]
    fn all_rows_distinct_for_k5_first_13_columns() {
        // The mapping run -> first 13 levels need not be injective in
        // general, but for the Rao-Hamming array with the identity basis
        // vectors among the first columns it is; the OTA sampler relies on
        // distinct design points.
        let oa = OrthogonalArray::rao_hamming(5).unwrap();
        let mut rows: Vec<Vec<u8>> = (0..oa.runs())
            .map(|r| oa.run_levels(r)[..13].to_vec())
            .collect();
        rows.sort();
        rows.dedup();
        assert_eq!(rows.len(), 243);
    }

    #[test]
    fn strength_check_rejects_bad_columns() {
        let oa = OrthogonalArray::rao_hamming(2).unwrap();
        assert!(!oa.verify_strength_two(&[0, 99]));
        assert!(!oa.verify_balance(99));
    }
}
