//! Arithmetic over GF(3), the three-element Galois field.
//!
//! Rao–Hamming orthogonal arrays are built from linear functionals over
//! GF(3)^k; this module supplies the (tiny) field kernel.

/// An element of GF(3), stored as `0`, `1`, or `2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gf3(u8);

impl Gf3 {
    /// The additive identity.
    pub const ZERO: Gf3 = Gf3(0);
    /// The multiplicative identity.
    pub const ONE: Gf3 = Gf3(1);
    /// The element two (= −1 in GF(3)).
    pub const TWO: Gf3 = Gf3(2);

    /// Creates an element, reducing the input modulo 3.
    #[inline]
    pub const fn new(v: u8) -> Gf3 {
        Gf3(v % 3)
    }

    /// The canonical representative in `{0, 1, 2}`.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Field addition.
    #[inline]
    pub const fn add(self, rhs: Gf3) -> Gf3 {
        Gf3((self.0 + rhs.0) % 3)
    }

    /// Field multiplication.
    #[inline]
    pub const fn mul(self, rhs: Gf3) -> Gf3 {
        Gf3((self.0 * rhs.0) % 3)
    }

    /// Additive inverse.
    #[inline]
    pub const fn neg(self) -> Gf3 {
        Gf3((3 - self.0) % 3)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics when called on zero.
    #[inline]
    pub fn inv(self) -> Gf3 {
        match self.0 {
            1 => Gf3(1),
            2 => Gf3(2), // 2·2 = 4 ≡ 1 (mod 3)
            _ => panic!("zero has no multiplicative inverse in GF(3)"),
        }
    }

    /// Iterator over all three field elements.
    pub fn all() -> impl Iterator<Item = Gf3> {
        (0u8..3).map(Gf3)
    }
}

/// Dot product of two GF(3) vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[Gf3], b: &[Gf3]) -> Gf3 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b.iter())
        .fold(Gf3::ZERO, |acc, (&x, &y)| acc.add(x.mul(y)))
}

/// Enumerates all vectors of GF(3)^k in lexicographic order
/// (least-significant coordinate varies fastest).
pub fn all_vectors(k: usize) -> Vec<Vec<Gf3>> {
    let n = 3usize.pow(k as u32);
    let mut out = Vec::with_capacity(n);
    for mut idx in 0..n {
        let mut v = Vec::with_capacity(k);
        for _ in 0..k {
            v.push(Gf3::new((idx % 3) as u8));
            idx /= 3;
        }
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_table() {
        assert_eq!(Gf3::ONE.add(Gf3::TWO), Gf3::ZERO);
        assert_eq!(Gf3::TWO.add(Gf3::TWO), Gf3::ONE);
        assert_eq!(Gf3::ZERO.add(Gf3::ONE), Gf3::ONE);
    }

    #[test]
    fn multiplication_table() {
        assert_eq!(Gf3::TWO.mul(Gf3::TWO), Gf3::ONE);
        assert_eq!(Gf3::ONE.mul(Gf3::TWO), Gf3::TWO);
        assert_eq!(Gf3::ZERO.mul(Gf3::TWO), Gf3::ZERO);
    }

    #[test]
    fn negation_is_additive_inverse() {
        for v in Gf3::all() {
            assert_eq!(v.add(v.neg()), Gf3::ZERO);
        }
    }

    #[test]
    fn inverse_is_multiplicative_inverse() {
        for v in [Gf3::ONE, Gf3::TWO] {
            assert_eq!(v.mul(v.inv()), Gf3::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_inverse_panics() {
        let _ = Gf3::ZERO.inv();
    }

    #[test]
    fn new_reduces_mod_three() {
        assert_eq!(Gf3::new(7), Gf3::ONE);
        assert_eq!(Gf3::new(3), Gf3::ZERO);
    }

    #[test]
    fn dot_product_is_bilinear() {
        let a = [Gf3::ONE, Gf3::TWO, Gf3::ZERO];
        let b = [Gf3::TWO, Gf3::TWO, Gf3::ONE];
        // 1·2 + 2·2 + 0·1 = 2 + 4 = 6 ≡ 0
        assert_eq!(dot(&a, &b), Gf3::ZERO);
    }

    #[test]
    fn all_vectors_enumerates_exactly_3_pow_k() {
        let vecs = all_vectors(3);
        assert_eq!(vecs.len(), 27);
        // All distinct.
        let mut sorted: Vec<Vec<u8>> = vecs
            .iter()
            .map(|v| v.iter().map(|g| g.value()).collect())
            .collect();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 27);
    }

    #[test]
    fn all_returns_three_elements() {
        assert_eq!(Gf3::all().count(), 3);
    }
}
