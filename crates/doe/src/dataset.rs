use serde::{Deserialize, Serialize};

use caffeine_linalg::Matrix;

use crate::DoeError;

/// A `{x(t), y(t)}` sample table: `N` design points in `d` variables with
/// one scalar performance value each.
///
/// This is the interface contract of the whole reproduction: the circuit
/// substrate *produces* datasets, and both CAFFEINE and the posynomial
/// baseline *consume* them — exactly the "SPICE simulation data as input"
/// flow of the paper.
///
/// # Example
///
/// ```
/// use caffeine_doe::Dataset;
///
/// let ds = Dataset::new(
///     vec!["id1".into(), "vgs2".into()],
///     vec![vec![1e-5, 0.9], vec![2e-5, 1.0]],
///     vec![57.0, 55.0],
/// ).unwrap();
/// assert_eq!(ds.n_samples(), 2);
/// assert_eq!(ds.n_vars(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    names: Vec<String>,
    /// Row-major design points, `n_samples × n_vars`.
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from variable names, design points, and targets.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidParameter`] when the row lengths disagree with the
    /// variable count or `x.len() != y.len()`.
    pub fn new(names: Vec<String>, x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, DoeError> {
        if x.len() != y.len() {
            return Err(DoeError::InvalidParameter(format!(
                "{} design points but {} targets",
                x.len(),
                y.len()
            )));
        }
        if x.iter().any(|row| row.len() != names.len()) {
            return Err(DoeError::InvalidParameter(
                "every design point must have one value per variable".into(),
            ));
        }
        Ok(Dataset { names, x, y })
    }

    /// Number of samples `N`.
    pub fn n_samples(&self) -> usize {
        self.y.len()
    }

    /// Number of design variables `d`.
    pub fn n_vars(&self) -> usize {
        self.names.len()
    }

    /// Variable names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Design point `t` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `t >= n_samples`.
    pub fn point(&self, t: usize) -> &[f64] {
        &self.x[t]
    }

    /// All design points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The target values.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// The design matrix as a dense `n_samples × n_vars` [`Matrix`].
    pub fn design_matrix(&self) -> Matrix {
        Matrix::from_rows(&self.x)
    }

    /// The design points transposed into column-major
    /// [`PointMatrix`](crate::PointMatrix) storage — the layout the batch
    /// expression evaluator consumes.
    pub fn point_matrix(&self) -> crate::PointMatrix {
        crate::PointMatrix::from_rows(&self.x)
    }

    /// Removes samples whose target is non-finite (the paper notes that
    /// "some of [the simulations] did not converge"; those points simply
    /// drop out of the table). Returns the number of samples removed.
    pub fn drop_nonfinite(&mut self) -> usize {
        let before = self.y.len();
        let keep: Vec<bool> = self
            .y
            .iter()
            .zip(self.x.iter())
            .map(|(y, row)| y.is_finite() && row.iter().all(|v| v.is_finite()))
            .collect();
        let mut i = 0;
        self.x.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
        let mut i = 0;
        self.y.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
        before - self.y.len()
    }

    /// Returns a copy with targets transformed by `f` (the paper log-scales
    /// `fu` with `log10` before learning).
    pub fn map_targets(&self, f: impl Fn(f64) -> f64) -> Dataset {
        Dataset {
            names: self.names.clone(),
            x: self.x.clone(),
            y: self.y.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Returns a copy with a different target vector (used when one
    /// simulation sweep measures several performances).
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidParameter`] when lengths mismatch.
    pub fn with_targets(&self, y: Vec<f64>) -> Result<Dataset, DoeError> {
        if y.len() != self.x.len() {
            return Err(DoeError::InvalidParameter(format!(
                "{} design points but {} targets",
                self.x.len(),
                y.len()
            )));
        }
        Ok(Dataset {
            names: self.names.clone(),
            x: self.x.clone(),
            y,
        })
    }

    /// Index of a variable by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// A train/test pair over the same variables — the paper's
/// `dx = 0.10` (training) / `dx = 0.03` (testing) split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitDataset {
    /// Training table (hypercube shell, `dx = 0.10` in the paper).
    pub train: Dataset,
    /// Testing table (hypercube interior, `dx = 0.03`).
    pub test: Dataset,
}

impl SplitDataset {
    /// Pairs a training and testing dataset.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidParameter`] when the variable names differ: a
    /// model fit on one table must be evaluable on the other.
    pub fn new(train: Dataset, test: Dataset) -> Result<Self, DoeError> {
        if train.names() != test.names() {
            return Err(DoeError::InvalidParameter(
                "train and test datasets must share variable names".into(),
            ));
        }
        Ok(SplitDataset { train, test })
    }

    /// Applies the same target transform to both halves.
    pub fn map_targets(&self, f: impl Fn(f64) -> f64 + Copy) -> SplitDataset {
        SplitDataset {
            train: self.train.map_targets(f),
            test: self.test.map_targets(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Dataset {
        Dataset::new(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![10.0, 20.0, 30.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let ds = demo();
        assert_eq!(ds.n_samples(), 3);
        assert_eq!(ds.n_vars(), 2);
        assert_eq!(ds.point(1), &[3.0, 4.0]);
        assert_eq!(ds.targets(), &[10.0, 20.0, 30.0]);
        assert_eq!(ds.var_index("b"), Some(1));
        assert_eq!(ds.var_index("missing"), None);
    }

    #[test]
    fn length_mismatches_rejected() {
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0]], vec![1.0, 2.0]).is_err());
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0, 2.0]], vec![1.0]).is_err());
    }

    #[test]
    fn drop_nonfinite_removes_diverged_samples() {
        let mut ds = Dataset::new(
            vec!["a".into()],
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![1.0, f64::NAN, 3.0],
        )
        .unwrap();
        let removed = ds.drop_nonfinite();
        assert_eq!(removed, 1);
        assert_eq!(ds.n_samples(), 2);
        assert_eq!(ds.targets(), &[1.0, 3.0]);
        assert_eq!(ds.points().len(), 2);
    }

    #[test]
    fn drop_nonfinite_checks_design_values_too() {
        let mut ds = Dataset::new(
            vec!["a".into()],
            vec![vec![f64::INFINITY], vec![2.0]],
            vec![1.0, 2.0],
        )
        .unwrap();
        assert_eq!(ds.drop_nonfinite(), 1);
        assert_eq!(ds.n_samples(), 1);
    }

    #[test]
    fn map_targets_applies_function() {
        let ds = demo().map_targets(|y| y / 10.0);
        assert_eq!(ds.targets(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn with_targets_swaps_performance() {
        let ds = demo().with_targets(vec![7.0, 8.0, 9.0]).unwrap();
        assert_eq!(ds.targets(), &[7.0, 8.0, 9.0]);
        assert!(demo().with_targets(vec![1.0]).is_err());
    }

    #[test]
    fn design_matrix_matches_points() {
        let m = demo().design_matrix();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], 6.0);
    }

    #[test]
    fn split_requires_matching_names() {
        let tr = demo();
        let te = Dataset::new(
            vec!["a".into(), "c".into()],
            vec![vec![1.0, 2.0]],
            vec![1.0],
        )
        .unwrap();
        assert!(SplitDataset::new(tr.clone(), te).is_err());
        let ok = SplitDataset::new(tr.clone(), tr).unwrap();
        assert_eq!(ok.train.n_samples(), 3);
    }

    #[test]
    fn split_map_targets_hits_both_halves() {
        let s = SplitDataset::new(demo(), demo()).unwrap();
        let s2 = s.map_targets(|y| y + 1.0);
        assert_eq!(s2.train.targets()[0], 11.0);
        assert_eq!(s2.test.targets()[0], 11.0);
    }
}
