use serde::{Deserialize, Serialize};

/// Structure-of-arrays design-point storage: one contiguous `f64` slice per
/// design *variable* rather than per design *point*.
///
/// The row-major `&[Vec<f64>]` layout of [`Dataset`](crate::Dataset) is the
/// natural shape for building tables, but the modeling hot loops consume
/// points the other way around: a basis function is evaluated for *every*
/// point at once, walking one variable column at a time. `PointMatrix` is
/// that transposed, cache-friendly view — `var(j)` yields all `N` values of
/// variable `j` as one contiguous slice, which is what the compiled tape
/// evaluator in `caffeine-core` streams over.
///
/// # Example
///
/// ```
/// use caffeine_doe::PointMatrix;
///
/// let pm = PointMatrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0]]);
/// assert_eq!(pm.n_points(), 2);
/// assert_eq!(pm.n_vars(), 2);
/// assert_eq!(pm.var(1), &[10.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointMatrix {
    n_points: usize,
    n_vars: usize,
    /// Column-major values: `data[j * n_points + t]` is variable `j` of
    /// point `t`.
    data: Vec<f64>,
}

impl PointMatrix {
    /// Transposes row-major design points into column-major storage.
    ///
    /// An empty slice yields a `0 × 0` matrix.
    ///
    /// # Panics
    ///
    /// Panics when the rows have differing lengths. Use
    /// [`PointMatrix::try_from_rows`] for untrusted input.
    pub fn from_rows(points: &[Vec<f64>]) -> PointMatrix {
        PointMatrix::try_from_rows(points)
            .unwrap_or_else(|_| panic!("all design points must have the same number of variables"))
    }

    /// Fallible row-major conversion for untrusted input (e.g. a JSON
    /// batch arriving over the network): ragged rows yield an error
    /// naming the offending row instead of panicking.
    ///
    /// # Errors
    ///
    /// [`crate::DoeError::InvalidParameter`] when the rows have differing
    /// lengths.
    pub fn try_from_rows(points: &[Vec<f64>]) -> Result<PointMatrix, crate::DoeError> {
        let n_points = points.len();
        let n_vars = points.first().map_or(0, Vec::len);
        for (t, p) in points.iter().enumerate() {
            if p.len() != n_vars {
                return Err(crate::DoeError::InvalidParameter(format!(
                    "ragged design points: row 0 has {n_vars} values but row {t} has {}",
                    p.len()
                )));
            }
        }
        let mut data = vec![0.0; n_points * n_vars];
        for (t, p) in points.iter().enumerate() {
            for (j, &v) in p.iter().enumerate() {
                data[j * n_points + t] = v;
            }
        }
        Ok(PointMatrix {
            n_points,
            n_vars,
            data,
        })
    }

    /// Number of design points `N`.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Number of design variables `d`.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// All `N` values of variable `j`, contiguous.
    ///
    /// # Panics
    ///
    /// Panics when `j >= n_vars`.
    #[inline]
    pub fn var(&self, j: usize) -> &[f64] {
        assert!(j < self.n_vars, "variable index {j} out of range");
        &self.data[j * self.n_points..(j + 1) * self.n_points]
    }

    /// Copies point `t` into `out` (one value per variable).
    ///
    /// # Panics
    ///
    /// Panics when `t >= n_points` or `out.len() != n_vars`.
    pub fn point_into(&self, t: usize, out: &mut [f64]) {
        assert!(t < self.n_points, "point index {t} out of range");
        assert_eq!(out.len(), self.n_vars, "output length mismatch");
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.data[j * self.n_points + t];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposes_rows_into_columns() {
        let pm = PointMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
            vec![10.0, 11.0, 12.0],
        ]);
        assert_eq!(pm.n_points(), 4);
        assert_eq!(pm.n_vars(), 3);
        assert_eq!(pm.var(0), &[1.0, 4.0, 7.0, 10.0]);
        assert_eq!(pm.var(2), &[3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn empty_input_is_empty_matrix() {
        let pm = PointMatrix::from_rows(&[]);
        assert_eq!(pm.n_points(), 0);
        assert_eq!(pm.n_vars(), 0);
    }

    #[test]
    #[should_panic(expected = "same number of variables")]
    fn ragged_rows_rejected() {
        let _ = PointMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn try_from_rows_reports_the_offending_row() {
        let err = PointMatrix::try_from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(err.to_string().contains("row 1"), "{err}");
        let ok = PointMatrix::try_from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(
            ok,
            PointMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
        );
    }

    #[test]
    fn point_into_reconstructs_rows() {
        let rows = vec![vec![1.5, -2.0], vec![0.25, 8.0]];
        let pm = PointMatrix::from_rows(&rows);
        let mut buf = [0.0; 2];
        for (t, row) in rows.iter().enumerate() {
            pm.point_into(t, &mut buf);
            assert_eq!(&buf[..], row.as_slice());
        }
    }

    #[test]
    fn serde_round_trip() {
        let pm = PointMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let json = serde_json::to_string(&pm).unwrap();
        let back: PointMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(pm, back);
    }
}
