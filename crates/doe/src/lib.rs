//! Design-of-experiments substrate for the CAFFEINE reproduction.
//!
//! The paper's experimental setup (Sec. 6.1) samples the 13-dimensional
//! design space with "full orthogonal-hypercube Design-Of-Experiments
//! sampling": 243 = 3⁵ design points at relative perturbation `dx = 0.10`
//! for training and another 243 at `dx = 0.03` for testing. This crate
//! provides:
//!
//! * [`gf3`] — arithmetic over the Galois field GF(3),
//! * [`OrthogonalArray`] — strength-2 orthogonal arrays `OA(3^k, q, 3, 2)`
//!   via the Rao–Hamming construction (243 runs ⇒ up to 121 columns, of
//!   which the OTA testbench uses 13),
//! * [`full_factorial`] and [`latin_hypercube`] — alternative plans,
//! * [`ScaledHypercube`] — mapping level indices to physical design-variable
//!   values around a nominal point, and
//! * [`Dataset`] / [`SplitDataset`] — the `{x(t), y(t)}` sample tables the
//!   modeling algorithms consume, and
//! * [`PointMatrix`] — the column-major (structure-of-arrays) view of a
//!   point table that the batch expression evaluator streams over.
//!
//! # Example
//!
//! ```
//! use caffeine_doe::OrthogonalArray;
//!
//! let oa = OrthogonalArray::rao_hamming(5).unwrap(); // 243 runs
//! assert_eq!(oa.runs(), 243);
//! assert!(oa.columns() >= 13);
//! assert!(oa.verify_strength_two(&[0, 5, 12]));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod dataset;
mod error;
mod factorial;
pub mod gf3;
mod lhs;
mod oa;
mod points;
mod scaling;

pub use dataset::{Dataset, SplitDataset};
pub use error::DoeError;
pub use factorial::full_factorial;
pub use lhs::latin_hypercube;
pub use oa::OrthogonalArray;
pub use points::PointMatrix;
pub use scaling::ScaledHypercube;
