use crate::DoeError;

/// Full factorial design: every combination of levels for every factor.
///
/// Returns the run matrix as level indices, one `Vec<usize>` per run. The
/// run count is the product of all level counts, so this is only usable for
/// small dimensionality — which is exactly why the paper uses an orthogonal
/// array for its 13-variable problem and why this function exists mostly
/// for validation and for low-dimensional examples.
///
/// # Errors
///
/// * [`DoeError::EmptyDesign`] when `levels` is empty or any factor has 0
///   levels.
/// * [`DoeError::InvalidParameter`] when the design would exceed 2²⁴ runs.
///
/// # Example
///
/// ```
/// use caffeine_doe::full_factorial;
///
/// let runs = full_factorial(&[2, 3]).unwrap();
/// assert_eq!(runs.len(), 6);
/// assert_eq!(runs[0], vec![0, 0]);
/// assert_eq!(runs[5], vec![1, 2]);
/// ```
pub fn full_factorial(levels: &[usize]) -> Result<Vec<Vec<usize>>, DoeError> {
    if levels.is_empty() || levels.contains(&0) {
        return Err(DoeError::EmptyDesign);
    }
    let total: usize = levels
        .iter()
        .try_fold(1usize, |acc, &l| {
            acc.checked_mul(l).filter(|&t| t <= (1 << 24))
        })
        .ok_or_else(|| {
            DoeError::InvalidParameter("full factorial would exceed 2^24 runs".into())
        })?;

    let mut runs = Vec::with_capacity(total);
    let mut current = vec![0usize; levels.len()];
    loop {
        runs.push(current.clone());
        // Odometer increment, least-significant factor first.
        let mut pos = 0;
        loop {
            if pos == levels.len() {
                return Ok(runs);
            }
            current[pos] += 1;
            if current[pos] < levels[pos] {
                break;
            }
            current[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_three_enumerates_all_combinations() {
        let runs = full_factorial(&[2, 3]).unwrap();
        assert_eq!(runs.len(), 6);
        let mut sorted = runs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn three_level_cube_matches_count() {
        let runs = full_factorial(&[3, 3, 3]).unwrap();
        assert_eq!(runs.len(), 27);
        for run in &runs {
            assert!(run.iter().all(|&l| l < 3));
        }
    }

    #[test]
    fn single_factor_is_identity() {
        let runs = full_factorial(&[4]).unwrap();
        assert_eq!(runs, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn empty_design_rejected() {
        assert!(matches!(full_factorial(&[]), Err(DoeError::EmptyDesign)));
        assert!(matches!(
            full_factorial(&[3, 0]),
            Err(DoeError::EmptyDesign)
        ));
    }

    #[test]
    fn oversized_design_rejected() {
        assert!(matches!(
            full_factorial(&[2; 30]),
            Err(DoeError::InvalidParameter(_))
        ));
    }

    #[test]
    fn level_balance_in_each_factor() {
        let runs = full_factorial(&[3, 2]).unwrap();
        let count0 = runs.iter().filter(|r| r[0] == 1).count();
        assert_eq!(count0, 2); // 6 runs / 3 levels
        let count1 = runs.iter().filter(|r| r[1] == 1).count();
        assert_eq!(count1, 3); // 6 runs / 2 levels
    }
}
