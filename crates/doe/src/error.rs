use std::error::Error;
use std::fmt;

/// Error type for design-of-experiments construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DoeError {
    /// The requested design would be degenerate (zero factors or levels).
    EmptyDesign,
    /// The construction cannot supply the requested number of columns.
    TooManyColumns {
        /// Columns requested.
        requested: usize,
        /// Columns the construction supports.
        available: usize,
    },
    /// A parameter is outside the supported range.
    InvalidParameter(String),
}

impl fmt::Display for DoeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoeError::EmptyDesign => write!(f, "design has no factors or no levels"),
            DoeError::TooManyColumns {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} columns but the construction provides only {available}"
            ),
            DoeError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for DoeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_quantities() {
        let e = DoeError::TooManyColumns {
            requested: 200,
            available: 121,
        };
        let s = e.to_string();
        assert!(s.contains("200") && s.contains("121"));
        assert!(!DoeError::EmptyDesign.to_string().is_empty());
        assert!(DoeError::InvalidParameter("k = 0".into())
            .to_string()
            .contains("k = 0"));
    }
}
