use crate::{DoeError, OrthogonalArray};

/// Maps 3-level design codes onto physical design-variable values around a
/// nominal point.
///
/// The paper samples "with scaled dx = 0.1": each variable takes the values
/// `nominal · (1 − dx)`, `nominal`, `nominal · (1 + dx)` for levels 0, 1, 2.
/// Training data uses `dx = 0.10` (the hypercube's extreme shell) and test
/// data `dx = 0.03` (interior points), which is what makes the paper's
/// test-error-below-train-error observation legitimate interpolation.
///
/// # Example
///
/// ```
/// use caffeine_doe::{OrthogonalArray, ScaledHypercube};
///
/// let oa = OrthogonalArray::rao_hamming(2).unwrap(); // 4 columns
/// let cube = ScaledHypercube::relative(&[1.0e-5, 2.0], 0.1).unwrap();
/// let x = cube.map_run(&oa.run_levels(0)[..2], 3).unwrap();
/// assert_eq!(x.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledHypercube {
    nominal: Vec<f64>,
    /// Per-variable half-range in *absolute* units.
    half_range: Vec<f64>,
}

impl ScaledHypercube {
    /// Creates a hypercube with relative half-range `dx` around `nominal`
    /// (level 0 ⇒ `v·(1−dx)`, level 2 ⇒ `v·(1+dx)`).
    ///
    /// # Errors
    ///
    /// * [`DoeError::EmptyDesign`] for an empty nominal vector.
    /// * [`DoeError::InvalidParameter`] for non-finite nominals, `dx ≤ 0`,
    ///   or `dx ≥ 1` (which would allow sign flips of the variables).
    pub fn relative(nominal: &[f64], dx: f64) -> Result<Self, DoeError> {
        if nominal.is_empty() {
            return Err(DoeError::EmptyDesign);
        }
        if !nominal.iter().all(|v| v.is_finite()) {
            return Err(DoeError::InvalidParameter(
                "nominal point contains non-finite values".into(),
            ));
        }
        if !(dx > 0.0 && dx < 1.0) {
            return Err(DoeError::InvalidParameter(format!(
                "relative dx must be in (0, 1), got {dx}"
            )));
        }
        let half_range = nominal.iter().map(|v| v.abs() * dx).collect();
        Ok(ScaledHypercube {
            nominal: nominal.to_vec(),
            half_range,
        })
    }

    /// Creates a hypercube with explicit absolute half-ranges.
    ///
    /// # Errors
    ///
    /// * [`DoeError::EmptyDesign`] for empty input.
    /// * [`DoeError::InvalidParameter`] on length mismatch, non-finite
    ///   values, or negative half-ranges.
    pub fn absolute(nominal: &[f64], half_range: &[f64]) -> Result<Self, DoeError> {
        if nominal.is_empty() {
            return Err(DoeError::EmptyDesign);
        }
        if nominal.len() != half_range.len() {
            return Err(DoeError::InvalidParameter(format!(
                "nominal has {} entries but half_range has {}",
                nominal.len(),
                half_range.len()
            )));
        }
        if !nominal
            .iter()
            .chain(half_range.iter())
            .all(|v| v.is_finite())
            || half_range.iter().any(|&h| h < 0.0)
        {
            return Err(DoeError::InvalidParameter(
                "nominal/half_range must be finite and half_range non-negative".into(),
            ));
        }
        Ok(ScaledHypercube {
            nominal: nominal.to_vec(),
            half_range: half_range.to_vec(),
        })
    }

    /// Dimensionality of the design space.
    pub fn dim(&self) -> usize {
        self.nominal.len()
    }

    /// The nominal design point.
    pub fn nominal(&self) -> &[f64] {
        &self.nominal
    }

    /// Maps one run's level codes to physical values; levels must be in
    /// `{0, .., n_levels−1}` and are spread symmetrically over
    /// `[nominal − half, nominal + half]`.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidParameter`] on dimension mismatch, `n_levels < 2`,
    /// or an out-of-range level code.
    pub fn map_run(&self, levels: &[u8], n_levels: usize) -> Result<Vec<f64>, DoeError> {
        if levels.len() != self.dim() {
            return Err(DoeError::InvalidParameter(format!(
                "run has {} levels but the cube is {}-dimensional",
                levels.len(),
                self.dim()
            )));
        }
        if n_levels < 2 {
            return Err(DoeError::InvalidParameter(
                "n_levels must be at least 2".into(),
            ));
        }
        let mut x = Vec::with_capacity(self.dim());
        for (i, &lvl) in levels.iter().enumerate() {
            if lvl as usize >= n_levels {
                return Err(DoeError::InvalidParameter(format!(
                    "level {lvl} out of range for {n_levels} levels"
                )));
            }
            // Map level to [-1, 1].
            let t = 2.0 * lvl as f64 / (n_levels as f64 - 1.0) - 1.0;
            x.push(self.nominal[i] + t * self.half_range[i]);
        }
        Ok(x)
    }

    /// Maps an entire orthogonal array (first `dim` columns) to a matrix of
    /// physical design points.
    ///
    /// # Errors
    ///
    /// * [`DoeError::TooManyColumns`] if the array has fewer columns than
    ///   the cube has dimensions.
    /// * Propagates [`ScaledHypercube::map_run`] errors.
    pub fn map_array(&self, oa: &OrthogonalArray) -> Result<Vec<Vec<f64>>, DoeError> {
        if oa.columns() < self.dim() {
            return Err(DoeError::TooManyColumns {
                requested: self.dim(),
                available: oa.columns(),
            });
        }
        (0..oa.runs())
            .map(|r| self.map_run(&oa.run_levels(r)[..self.dim()], 3))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_levels_land_on_expected_values() {
        let cube = ScaledHypercube::relative(&[10.0], 0.1).unwrap();
        assert_eq!(cube.map_run(&[0], 3).unwrap(), vec![9.0]);
        assert_eq!(cube.map_run(&[1], 3).unwrap(), vec![10.0]);
        assert_eq!(cube.map_run(&[2], 3).unwrap(), vec![11.0]);
    }

    #[test]
    fn negative_nominal_keeps_sign_ordering() {
        let cube = ScaledHypercube::relative(&[-2.0], 0.1).unwrap();
        // half-range uses |nominal| so level 0 < level 2 numerically.
        assert_eq!(cube.map_run(&[0], 3).unwrap(), vec![-2.2]);
        assert_eq!(cube.map_run(&[2], 3).unwrap(), vec![-1.8]);
    }

    #[test]
    fn absolute_cube_respects_ranges() {
        let cube = ScaledHypercube::absolute(&[5.0, 1.0], &[0.5, 0.0]).unwrap();
        let x = cube.map_run(&[0, 2], 3).unwrap();
        assert_eq!(x, vec![4.5, 1.0]); // zero half-range pins the variable
    }

    #[test]
    fn map_array_covers_all_runs() {
        let oa = OrthogonalArray::rao_hamming(2).unwrap();
        let cube = ScaledHypercube::relative(&[1.0, 2.0, 3.0, 4.0], 0.03).unwrap();
        let pts = cube.map_array(&oa).unwrap();
        assert_eq!(pts.len(), 9);
        for p in &pts {
            assert_eq!(p.len(), 4);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ScaledHypercube::relative(&[], 0.1).is_err());
        assert!(ScaledHypercube::relative(&[1.0], 0.0).is_err());
        assert!(ScaledHypercube::relative(&[1.0], 1.5).is_err());
        assert!(ScaledHypercube::relative(&[f64::NAN], 0.1).is_err());
        assert!(ScaledHypercube::absolute(&[1.0], &[0.1, 0.2]).is_err());
        assert!(ScaledHypercube::absolute(&[1.0], &[-0.1]).is_err());
    }

    #[test]
    fn map_run_validates_levels() {
        let cube = ScaledHypercube::relative(&[1.0], 0.1).unwrap();
        assert!(cube.map_run(&[3], 3).is_err());
        assert!(cube.map_run(&[0, 0], 3).is_err());
        assert!(cube.map_run(&[0], 1).is_err());
    }

    #[test]
    fn five_level_mapping_is_symmetric() {
        let cube = ScaledHypercube::relative(&[100.0], 0.1).unwrap();
        let vals: Vec<f64> = (0..5u8)
            .map(|l| cube.map_run(&[l], 5).unwrap()[0])
            .collect();
        assert_eq!(vals, vec![90.0, 95.0, 100.0, 105.0, 110.0]);
    }
}
