//! Property-based tests for the DOE substrate.

use caffeine_doe::{full_factorial, latin_hypercube, OrthogonalArray, ScaledHypercube};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Strength-2 must hold for *any* random pair of columns, not just the
    /// first few.
    #[test]
    fn oa_strength_two_on_random_column_pairs(
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        let oa = OrthogonalArray::rao_hamming(k).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let a = rng.gen_range(0..oa.columns());
        let b = rng.gen_range(0..oa.columns());
        if a != b {
            prop_assert!(oa.verify_strength_two(&[a, b]));
        }
        prop_assert!(oa.verify_balance(a));
    }

    #[test]
    fn full_factorial_count_is_product(levels in proptest::collection::vec(1usize..4, 1..5)) {
        let runs = full_factorial(&levels).unwrap();
        let expect: usize = levels.iter().product();
        prop_assert_eq!(runs.len(), expect);
        // Every run in bounds and all runs distinct.
        let mut sorted = runs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), expect);
        for run in &runs {
            for (f, &l) in run.iter().enumerate() {
                prop_assert!(l < levels[f]);
            }
        }
    }

    #[test]
    fn lhs_stratification(n in 1usize..40, d in 1usize..5, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = latin_hypercube(n, d, &mut rng).unwrap();
        for dim in 0..d {
            let mut hit = vec![false; n];
            for p in &pts {
                let s = (p[dim] * n as f64).floor() as usize;
                prop_assert!(s < n);
                prop_assert!(!hit[s]);
                hit[s] = true;
            }
        }
    }

    #[test]
    fn hypercube_mapping_brackets_nominal(
        nominal in proptest::collection::vec(0.1f64..100.0, 1..6),
        dx in 0.01f64..0.5,
    ) {
        let cube = ScaledHypercube::relative(&nominal, dx).unwrap();
        let lo = cube.map_run(&vec![0; nominal.len()], 3).unwrap();
        let mid = cube.map_run(&vec![1; nominal.len()], 3).unwrap();
        let hi = cube.map_run(&vec![2; nominal.len()], 3).unwrap();
        for i in 0..nominal.len() {
            prop_assert!(lo[i] < mid[i] && mid[i] < hi[i]);
            prop_assert!((mid[i] - nominal[i]).abs() < 1e-12);
            let rel = (hi[i] - nominal[i]) / nominal[i];
            prop_assert!((rel - dx).abs() < 1e-9);
        }
    }
}
