//! Property-based tests of the circuit substrate: random linear networks
//! must satisfy conservation laws and agree across analyses.

use caffeine_circuit::ac::solve_ac;
use caffeine_circuit::dc::{solve_dc, DcOptions};
use caffeine_circuit::tran::{solve_tran, TranOptions};
use caffeine_circuit::{Element, Netlist, NodeId};
use proptest::prelude::*;

/// Builds a random resistive ladder: source -> R -> node -> R -> ... with
/// shunt resistors to ground, always connected.
fn ladder(resistances: &[(f64, f64)], vsrc: f64) -> (Netlist, Vec<NodeId>) {
    let mut nl = Netlist::new();
    let vin = nl.node("in");
    nl.add(Element::VSource {
        pos: vin,
        neg: NodeId::GROUND,
        dc: vsrc,
        ac: 1.0,
    });
    let mut nodes = vec![vin];
    let mut prev = vin;
    for (i, &(series, shunt)) in resistances.iter().enumerate() {
        let n = nl.node(&format!("n{i}"));
        nl.add(Element::Resistor {
            a: prev,
            b: n,
            ohms: series,
        });
        nl.add(Element::Resistor {
            a: n,
            b: NodeId::GROUND,
            ohms: shunt,
        });
        nodes.push(n);
        prev = n;
    }
    (nl, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DC node voltages of a resistive ladder are monotonically
    /// attenuated and bounded by the source.
    #[test]
    fn ladder_voltages_attenuate(
        rs in proptest::collection::vec((1e2f64..1e5, 1e2f64..1e5), 1..6),
        v in 0.5f64..10.0,
    ) {
        let (nl, nodes) = ladder(&rs, v);
        let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
        let mut last = v;
        for &n in &nodes[1..] {
            let vn = sol.voltage(n);
            prop_assert!(vn >= -1e-9 && vn <= last + 1e-9,
                "node voltage {vn} outside [0, {last}]");
            last = vn;
        }
    }

    /// KCL at every internal node: series-in equals shunt + series-out.
    #[test]
    fn ladder_kcl_balances(
        rs in proptest::collection::vec((1e2f64..1e5, 1e2f64..1e5), 2..6),
        v in 0.5f64..10.0,
    ) {
        let (nl, nodes) = ladder(&rs, v);
        let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
        for k in 1..nodes.len() - 1 {
            let v_prev = sol.voltage(nodes[k - 1]);
            let v_here = sol.voltage(nodes[k]);
            let v_next = sol.voltage(nodes[k + 1]);
            let i_in = (v_prev - v_here) / rs[k - 1].0;
            let i_shunt = v_here / rs[k - 1].1;
            let i_out = (v_here - v_next) / rs[k].0;
            // Solver tolerance is 1e-9 V; with series resistances as low
            // as 100 Ω that bounds the current residual near 1e-11 A.
            prop_assert!(
                (i_in - i_shunt - i_out).abs() < 1e-6 * i_in.abs().max(1e-6),
                "KCL residual {} vs i_in {}",
                (i_in - i_shunt - i_out).abs(),
                i_in
            );
        }
    }

    /// At (near-)zero frequency the AC solution of a resistive ladder
    /// equals the DC solution scaled by the AC drive.
    #[test]
    fn ac_at_low_frequency_matches_dc(
        rs in proptest::collection::vec((1e3f64..1e5, 1e3f64..1e5), 1..5),
    ) {
        let (nl, nodes) = ladder(&rs, 1.0);
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let sweep = solve_ac(&nl, &dc, &[1e-3]).unwrap();
        for &n in &nodes {
            let vdc = dc.voltage(n);
            let vac = sweep.node_voltages[0][n.0];
            prop_assert!((vac.abs() - vdc.abs()).abs() < 1e-6,
                "node {}: AC {} vs DC {}", n.0, vac.abs(), vdc);
        }
    }

    /// A purely resistive network settles instantly in transient: the
    /// waveform equals the DC solution at every time point.
    #[test]
    fn transient_of_resistive_network_is_flat(
        rs in proptest::collection::vec((1e3f64..1e5, 1e3f64..1e5), 1..4),
        v in 0.5f64..5.0,
    ) {
        let (nl, nodes) = ladder(&rs, v);
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let opts = TranOptions { t_stop: 1e-7, dt: 1e-8, ..TranOptions::default() };
        let tran = solve_tran(&nl, &dc, &opts, |_, _| None).unwrap();
        for &n in &nodes {
            let expect = dc.voltage(n);
            for w in tran.voltages_of(n) {
                prop_assert!((w - expect).abs() < 1e-6);
            }
        }
    }
}
