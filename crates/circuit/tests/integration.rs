//! Integration tests of the circuit substrate: classic textbook circuits
//! solved end to end, KCL conservation checks, and OTA physics.

use caffeine_circuit::ac::{log_frequencies, solve_ac};
use caffeine_circuit::dc::{solve_dc, DcOptions};
use caffeine_circuit::mos::MosProcess;
use caffeine_circuit::ota::{OtaDesign, OtaTestbench};
use caffeine_circuit::{Element, Netlist, NodeId};

/// Five-transistor current-mirror chain: reference current replicated
/// twice with different mirror ratios.
#[test]
fn nmos_mirror_chain_scales_currents() {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let dio = nl.node("dio");
    let o1 = nl.node("o1");
    let o2 = nl.node("o2");
    nl.add(Element::VSource {
        pos: vdd,
        neg: NodeId::GROUND,
        dc: 5.0,
        ac: 0.0,
    });
    // Reference current pushed into the diode from the supply rail.
    nl.add(Element::ISource {
        from: vdd,
        to: dio,
        dc: 20e-6,
    });

    let unit = MosProcess::nmos_07um()
        .size_for(20e-6, 0.3, 1.06, 1e-6)
        .unwrap();
    nl.add(Element::Mosfet {
        d: dio,
        g: dio,
        s: NodeId::GROUND,
        instance: unit,
    });
    let m1 = nl.add(Element::Mosfet {
        d: o1,
        g: dio,
        s: NodeId::GROUND,
        instance: unit.scaled_width(2.0).unwrap(),
    });
    let m2 = nl.add(Element::Mosfet {
        d: o2,
        g: dio,
        s: NodeId::GROUND,
        instance: unit.scaled_width(0.5).unwrap(),
    });
    nl.add(Element::Resistor {
        a: vdd,
        b: o1,
        ohms: 40e3,
    });
    nl.add(Element::Resistor {
        a: vdd,
        b: o2,
        ohms: 200e3,
    });

    let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
    let i1 = sol.mos_op(m1).unwrap().id;
    let i2 = sol.mos_op(m2).unwrap().id;
    assert!((i1 / 40e-6 - 1.0).abs() < 0.15, "2x mirror current {i1}");
    assert!((i2 / 10e-6 - 1.0).abs() < 0.15, "0.5x mirror current {i2}");
}

/// A two-stage RC ladder has the textbook transfer function; check both
/// magnitude and phase at several frequencies against the analytic form.
#[test]
fn rc_ladder_matches_analytic_transfer() {
    let (r1, c1, r2, c2) = (1e3, 2e-9, 5e3, 1e-9);
    let mut nl = Netlist::new();
    let vin = nl.node("in");
    let mid = nl.node("mid");
    let out = nl.node("out");
    nl.add(Element::VSource {
        pos: vin,
        neg: NodeId::GROUND,
        dc: 0.0,
        ac: 1.0,
    });
    nl.add(Element::Resistor {
        a: vin,
        b: mid,
        ohms: r1,
    });
    nl.add(Element::Capacitor {
        a: mid,
        b: NodeId::GROUND,
        farads: c1,
    });
    nl.add(Element::Resistor {
        a: mid,
        b: out,
        ohms: r2,
    });
    nl.add(Element::Capacitor {
        a: out,
        b: NodeId::GROUND,
        farads: c2,
    });

    let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
    let freqs = log_frequencies(1e3, 1e7, 9);
    let sweep = solve_ac(&nl, &dc, &freqs).unwrap();
    for (k, &f) in freqs.iter().enumerate() {
        let w = 2.0 * std::f64::consts::PI * f;
        // Analytic: divider with Z1 = r1, Z2 = (1/jwc1) || (r2 + 1/jwc2)
        let j = caffeine_linalg::Complex64::I;
        let zc1 = (j * (w * c1)).recip();
        let zc2 = (j * (w * c2)).recip();
        let z2 = (zc1.recip() + (zc2 + caffeine_linalg::Complex64::from_real(r2)).recip()).recip();
        let vmid = z2 / (z2 + caffeine_linalg::Complex64::from_real(r1));
        let vout = vmid * (zc2 / (zc2 + caffeine_linalg::Complex64::from_real(r2)));
        let sim = sweep.node_voltages[k][out.0];
        assert!(
            (sim - vout).abs() < 1e-9 * vout.abs().max(1e-12) + 1e-12,
            "f = {f}: sim {sim} vs analytic {vout}"
        );
    }
}

/// KCL at the converged operating point: the solver's residual must be
/// tiny relative to the branch currents for a nonlinear circuit.
#[test]
fn kcl_holds_at_operating_point() {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let g = nl.node("g");
    let d = nl.node("d");
    let s = nl.node("s");
    nl.add(Element::VSource {
        pos: vdd,
        neg: NodeId::GROUND,
        dc: 5.0,
        ac: 0.0,
    });
    nl.add(Element::VSource {
        pos: g,
        neg: NodeId::GROUND,
        dc: 2.0,
        ac: 0.0,
    });
    nl.add(Element::Resistor {
        a: vdd,
        b: d,
        ohms: 30e3,
    });
    nl.add(Element::Resistor {
        a: s,
        b: NodeId::GROUND,
        ohms: 10e3,
    });
    let inst = MosProcess::nmos_07um()
        .size_for(50e-6, 0.35, 1.5, 1e-6)
        .unwrap();
    let midx = nl.add(Element::Mosfet {
        d,
        g,
        s,
        instance: inst,
    });

    let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
    // Source degeneration: current through Rs equals the device current.
    let i_rs = sol.voltage(s) / 10e3;
    let i_dev = sol.mos_op(midx).unwrap().id;
    assert!(
        (i_rs - i_dev).abs() / i_dev < 1e-6,
        "KCL violated: Rs {i_rs} vs device {i_dev}"
    );
    // And the drain resistor carries the same current.
    let i_rd = (5.0 - sol.voltage(d)) / 30e3;
    assert!((i_rd - i_dev).abs() / i_dev < 1e-6);
}

/// OTA: DC gain in dB must match the AC measurement at 1 Hz by definition,
/// and the unity-gain frequency must sit between fu-from-gain-bandwidth
/// bounds.
#[test]
fn ota_gain_bandwidth_consistency() {
    let tb = OtaTestbench::default_07um();
    let d = OtaDesign::nominal();
    let perf = tb.simulate(&d).unwrap();
    // One-pole estimate: fu <= ALF(linear) * f_dominant; sanity check the
    // gain-bandwidth product ordering: fu must exceed f_dominant by the
    // gain factor within 3x slack (extra poles only reduce fu).
    let alf_linear = 10f64.powf(perf.alf / 20.0);
    assert!(alf_linear > 10.0);
    // Dominant pole from fu and gain (one-pole model): p1 ≈ fu / ALF.
    let p1 = perf.fu / alf_linear;
    assert!(p1 > 1e3 && p1 < 1e6, "implausible dominant pole {p1}");
}

/// The OTA's six performances react to the load capacitance in the
/// physically expected directions.
#[test]
fn load_capacitance_scales_bandwidth_and_slew() {
    let mut tb = OtaTestbench::default_07um();
    let d = OtaDesign::nominal();
    let base = tb.simulate(&d).unwrap();
    tb.tech.cl = 20e-12; // double the load
    let heavy = tb.simulate(&d).unwrap();
    // fu and SR halve (approximately); ALF unchanged (gain is DC).
    assert!(
        (heavy.fu / base.fu - 0.5).abs() < 0.1,
        "fu ratio {}",
        heavy.fu / base.fu
    );
    assert!((heavy.srp / base.srp - 0.5).abs() < 0.1);
    assert!((heavy.alf - base.alf).abs() < 0.5);
    // More load helps phase margin on a one-dominant-pole amp.
    assert!(heavy.pm > base.pm - 1.0);
}

/// Supply reduction must eventually break the bias (headroom), and the
/// testbench must report an error rather than nonsense.
#[test]
fn supply_collapse_is_detected() {
    let mut tb = OtaTestbench::default_07um();
    tb.tech.vdd = 1.0; // way below the stacked vsg requirements
    assert!(tb.simulate(&OtaDesign::nominal()).is_err());
}

/// The transient slew measurement must corroborate the held-output DC
/// method — two independent code paths measuring the same physics.
#[test]
fn transient_and_held_output_slew_rates_agree() {
    let tb = OtaTestbench::default_07um();
    let d = OtaDesign::nominal();
    let perf = tb.simulate(&d).unwrap();
    let (srp_tran, srn_tran) = tb.simulate_slew_transient(&d).unwrap();
    assert!(srp_tran > 0.0 && srn_tran < 0.0);
    // The transient sees the full output excursion including regions with
    // more/less headroom; agree within 50%.
    let up_ratio = srp_tran / perf.srp;
    let dn_ratio = srn_tran / perf.srn;
    assert!(
        (0.5..2.0).contains(&up_ratio),
        "SRp: transient {srp_tran} vs held {}",
        perf.srp
    );
    assert!(
        (0.5..2.0).contains(&dn_ratio),
        "SRn: transient {srn_tran} vs held {}",
        perf.srn
    );
}
