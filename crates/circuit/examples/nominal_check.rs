use caffeine_circuit::ota::{OtaDesign, OtaTestbench, OTA_VAR_NAMES};
use std::time::Instant;

fn main() {
    let tb = OtaTestbench::default_07um();
    let t0 = Instant::now();
    let p = tb.simulate(&OtaDesign::nominal()).unwrap();
    println!("one simulate(): {:?}", t0.elapsed());
    println!(
        "ALF={:.2} dB fu={:.3e} Hz PM={:.2} deg voffset={:.4e} V SRp={:.3e} SRn={:.3e}",
        p.alf, p.fu, p.pm, p.voffset, p.srp, p.srn
    );
    let nom = OtaDesign::nominal().to_vec();
    for i in 0..13 {
        let mut lo = nom.clone();
        lo[i] *= 0.9;
        let mut hi = nom.clone();
        hi[i] *= 1.1;
        let pl = tb.simulate(&OtaDesign::from_slice(&lo).unwrap()).unwrap();
        let ph = tb.simulate(&OtaDesign::from_slice(&hi).unwrap()).unwrap();
        println!("{:>6}: ALF {:6.2}..{:6.2}  PM {:6.2}..{:6.2}  fu {:9.3e}..{:9.3e}  vos {:9.2e}..{:9.2e}  SRp {:9.3e}..{:9.3e}",
            OTA_VAR_NAMES[i], pl.alf, ph.alf, pl.pm, ph.pm, pl.fu, ph.fu, pl.voffset, ph.voffset, pl.srp, ph.srp);
    }
}
