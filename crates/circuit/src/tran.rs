//! Transient analysis: fixed-step implicit integration of the nonlinear
//! network.
//!
//! The paper's flow runs "three simulations" per sample (operating point,
//! small-signal, and a large-signal analysis). This module supplies the
//! third: capacitors are replaced by their backward-Euler companion model
//! (`i = C·(v_{n+1} − v_n)/Δt`, a conductance `C/Δt` in parallel with a
//! history current) and each time step is solved with the same damped
//! Newton iteration the DC engine uses. Backward Euler is
//! unconditionally stable and slightly dissipative — exactly what a
//! slew-rate measurement wants; use small `dt` when waveform fidelity
//! matters.
//!
//! Time-varying stimulus is injected through a closure overriding the DC
//! value of any voltage source, so netlists need no special source
//! elements:
//!
//! ```
//! use caffeine_circuit::dc::{solve_dc, DcOptions};
//! use caffeine_circuit::tran::{solve_tran, TranOptions};
//! use caffeine_circuit::{Element, Netlist, NodeId};
//!
//! # fn main() -> Result<(), caffeine_circuit::CircuitError> {
//! // RC low-pass driven by a step.
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let out = nl.node("out");
//! nl.add(Element::VSource { pos: vin, neg: NodeId::GROUND, dc: 0.0, ac: 0.0 });
//! nl.add(Element::Resistor { a: vin, b: out, ohms: 1e3 });
//! nl.add(Element::Capacitor { a: out, b: NodeId::GROUND, farads: 1e-9 });
//! let dc = solve_dc(&nl, &DcOptions::default())?;
//! let opts = TranOptions { t_stop: 5e-6, dt: 10e-9, ..TranOptions::default() };
//! let tran = solve_tran(&nl, &dc, &opts, |branch, _t| {
//!     if branch == 0 { Some(1.0) } else { None } // 1 V step at t = 0
//! })?;
//! let v_end = *tran.voltages_of(out).last().unwrap();
//! assert!((v_end - 1.0).abs() < 0.01); // settled after 5 time constants
//! # Ok(())
//! # }
//! ```

use crate::dc::DcSolution;
use crate::mna::{node_voltages, MnaSystem};
use crate::mos::MosPolarity;
use crate::netlist::{Element, Netlist, NodeId};
use crate::CircuitError;

/// Transient analysis options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranOptions {
    /// End time, seconds.
    pub t_stop: f64,
    /// Fixed time step, seconds.
    pub dt: f64,
    /// Newton iteration budget per time step.
    pub max_newton: usize,
    /// Convergence threshold on the Newton update, volts.
    pub vtol: f64,
    /// gmin left in the circuit for conditioning, siemens.
    pub gmin: f64,
}

impl Default for TranOptions {
    fn default() -> Self {
        TranOptions {
            t_stop: 1e-6,
            dt: 1e-9,
            max_newton: 50,
            vtol: 1e-9,
            gmin: 1e-12,
        }
    }
}

/// A transient waveform set.
#[derive(Debug, Clone)]
pub struct TranResult {
    /// Time points (the initial point `t = 0` is the DC solution).
    pub times: Vec<f64>,
    /// Node voltages per time point, indexed by `NodeId.0` (ground first).
    pub node_voltages: Vec<Vec<f64>>,
}

impl TranResult {
    /// The waveform of one node across the sweep.
    pub fn voltages_of(&self, node: NodeId) -> Vec<f64> {
        self.node_voltages.iter().map(|v| v[node.0]).collect()
    }

    /// Maximum |dV/dt| of a node over the run — a direct slew-rate
    /// estimator for a full-swing transition.
    pub fn max_slope(&self, node: NodeId) -> f64 {
        let v = self.voltages_of(node);
        let mut best = 0.0f64;
        for i in 1..v.len() {
            let dt = self.times[i] - self.times[i - 1];
            if dt > 0.0 {
                best = best.max(((v[i] - v[i - 1]) / dt).abs());
            }
        }
        best
    }
}

/// Runs a transient analysis from a DC operating point.
///
/// `stimulus(branch, t)` may override the DC value of the `branch`-th
/// voltage source (netlist order) at time `t`; returning `None` keeps the
/// bias value. The initial condition is the provided DC solution.
///
/// # Errors
///
/// * [`CircuitError::InvalidDevice`] for a non-positive `dt`/`t_stop`.
/// * [`CircuitError::DcNoConvergence`] when a time step's Newton loop
///   fails (reported with the global iteration count).
/// * [`CircuitError::SingularSystem`] for structurally singular systems.
pub fn solve_tran(
    netlist: &Netlist,
    initial: &DcSolution,
    options: &TranOptions,
    stimulus: impl Fn(usize, f64) -> Option<f64>,
) -> Result<TranResult, CircuitError> {
    if !(options.dt > 0.0) || !(options.t_stop > 0.0) {
        return Err(CircuitError::InvalidDevice(
            "transient needs positive dt and t_stop".into(),
        ));
    }
    netlist.validate()?;
    let n_nodes = netlist.n_nodes() - 1;
    let n_branches = netlist.n_vsources();

    let mut volts = initial.node_voltages.clone();
    let mut times = vec![0.0];
    let mut waves = vec![volts.clone()];
    let mut total_newton = 0usize;

    let steps = (options.t_stop / options.dt).ceil() as usize;
    for step in 1..=steps {
        let t = step as f64 * options.dt;
        let prev = volts.clone();
        // Newton on the companion network.
        let mut converged = false;
        for _ in 0..options.max_newton {
            total_newton += 1;
            let sys = assemble_tran(
                netlist, n_nodes, n_branches, &volts, &prev, options, t, &stimulus,
            );
            let x = sys.solve().map_err(CircuitError::from)?;
            let new_v = node_voltages(&x, n_nodes);
            let mut max_dv = 0.0f64;
            for i in 0..netlist.n_nodes() {
                max_dv = max_dv.max((new_v[i] - volts[i]).abs());
            }
            // Damping mirrors the DC solver.
            let alpha = if max_dv > 0.5 { 0.5 / max_dv } else { 1.0 };
            for i in 0..netlist.n_nodes() {
                volts[i] += alpha * (new_v[i] - volts[i]);
            }
            if !volts.iter().all(|v| v.is_finite()) {
                return Err(CircuitError::DcNoConvergence {
                    iterations: total_newton,
                    residual: f64::INFINITY,
                });
            }
            if max_dv < options.vtol {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(CircuitError::DcNoConvergence {
                iterations: total_newton,
                residual: f64::NAN,
            });
        }
        times.push(t);
        waves.push(volts.clone());
    }
    Ok(TranResult {
        times,
        node_voltages: waves,
    })
}

/// Assembles the companion-model MNA system for one Newton iteration of
/// one time step.
#[allow(clippy::too_many_arguments)]
fn assemble_tran(
    netlist: &Netlist,
    n_nodes: usize,
    n_branches: usize,
    volts: &[f64],
    prev: &[f64],
    options: &TranOptions,
    t: f64,
    stimulus: &impl Fn(usize, f64) -> Option<f64>,
) -> MnaSystem<f64> {
    let mut sys = MnaSystem::new(n_nodes, n_branches);
    sys.stamp_gmin(options.gmin);
    let mut branch = 0usize;
    for e in netlist.elements() {
        match *e {
            Element::Resistor { a, b, ohms } => {
                sys.stamp_conductance(a, b, 1.0 / ohms);
            }
            Element::Capacitor { a, b, farads } => {
                // Backward Euler companion: geq = C/dt, history current
                // ieq = geq·(v_a − v_b)_prev flowing a→b internally.
                let geq = farads / options.dt;
                sys.stamp_conductance(a, b, geq);
                let v_prev = prev[a.0] - prev[b.0];
                // i = geq·v − geq·v_prev: the history term is a current
                // source pushing geq·v_prev INTO a (out of b).
                sys.stamp_current(b, a, geq * v_prev);
            }
            Element::VSource { pos, neg, dc, .. } => {
                let v = stimulus(branch, t).unwrap_or(dc);
                sys.stamp_vsource(branch, pos, neg, v);
                branch += 1;
            }
            Element::ISource { from, to, dc } => {
                sys.stamp_current(from, to, dc);
            }
            Element::Vccs {
                out_pos,
                out_neg,
                cp,
                cn,
                gm,
            } => {
                sys.stamp_vccs(out_pos, out_neg, cp, cn, gm);
            }
            Element::Mosfet { d, g, s, instance } => {
                let polarity = instance.process.polarity;
                let (vc, vo) = Netlist::mos_control_voltages(d, g, s, polarity, volts);
                let op = instance.evaluate(vc, vo);
                let ieq = op.id - op.gm * vc - op.gds * vo;
                match polarity {
                    MosPolarity::Nmos => {
                        sys.stamp_vccs(d, s, g, s, op.gm);
                        sys.stamp_conductance(d, s, op.gds);
                        sys.stamp_current(d, s, ieq);
                    }
                    MosPolarity::Pmos => {
                        sys.stamp_vccs(s, d, s, g, op.gm);
                        sys.stamp_conductance(s, d, op.gds);
                        sys.stamp_current(s, d, ieq);
                    }
                }
                // Device capacitances, backward-Euler companions around
                // the present bias.
                for (na, nb, c) in [(g, s, op.cgs), (g, d, op.cgd), (d, NodeId::GROUND, op.cdb)] {
                    if c > 0.0 {
                        let geq = c / options.dt;
                        sys.stamp_conductance(na, nb, geq);
                        let v_prev = prev[na.0] - prev[nb.0];
                        sys.stamp_current(nb, na, geq * v_prev);
                    }
                }
            }
        }
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{solve_dc, DcOptions};

    fn rc_step() -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.add(Element::VSource {
            pos: vin,
            neg: NodeId::GROUND,
            dc: 0.0,
            ac: 0.0,
        });
        nl.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: 1e3,
        });
        nl.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: 1e-9,
        });
        (nl, out)
    }

    #[test]
    fn rc_step_matches_exponential() {
        let (nl, out) = rc_step();
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let tau = 1e3 * 1e-9;
        let opts = TranOptions {
            t_stop: 5.0 * tau,
            dt: tau / 200.0,
            ..TranOptions::default()
        };
        let tran = solve_tran(
            &nl,
            &dc,
            &opts,
            |b, _| if b == 0 { Some(1.0) } else { None },
        )
        .unwrap();
        for (k, &t) in tran.times.iter().enumerate() {
            let expect = 1.0 - (-t / tau).exp();
            let got = tran.node_voltages[k][out.0];
            // Backward Euler at dt = tau/200: sub-1% local truncation.
            assert!((got - expect).abs() < 0.01, "t = {t}: {got} vs {expect}");
        }
    }

    #[test]
    fn constant_bias_stays_at_dc() {
        let (nl, out) = rc_step();
        // Pre-charge: source at 0.7 V, start from its DC solution.
        let mut nl2 = nl.clone();
        if let Element::VSource { dc, .. } = nl2.element_mut(0) {
            *dc = 0.7;
        }
        let dc = solve_dc(&nl2, &DcOptions::default()).unwrap();
        let opts = TranOptions {
            t_stop: 1e-6,
            dt: 1e-8,
            ..TranOptions::default()
        };
        let tran = solve_tran(&nl2, &dc, &opts, |_, _| None).unwrap();
        for v in tran.voltages_of(out) {
            assert!((v - 0.7).abs() < 1e-6, "drifted to {v}");
        }
    }

    #[test]
    fn current_source_ramps_capacitor_linearly() {
        // I into C: dV/dt = I/C exactly (the slew-rate primitive).
        let mut nl = Netlist::new();
        let n = nl.node("n");
        nl.add(Element::ISource {
            from: NodeId::GROUND,
            to: n,
            dc: 1e-6,
        });
        nl.add(Element::Capacitor {
            a: n,
            b: NodeId::GROUND,
            farads: 1e-9,
        });
        nl.add(Element::Resistor {
            a: n,
            b: NodeId::GROUND,
            ohms: 1e12,
        });
        // Start from an artificial zero state (the true DC would be 1 MV).
        let dc = DcSolution {
            node_voltages: vec![0.0, 0.0],
            vsource_currents: vec![],
            mos_ops: vec![],
            iterations: 0,
        };
        let opts = TranOptions {
            t_stop: 1e-5,
            dt: 1e-8,
            gmin: 1e-15,
            ..TranOptions::default()
        };
        let tran = solve_tran(&nl, &dc, &opts, |_, _| None).unwrap();
        let slope = tran.max_slope(n);
        let expect = 1e-6 / 1e-9; // 1000 V/s
        assert!(
            (slope - expect).abs() / expect < 0.01,
            "slope {slope} vs {expect}"
        );
    }

    #[test]
    fn bad_options_rejected() {
        let (nl, _) = rc_step();
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let bad = TranOptions {
            dt: 0.0,
            ..TranOptions::default()
        };
        assert!(solve_tran(&nl, &dc, &bad, |_, _| None).is_err());
    }

    #[test]
    fn time_varying_stimulus_is_applied_per_step() {
        let (nl, out) = rc_step();
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let tau = 1e-6;
        let opts = TranOptions {
            t_stop: 4.0 * tau,
            dt: tau / 100.0,
            ..TranOptions::default()
        };
        // Square wave: 1 V for t < 2τ, back to 0 after.
        let tran = solve_tran(&nl, &dc, &opts, |b, t| {
            if b == 0 {
                Some(if t < 2.0 * tau { 1.0 } else { 0.0 })
            } else {
                None
            }
        })
        .unwrap();
        let v = tran.voltages_of(out);
        let mid = v[tran.times.iter().position(|&t| t >= 2.0 * tau).unwrap() - 1];
        assert!(mid > 0.8, "charged to {mid}");
        let end = *v.last().unwrap();
        assert!(end < 0.2, "discharged to {end}");
    }
}
