//! DC operating-point analysis: damped Newton–Raphson with gmin stepping.
//!
//! Each Newton iteration linearizes every MOSFET around the present node
//! voltages (companion model: `gm`, `gds`, and an equivalent current
//! source) and solves the resulting linear MNA system. Convergence is
//! helped by two standard techniques:
//!
//! * **voltage damping** — the update is scaled so no node moves more than
//!   [`DcOptions::max_step`] volts per iteration, and
//! * **gmin stepping** — a conductance ladder from every node to ground is
//!   swept from large to tiny, each rung warm-starting the next (a simple
//!   homotopy that tames the OTA's high-impedance nodes).

use caffeine_linalg::LinalgError;

use crate::mna::{node_voltages, MnaSystem};
use crate::mos::{MosOperatingPoint, MosPolarity};
use crate::netlist::{Element, Netlist, NodeId};
use crate::CircuitError;

/// Tuning knobs for the DC solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOptions {
    /// Maximum Newton iterations per gmin rung.
    pub max_iterations: usize,
    /// Convergence threshold on the raw Newton update, volts.
    pub vtol: f64,
    /// Largest allowed per-iteration node-voltage change, volts.
    pub max_step: f64,
    /// First (largest) gmin value of the homotopy ladder, siemens.
    pub gmin_start: f64,
    /// Final gmin left in the circuit for numerical robustness, siemens.
    pub gmin_final: f64,
    /// Ladder reduction factor per rung (> 1).
    pub gmin_factor: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iterations: 200,
            vtol: 1e-9,
            max_step: 0.5,
            gmin_start: 1e-3,
            gmin_final: 1e-12,
            gmin_factor: 10.0,
        }
    }
}

/// The result of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    /// Node voltages indexed by `NodeId.0` (ground = entry 0 = 0.0 V).
    pub node_voltages: Vec<f64>,
    /// Branch currents of the independent voltage sources, in netlist
    /// order. Positive current flows *into* the source's positive terminal
    /// (MNA convention).
    pub vsource_currents: Vec<f64>,
    /// Per-MOSFET operating points, `(element index, op)`, in the
    /// polarity-normalized convention of [`crate::mos`].
    pub mos_ops: Vec<(usize, MosOperatingPoint)>,
    /// Total Newton iterations across the whole homotopy.
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage of a node.
    pub fn voltage(&self, n: NodeId) -> f64 {
        self.node_voltages[n.0]
    }

    /// Operating point of the MOSFET at element index `idx`, if that
    /// element is a MOSFET.
    pub fn mos_op(&self, idx: usize) -> Option<&MosOperatingPoint> {
        self.mos_ops
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, op)| op)
    }

    /// Branch current of the `k`-th voltage source (netlist order).
    pub fn vsource_current(&self, k: usize) -> f64 {
        self.vsource_currents[k]
    }
}

/// Solves the DC operating point of a netlist.
///
/// # Errors
///
/// * Netlist validation errors ([`CircuitError::UnknownNode`],
///   [`CircuitError::InvalidDevice`]).
/// * [`CircuitError::DcNoConvergence`] when Newton fails on the final rung.
/// * [`CircuitError::SingularSystem`] for structurally singular circuits.
pub fn solve_dc(netlist: &Netlist, options: &DcOptions) -> Result<DcSolution, CircuitError> {
    netlist.validate()?;
    let n_nodes = netlist.n_nodes() - 1;
    let n_branches = netlist.n_vsources();

    // Initial guess: propagate grounded voltage sources, everything else 0.
    let mut volts = vec![0.0; netlist.n_nodes()];
    for e in netlist.elements() {
        if let Element::VSource { pos, neg, dc, .. } = e {
            if neg.is_ground() && !pos.is_ground() {
                volts[pos.0] = *dc;
            } else if pos.is_ground() && !neg.is_ground() {
                volts[neg.0] = -*dc;
            }
        }
    }

    let mut total_iterations = 0usize;
    let mut gmin = options.gmin_start;
    loop {
        let converged = newton_loop(
            netlist,
            n_nodes,
            n_branches,
            gmin,
            options,
            &mut volts,
            &mut total_iterations,
        )?;
        if !converged && gmin <= options.gmin_final {
            return Err(CircuitError::DcNoConvergence {
                iterations: total_iterations,
                residual: residual_norm(netlist, &volts, gmin),
            });
        }
        if gmin <= options.gmin_final {
            break;
        }
        gmin = (gmin / options.gmin_factor).max(options.gmin_final);
    }

    // Final assembly at the converged point to extract branch currents.
    let sys = assemble(netlist, n_nodes, n_branches, &volts, options.gmin_final);
    let x = sys.solve().map_err(lift_singular)?;
    let node_v = node_voltages(&x, n_nodes);
    let vsource_currents = x[n_nodes..].to_vec();

    let mut mos_ops = Vec::new();
    for (idx, d, g, s, inst) in netlist.mosfets() {
        let (vgs, vds) = Netlist::mos_control_voltages(d, g, s, inst.process.polarity, &node_v);
        mos_ops.push((idx, inst.evaluate(vgs, vds)));
    }

    Ok(DcSolution {
        node_voltages: node_v,
        vsource_currents,
        mos_ops,
        iterations: total_iterations,
    })
}

fn lift_singular(e: LinalgError) -> CircuitError {
    match e {
        LinalgError::Singular { .. } => CircuitError::SingularSystem,
        other => CircuitError::Linalg(other),
    }
}

/// Runs damped Newton at one gmin rung. Returns whether it converged.
#[allow(clippy::too_many_arguments)]
fn newton_loop(
    netlist: &Netlist,
    n_nodes: usize,
    n_branches: usize,
    gmin: f64,
    options: &DcOptions,
    volts: &mut [f64],
    total_iterations: &mut usize,
) -> Result<bool, CircuitError> {
    for _ in 0..options.max_iterations {
        *total_iterations += 1;
        let sys = assemble(netlist, n_nodes, n_branches, volts, gmin);
        let x = sys.solve().map_err(lift_singular)?;
        let new_v = node_voltages(&x, n_nodes);

        let mut max_dv = 0.0f64;
        for i in 0..netlist.n_nodes() {
            max_dv = max_dv.max((new_v[i] - volts[i]).abs());
        }
        let alpha = if max_dv > options.max_step {
            options.max_step / max_dv
        } else {
            1.0
        };
        for i in 0..netlist.n_nodes() {
            volts[i] += alpha * (new_v[i] - volts[i]);
        }
        if max_dv < options.vtol {
            return Ok(true);
        }
        if !volts.iter().all(|v| v.is_finite()) {
            return Err(CircuitError::DcNoConvergence {
                iterations: *total_iterations,
                residual: f64::INFINITY,
            });
        }
    }
    Ok(false)
}

/// Assembles the linearized MNA system at the given node voltages.
fn assemble(
    netlist: &Netlist,
    n_nodes: usize,
    n_branches: usize,
    volts: &[f64],
    gmin: f64,
) -> MnaSystem<f64> {
    let mut sys = MnaSystem::new(n_nodes, n_branches);
    sys.stamp_gmin(gmin);
    let mut branch = 0usize;
    for e in netlist.elements() {
        match *e {
            Element::Resistor { a, b, ohms } => {
                sys.stamp_conductance(a, b, 1.0 / ohms);
            }
            Element::Capacitor { .. } => {} // open at DC
            Element::VSource { pos, neg, dc, .. } => {
                sys.stamp_vsource(branch, pos, neg, dc);
                branch += 1;
            }
            Element::ISource { from, to, dc } => {
                sys.stamp_current(from, to, dc);
            }
            Element::Vccs {
                out_pos,
                out_neg,
                cp,
                cn,
                gm,
            } => {
                sys.stamp_vccs(out_pos, out_neg, cp, cn, gm);
            }
            Element::Mosfet { d, g, s, instance } => {
                let polarity = instance.process.polarity;
                let (vc, vo) = Netlist::mos_control_voltages(d, g, s, polarity, volts);
                let op = instance.evaluate(vc, vo);
                let ieq = op.id - op.gm * vc - op.gds * vo;
                match polarity {
                    MosPolarity::Nmos => {
                        // i_d = gm·(vg−vs) + gds·(vd−vs) + ieq, leaves d.
                        sys.stamp_vccs(d, s, g, s, op.gm);
                        sys.stamp_conductance(d, s, op.gds);
                        sys.stamp_current(d, s, ieq);
                    }
                    MosPolarity::Pmos => {
                        // i_sd = gm·(vs−vg) + gds·(vs−vd) + ieq, leaves s.
                        sys.stamp_vccs(s, d, s, g, op.gm);
                        sys.stamp_conductance(s, d, op.gds);
                        sys.stamp_current(s, d, ieq);
                    }
                }
            }
        }
    }
    sys
}

/// Infinity norm of the KCL residual at the given voltages (diagnostic).
fn residual_norm(netlist: &Netlist, volts: &[f64], gmin: f64) -> f64 {
    let mut residual = vec![0.0f64; netlist.n_nodes()];
    for (i, r) in residual.iter_mut().enumerate().skip(1) {
        *r += gmin * volts[i];
    }
    for e in netlist.elements() {
        match *e {
            Element::Resistor { a, b, ohms } => {
                let i = (volts[a.0] - volts[b.0]) / ohms;
                residual[a.0] += i;
                residual[b.0] -= i;
            }
            Element::ISource { from, to, dc } => {
                residual[from.0] += dc;
                residual[to.0] -= dc;
            }
            Element::Vccs {
                out_pos,
                out_neg,
                cp,
                cn,
                gm,
            } => {
                let i = gm * (volts[cp.0] - volts[cn.0]);
                residual[out_pos.0] += i;
                residual[out_neg.0] -= i;
            }
            Element::Mosfet { d, g, s, instance } => {
                let polarity = instance.process.polarity;
                let (vc, vo) = Netlist::mos_control_voltages(d, g, s, polarity, volts);
                let op = instance.evaluate(vc, vo);
                match polarity {
                    MosPolarity::Nmos => {
                        residual[d.0] += op.id;
                        residual[s.0] -= op.id;
                    }
                    MosPolarity::Pmos => {
                        residual[s.0] += op.id;
                        residual[d.0] -= op.id;
                    }
                }
            }
            // Voltage sources enforce their own constraint rows.
            Element::VSource { .. } | Element::Capacitor { .. } => {}
        }
    }
    residual
        .iter()
        .skip(1)
        .fold(0.0f64, |acc, r| acc.max(r.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::MosProcess;

    #[test]
    fn linear_divider_operating_point() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let mid = nl.node("mid");
        nl.add(Element::VSource {
            pos: vin,
            neg: NodeId::GROUND,
            dc: 5.0,
            ac: 0.0,
        });
        nl.add(Element::Resistor {
            a: vin,
            b: mid,
            ohms: 10e3,
        });
        nl.add(Element::Resistor {
            a: mid,
            b: NodeId::GROUND,
            ohms: 10e3,
        });
        let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
        assert!((sol.voltage(mid) - 2.5).abs() < 1e-6);
        assert!((sol.vsource_current(0) + 0.25e-3).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos_settles_at_square_law_point() {
        // 5 V through 100k into a diode-connected NMOS sized for
        // 10 µA at vov = 0.3 → expect vgs ≈ 0.76 + vov with
        // i = (5 − vgs)/100k ≈ 42 µA ⇒ vov ≈ 0.3·sqrt(42/10/clm).
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let dnode = nl.node("d");
        nl.add(Element::VSource {
            pos: vdd,
            neg: NodeId::GROUND,
            dc: 5.0,
            ac: 0.0,
        });
        nl.add(Element::Resistor {
            a: vdd,
            b: dnode,
            ohms: 100e3,
        });
        let inst = MosProcess::nmos_07um()
            .size_for(10e-6, 0.3, 0.3, 1e-6)
            .unwrap();
        let midx = nl.add(Element::Mosfet {
            d: dnode,
            g: dnode,
            s: NodeId::GROUND,
            instance: inst,
        });
        let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
        let vgs = sol.voltage(dnode);
        assert!(vgs > 0.8 && vgs < 2.0, "vgs = {vgs}");
        let op = sol.mos_op(midx).unwrap();
        let i_resistor = (5.0 - vgs) / 100e3;
        assert!(
            (op.id - i_resistor).abs() / i_resistor < 1e-6,
            "KCL violated: mos {} vs resistor {}",
            op.id,
            i_resistor
        );
        assert!(op.saturated); // diode-connected => vds = vgs > vov
    }

    #[test]
    fn nmos_common_source_amplifier_biases() {
        // NMOS with resistive load; gate driven at fixed bias.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let gate = nl.node("g");
        let drain = nl.node("d");
        nl.add(Element::VSource {
            pos: vdd,
            neg: NodeId::GROUND,
            dc: 5.0,
            ac: 0.0,
        });
        nl.add(Element::VSource {
            pos: gate,
            neg: NodeId::GROUND,
            dc: 1.06,
            ac: 1.0,
        });
        nl.add(Element::Resistor {
            a: vdd,
            b: drain,
            ohms: 100e3,
        });
        let inst = MosProcess::nmos_07um()
            .size_for(20e-6, 0.3, 2.0, 1e-6)
            .unwrap();
        nl.add(Element::Mosfet {
            d: drain,
            g: gate,
            s: NodeId::GROUND,
            instance: inst,
        });
        let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
        let vd = sol.voltage(drain);
        // Sized for 20 µA at vds=2: drop ≈ 2 V ⇒ drain ≈ 3 V.
        assert!(vd > 2.0 && vd < 4.0, "drain = {vd}");
    }

    #[test]
    fn pmos_mirror_copies_current() {
        // Reference branch: vdd -> diode PMOS -> resistor to ground sets
        // ~10 µA; mirror output into a grounded resistor must carry a
        // matched current.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let dio = nl.node("dio");
        let out = nl.node("out");
        nl.add(Element::VSource {
            pos: vdd,
            neg: NodeId::GROUND,
            dc: 5.0,
            ac: 0.0,
        });
        let p = MosProcess::pmos_07um();
        let inst = p.size_for(10e-6, 0.35, 0.35, 1e-6).unwrap();
        nl.add(Element::Mosfet {
            d: dio,
            g: dio,
            s: vdd,
            instance: inst,
        });
        // (5 - (5 - vsg)) / R = vsg-dependent; pick R for ≈ 10 µA:
        // node dio sits at vdd − vsg ≈ 3.9 V ⇒ R ≈ 390 kΩ.
        nl.add(Element::Resistor {
            a: dio,
            b: NodeId::GROUND,
            ohms: 390e3,
        });
        let m_out = nl.add(Element::Mosfet {
            d: out,
            g: dio,
            s: vdd,
            instance: inst,
        });
        nl.add(Element::Resistor {
            a: out,
            b: NodeId::GROUND,
            ohms: 100e3,
        });
        let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
        let i_ref = sol.voltage(dio) / 390e3;
        let i_out = sol.mos_op(m_out).unwrap().id;
        assert!(
            (i_out - i_ref).abs() / i_ref < 0.25,
            "mirror error too large: ref {i_ref}, out {i_out}"
        );
    }

    #[test]
    fn floating_node_reports_singular_or_invalid() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add(Element::Resistor { a, b, ohms: 1e3 });
        // a-b pair floats relative to ground.
        assert!(solve_dc(&nl, &DcOptions::default()).is_err());
    }

    #[test]
    fn isource_polarity() {
        let mut nl = Netlist::new();
        let n = nl.node("n");
        nl.add(Element::ISource {
            from: NodeId::GROUND,
            to: n,
            dc: 2e-3,
        });
        nl.add(Element::Resistor {
            a: n,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
        assert!((sol.voltage(n) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn iterations_are_reported() {
        let mut nl = Netlist::new();
        let n = nl.node("n");
        nl.add(Element::Resistor {
            a: n,
            b: NodeId::GROUND,
            ohms: 1.0,
        });
        let sol = solve_dc(&nl, &DcOptions::default()).unwrap();
        assert!(sol.iterations >= 1);
    }
}
