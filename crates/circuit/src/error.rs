use std::error::Error;
use std::fmt;

use caffeine_linalg::LinalgError;

/// Error type for circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A node index referenced an undeclared node.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// A device parameter was outside its physical range.
    InvalidDevice(String),
    /// The DC Newton–Raphson iteration failed to converge.
    DcNoConvergence {
        /// Iterations performed across all homotopy steps.
        iterations: usize,
        /// Final residual infinity-norm (KCL violation in amperes).
        residual: f64,
    },
    /// The MNA system was singular (floating node, loop of voltage
    /// sources, …).
    SingularSystem,
    /// An underlying linear-algebra failure not covered above.
    Linalg(LinalgError),
    /// A performance could not be extracted from the simulated responses.
    PerformanceExtraction(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode { node } => write!(f, "unknown node index {node}"),
            CircuitError::InvalidDevice(msg) => write!(f, "invalid device: {msg}"),
            CircuitError::DcNoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "dc analysis did not converge after {iterations} iterations (residual {residual:.3e} A)"
            ),
            CircuitError::SingularSystem => {
                write!(f, "singular MNA system (floating node or source loop)")
            }
            CircuitError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CircuitError::PerformanceExtraction(msg) => {
                write!(f, "performance extraction failed: {msg}")
            }
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CircuitError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::Singular { .. } => CircuitError::SingularSystem,
            other => CircuitError::Linalg(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CircuitError::UnknownNode { node: 3 }
            .to_string()
            .contains('3'));
        assert!(CircuitError::DcNoConvergence {
            iterations: 50,
            residual: 1e-3
        }
        .to_string()
        .contains("50"));
        let e: CircuitError = LinalgError::Singular { pivot: 0 }.into();
        assert_eq!(e, CircuitError::SingularSystem);
        let e: CircuitError = LinalgError::NonFiniteInput { argument: "a" }.into();
        assert!(matches!(e, CircuitError::Linalg(_)));
    }

    #[test]
    fn source_chains_linalg_errors() {
        let e = CircuitError::Linalg(LinalgError::NonFiniteInput { argument: "b" });
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CircuitError::SingularSystem).is_none());
    }
}
