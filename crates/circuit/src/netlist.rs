//! Circuit netlist representation.
//!
//! A [`Netlist`] is a list of [`Element`]s over named nodes. Node 0 is
//! always ground. The DC and AC engines consume netlists; the OTA
//! testbench builds them from operating-point design variables.

use serde::{Deserialize, Serialize};

use crate::mos::{MosInstance, MosPolarity};
use crate::CircuitError;

/// Identifier of a circuit node. `NodeId(0)` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// `true` when this is the ground node.
    #[inline]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Linear capacitor between two nodes (open at DC).
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be non-negative).
        farads: f64,
    },
    /// Independent voltage source; contributes one MNA branch.
    VSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// DC value in volts.
        dc: f64,
        /// AC magnitude in volts (phase 0); 0 for pure bias sources.
        ac: f64,
    },
    /// Independent current source: `dc` amperes flow *out of* `from` and
    /// *into* `to` (through the external circuit from `to` back to `from`).
    ISource {
        /// Node the current is drawn from.
        from: NodeId,
        /// Node the current is injected into.
        to: NodeId,
        /// DC value in amperes.
        dc: f64,
    },
    /// Voltage-controlled current source: `gm·(v(cp) − v(cn))` flows from
    /// `out_pos` to `out_neg` inside the element.
    Vccs {
        /// Output positive terminal (current leaves this node).
        out_pos: NodeId,
        /// Output negative terminal (current enters this node).
        out_neg: NodeId,
        /// Positive control node.
        cp: NodeId,
        /// Negative control node.
        cn: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// MOSFET (drain, gate, source; bulk tied to the supply rails
    /// implicitly by the level-1 model).
    Mosfet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Sized device instance.
        instance: MosInstance,
    },
}

impl Element {
    /// All node ids referenced by this element.
    pub fn nodes(&self) -> Vec<NodeId> {
        match *self {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => vec![a, b],
            Element::VSource { pos, neg, .. } => vec![pos, neg],
            Element::ISource { from, to, .. } => vec![from, to],
            Element::Vccs {
                out_pos,
                out_neg,
                cp,
                cn,
                ..
            } => vec![out_pos, out_neg, cp, cn],
            Element::Mosfet { d, g, s, .. } => vec![d, g, s],
        }
    }
}

/// A named-node circuit.
///
/// # Example
///
/// ```
/// use caffeine_circuit::{Element, Netlist, NodeId};
///
/// let mut nl = Netlist::new();
/// let vin = nl.node("in");
/// let out = nl.node("out");
/// nl.add(Element::VSource { pos: vin, neg: NodeId::GROUND, dc: 1.0, ac: 0.0 });
/// nl.add(Element::Resistor { a: vin, b: out, ohms: 1e3 });
/// nl.add(Element::Resistor { a: out, b: NodeId::GROUND, ohms: 1e3 });
/// assert_eq!(nl.n_nodes(), 3); // ground + 2
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    node_names: Vec<String>,
    elements: Vec<Element>,
}

impl Netlist {
    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        Netlist {
            node_names: vec!["0".to_string()],
            elements: Vec::new(),
        }
    }

    /// Returns the node with the given name, creating it if needed.
    /// The name `"0"` always maps to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(idx) = self.node_names.iter().position(|n| n == name) {
            NodeId(idx)
        } else {
            self.node_names.push(name.to_string());
            NodeId(self.node_names.len() - 1)
        }
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(NodeId)
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics for an id not belonging to this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total node count including ground.
    pub fn n_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Adds an element and returns its index.
    pub fn add(&mut self, e: Element) -> usize {
        self.elements.push(e);
        self.elements.len() - 1
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable element access (used to retune sources between analyses).
    pub fn element_mut(&mut self, idx: usize) -> &mut Element {
        &mut self.elements[idx]
    }

    /// Number of independent voltage sources (= extra MNA branches).
    pub fn n_vsources(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }

    /// Validates the netlist: node ids in range, element values physical,
    /// every non-ground node reachable from ground through element
    /// connectivity (no floating islands).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] for out-of-range node ids.
    /// * [`CircuitError::InvalidDevice`] for unphysical element values or
    ///   a floating node.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for e in &self.elements {
            for n in e.nodes() {
                if n.0 >= self.node_names.len() {
                    return Err(CircuitError::UnknownNode { node: n.0 });
                }
            }
            match e {
                Element::Resistor { ohms, .. } if !(*ohms > 0.0) => {
                    return Err(CircuitError::InvalidDevice(format!(
                        "resistor must have positive resistance, got {ohms}"
                    )));
                }
                Element::Capacitor { farads, .. } if !(*farads >= 0.0) => {
                    return Err(CircuitError::InvalidDevice(format!(
                        "capacitor must be non-negative, got {farads}"
                    )));
                }
                Element::Mosfet { instance, .. }
                    if !(instance.width > 0.0 && instance.length > 0.0) =>
                {
                    return Err(CircuitError::InvalidDevice(
                        "mosfet with non-positive geometry".into(),
                    ));
                }
                _ => {}
            }
        }
        // Connectivity sweep from ground.
        let n = self.node_names.len();
        let mut reached = vec![false; n];
        reached[0] = true;
        let mut frontier = vec![NodeId::GROUND];
        while let Some(cur) = frontier.pop() {
            for e in &self.elements {
                let ns = e.nodes();
                if ns.contains(&cur) {
                    for m in ns {
                        if !reached[m.0] {
                            reached[m.0] = true;
                            frontier.push(m);
                        }
                    }
                }
            }
        }
        if let Some(idx) = reached.iter().position(|&r| !r) {
            return Err(CircuitError::InvalidDevice(format!(
                "node `{}` is not connected to ground",
                self.node_names[idx]
            )));
        }
        Ok(())
    }

    /// Iterates over MOSFET elements with their element indices.
    pub fn mosfets(&self) -> impl Iterator<Item = (usize, NodeId, NodeId, NodeId, &MosInstance)> {
        self.elements.iter().enumerate().filter_map(|(i, e)| {
            if let Element::Mosfet { d, g, s, instance } = e {
                Some((i, *d, *g, *s, instance))
            } else {
                None
            }
        })
    }

    /// Computes the polarity-normalized `(vgs, vds)` pair for a MOSFET
    /// given node voltages (`volts[i]` for node `i`, ground = 0).
    pub fn mos_control_voltages(
        d: NodeId,
        g: NodeId,
        s: NodeId,
        polarity: MosPolarity,
        volts: &[f64],
    ) -> (f64, f64) {
        let vd = volts[d.0];
        let vg = volts[g.0];
        let vs = volts[s.0];
        match polarity {
            MosPolarity::Nmos => (vg - vs, vd - vs),
            MosPolarity::Pmos => (vs - vg, vs - vd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::MosProcess;

    #[test]
    fn node_interning_is_stable() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        let b = nl.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(nl.node("0"), NodeId::GROUND);
        assert_eq!(nl.find_node("b"), Some(b));
        assert_eq!(nl.find_node("zzz"), None);
        assert_eq!(nl.node_name(b), "b");
    }

    #[test]
    fn validate_accepts_simple_divider() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.add(Element::VSource {
            pos: vin,
            neg: NodeId::GROUND,
            dc: 1.0,
            ac: 0.0,
        });
        nl.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: 1e3,
        });
        nl.add(Element::Resistor {
            a: out,
            b: NodeId::GROUND,
            ohms: 1e3,
        });
        assert!(nl.validate().is_ok());
        assert_eq!(nl.n_vsources(), 1);
    }

    #[test]
    fn validate_rejects_floating_node() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add(Element::Resistor {
            a,
            b: NodeId::GROUND,
            ohms: 1.0,
        });
        let b = nl.node("floating");
        let c = nl.node("floating2");
        nl.add(Element::Resistor {
            a: b,
            b: c,
            ohms: 1.0,
        });
        assert!(matches!(nl.validate(), Err(CircuitError::InvalidDevice(_))));
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add(Element::Resistor {
            a,
            b: NodeId::GROUND,
            ohms: -5.0,
        });
        assert!(nl.validate().is_err());

        let mut nl2 = Netlist::new();
        let a2 = nl2.node("a");
        nl2.add(Element::Capacitor {
            a: a2,
            b: NodeId::GROUND,
            farads: -1.0,
        });
        assert!(nl2.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_node_id() {
        let mut nl = Netlist::new();
        nl.add(Element::Resistor {
            a: NodeId(99),
            b: NodeId::GROUND,
            ohms: 1.0,
        });
        assert!(matches!(
            nl.validate(),
            Err(CircuitError::UnknownNode { node: 99 })
        ));
    }

    #[test]
    fn mosfets_iterator_finds_devices() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        let inst = MosProcess::nmos_07um()
            .size_for(1e-5, 0.3, 1.0, 1e-6)
            .unwrap();
        nl.add(Element::Mosfet {
            d,
            g,
            s: NodeId::GROUND,
            instance: inst,
        });
        nl.add(Element::Resistor {
            a: d,
            b: NodeId::GROUND,
            ohms: 1e6,
        });
        nl.add(Element::Resistor {
            a: g,
            b: NodeId::GROUND,
            ohms: 1e6,
        });
        assert_eq!(nl.mosfets().count(), 1);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn control_voltage_polarity_mapping() {
        // volts indexed by node id; ground = 0.
        let volts = [0.0, 2.0, 1.0, 3.0]; // nodes 0..3
        let (vgs, vds) = Netlist::mos_control_voltages(
            NodeId(3),
            NodeId(1),
            NodeId(2),
            MosPolarity::Nmos,
            &volts,
        );
        assert_eq!(vgs, 1.0); // 2 - 1
        assert_eq!(vds, 2.0); // 3 - 1
        let (vsg, vsd) = Netlist::mos_control_voltages(
            NodeId(2),
            NodeId(1),
            NodeId(3),
            MosPolarity::Pmos,
            &volts,
        );
        assert_eq!(vsg, 1.0); // 3 - 2
        assert_eq!(vsd, 2.0); // 3 - 1
    }

    #[test]
    fn element_nodes_lists_all_terminals() {
        let e = Element::Vccs {
            out_pos: NodeId(1),
            out_neg: NodeId(2),
            cp: NodeId(3),
            cn: NodeId(4),
            gm: 1e-3,
        };
        assert_eq!(e.nodes().len(), 4);
    }
}
