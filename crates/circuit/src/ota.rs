//! The high-speed CMOS OTA testbench of the paper (Fig. 2), rebuilt as a
//! simulatable netlist.
//!
//! # Topology
//!
//! A symmetrical (current-mirror) OTA with a PMOS input pair and a cascoded
//! PMOS output branch:
//!
//! ```text
//!   VDD ──┬───────────────┬──────────────────┬─────────
//!         │               │                  │
//!        M5 (tail)       M3 (diode)         M4   (gate = c, level-shifted)
//!         │tail           │c ── shift ─────g4│
//!    ┌────┴─────┐         │                  │d4
//!  M1a(inn)  M1b(inp)     │                 M6   (cascode, gate bias g6)
//!    │a         │b        │                  │
//!   M2a(diode) M2b(diode) │                  │
//!    │g ──M2c─────────────┘                  │
//!    │     │g               M2d(gate = b) ───┤
//!   GND   GND                │               out ── CL
//!                           GND
//! ```
//!
//! Signal path: `inp` (gate of M1b) is the non-inverting input — its branch
//! current is mirrored by M2b→M2d which *sinks* from the output; `inn`
//! (gate of M1a) is inverting through the double mirror M2a→M2c→M3→M4→M6
//! which *sources* into the output. The mirror ratio `B = id2/id1`
//! multiplies the differential-pair current into the output branch.
//!
//! Two ideal bias details keep the operating-point formulation consistent
//! without a full bias synthesis (documented substitution, see DESIGN.md):
//! the gate of M4 is driven from the diode node `c` through an ideal level
//! shift of `vsg3 − vsg4` volts (zero at the nominal point), and the
//! cascode gate `g6` sits at `vdd − vsd4 − vsg6`.
//!
//! # Design variables (operating-point driven formulation, 13 of them)
//!
//! As in the paper (ref. \[13\]), branch currents and device drive voltages
//! are the design variables; widths are derived. See [`OtaDesign`].
//!
//! # Performance extraction
//!
//! * `voffset` — with the output *held* at its designed level `vds2`, a
//!   secant iteration finds the inverting-input voltage at which the
//!   held-output current is zero; the offset is the differential input at
//!   balance (includes the injected deterministic input-pair mismatch plus
//!   systematic mirror imbalance).
//! * `ALF`, `fu`, `PM` — open-loop AC around the balanced operating point.
//! * `SRp`, `SRn` — large-signal DC solves with the input overdriven and
//!   the output held; the held-node current divided by `CL` is the slew
//!   rate.

use serde::{Deserialize, Serialize};

use crate::ac::{solve_ac, unity_gain_crossing};
use crate::dc::{solve_dc, DcOptions, DcSolution};
use crate::mos::{MosInstance, MosProcess};
use crate::netlist::{Element, Netlist, NodeId};
use crate::CircuitError;

/// Names of the 13 design variables, in vector order.
///
/// The names match those appearing in the paper's Tables I and II
/// (`id1, id2, vsg1, vgs2, vds2, vsg3, vsg4, vsg5, vsd5, …`).
pub const OTA_VAR_NAMES: [&str; 13] = [
    "id1", "id2", "vsg1", "vds1", "vgs2", "vds2", "vsg3", "vsd3", "vsg4", "vsd4", "vsg5", "vsd5",
    "vsg6",
];

/// A design point of the OTA in the operating-point driven formulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaDesign {
    /// Differential-pair branch current (A).
    pub id1: f64,
    /// Output branch current (A); the mirror ratio is `B = id2/id1`.
    pub id2: f64,
    /// Source-gate drive of the PMOS input pair M1 (V).
    pub vsg1: f64,
    /// Sizing drain-source voltage of M1 (V).
    pub vds1: f64,
    /// Gate-source drive of the NMOS mirror family M2 (V).
    pub vgs2: f64,
    /// Designed drain-source voltage of the mirror output M2d (V);
    /// also the designed output DC level.
    pub vds2: f64,
    /// Source-gate drive of the PMOS mirror diode M3 (V); sets node `c`.
    pub vsg3: f64,
    /// Sizing source-drain voltage of M3 (V); the diode's actual `vsd`
    /// is `vsg3`, so this encodes design intent (small systematic error).
    pub vsd3: f64,
    /// Source-gate drive of the PMOS mirror output M4 (V); realised via an
    /// ideal level shift from the diode node.
    pub vsg4: f64,
    /// Designed source-drain voltage of M4 (V); places the cascode's
    /// source node at `vdd − vsd4`.
    pub vsd4: f64,
    /// Source-gate drive of the PMOS tail device M5 (V).
    pub vsg5: f64,
    /// Source-drain headroom of M5 (V); sets the tail node and thereby the
    /// input common mode.
    pub vsd5: f64,
    /// Source-gate drive of the PMOS cascode M6 (V).
    pub vsg6: f64,
}

impl OtaDesign {
    /// The nominal design point used by the experiments.
    pub fn nominal() -> Self {
        OtaDesign {
            id1: 10e-6,
            id2: 40e-6,
            vsg1: 1.10,
            vds1: 1.20,
            vgs2: 1.10,
            vds2: 2.20,
            vsg3: 1.20,
            vsd3: 1.20,
            vsg4: 1.20,
            vsd4: 1.00,
            vsg5: 1.10,
            vsd5: 0.50,
            vsg6: 1.10,
        }
    }

    /// The design as a vector in [`OTA_VAR_NAMES`] order.
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.id1, self.id2, self.vsg1, self.vds1, self.vgs2, self.vds2, self.vsg3, self.vsd3,
            self.vsg4, self.vsd4, self.vsg5, self.vsd5, self.vsg6,
        ]
    }

    /// Builds a design from a vector in [`OTA_VAR_NAMES`] order.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidDevice`] when the slice does not have exactly
    /// 13 finite entries.
    pub fn from_slice(v: &[f64]) -> Result<Self, CircuitError> {
        if v.len() != 13 || !v.iter().all(|x| x.is_finite()) {
            return Err(CircuitError::InvalidDevice(format!(
                "OTA design needs 13 finite values, got {}",
                v.len()
            )));
        }
        Ok(OtaDesign {
            id1: v[0],
            id2: v[1],
            vsg1: v[2],
            vds1: v[3],
            vgs2: v[4],
            vds2: v[5],
            vsg3: v[6],
            vsd3: v[7],
            vsg4: v[8],
            vsd4: v[9],
            vsg5: v[10],
            vsd5: v[11],
            vsg6: v[12],
        })
    }
}

/// One of the six modeled circuit performances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerfId {
    /// Low-frequency gain, dB.
    Alf,
    /// Unity-gain frequency, Hz (modeled in `log10`, as in the paper).
    Fu,
    /// Phase margin, degrees.
    Pm,
    /// Input-referred offset voltage, V.
    Voffset,
    /// Positive slew rate, V/s.
    Srp,
    /// Negative slew rate, V/s (negative-valued).
    Srn,
}

impl PerfId {
    /// All six performances in the paper's order.
    pub const ALL: [PerfId; 6] = [
        PerfId::Alf,
        PerfId::Fu,
        PerfId::Pm,
        PerfId::Voffset,
        PerfId::Srp,
        PerfId::Srn,
    ];

    /// The paper's name for the performance.
    pub fn name(self) -> &'static str {
        match self {
            PerfId::Alf => "ALF",
            PerfId::Fu => "fu",
            PerfId::Pm => "PM",
            PerfId::Voffset => "voffset",
            PerfId::Srp => "SRp",
            PerfId::Srn => "SRn",
        }
    }

    /// `true` when the paper log10-scales this performance before learning.
    pub fn log_scaled(self) -> bool {
        matches!(self, PerfId::Fu)
    }
}

impl std::fmt::Display for PerfId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The six simulated performances of one design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaPerformance {
    /// Low-frequency gain, dB.
    pub alf: f64,
    /// Unity-gain frequency, Hz.
    pub fu: f64,
    /// Phase margin, degrees.
    pub pm: f64,
    /// Input-referred offset, V.
    pub voffset: f64,
    /// Positive slew rate, V/s.
    pub srp: f64,
    /// Negative slew rate, V/s.
    pub srn: f64,
}

impl OtaPerformance {
    /// The value of one performance.
    pub fn get(&self, id: PerfId) -> f64 {
        match id {
            PerfId::Alf => self.alf,
            PerfId::Fu => self.fu,
            PerfId::Pm => self.pm,
            PerfId::Voffset => self.voffset,
            PerfId::Srp => self.srp,
            PerfId::Srn => self.srn,
        }
    }
}

/// Technology and environment description for the testbench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtaTechnology {
    /// NMOS process corner.
    pub nmos: MosProcess,
    /// PMOS process corner.
    pub pmos: MosProcess,
    /// Supply voltage, V (paper: 5 V).
    pub vdd: f64,
    /// Load capacitance, F (paper: 10 pF).
    pub cl: f64,
    /// Channel length used for every device, m.
    pub length: f64,
    /// Deterministic input-pair threshold mismatch injected on M1a, V.
    pub input_mismatch: f64,
    /// Differential overdrive used for the slew-rate measurements, V.
    pub slew_overdrive: f64,
}

/// The OTA testbench: technology plus solver settings.
#[derive(Debug, Clone)]
pub struct OtaTestbench {
    /// Technology description.
    pub tech: OtaTechnology,
    /// DC solver options.
    pub dc_options: DcOptions,
}

/// The netlist roles needed by the measurement flows.
#[derive(Debug, Clone, Copy)]
struct OtaNodes {
    out: NodeId,
}

/// Which measurement configuration to build.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Config {
    /// Open loop with AC drive `inp = +0.5`, `inn = −0.5` (1 V differential).
    OpenLoopAc {
        /// DC bias for the inverting input (the balanced value).
        inn_dc: f64,
    },
    /// Large-signal / balance test: `inp = vcm + vdiff`, `inn` at `inn_dc`,
    /// output held at `vout` by an ideal source whose current is measured.
    HeldOutput {
        /// Differential drive on the non-inverting input, V.
        vdiff: f64,
        /// Inverting-input bias, V.
        inn_dc: f64,
        /// Output hold voltage, V.
        vout: f64,
    },
}

impl OtaTestbench {
    /// The default 0.7 µm / 5 V / 10 pF testbench matching the paper's
    /// stated environment (`Vth,nom = 0.76 / −0.75 V`).
    pub fn default_07um() -> Self {
        let mut nmos = MosProcess::nmos_07um();
        let mut pmos = MosProcess::pmos_07um();
        // High-voltage flavour: thicker oxide -> lower kp, larger overlap
        // and junction capacitances (devices are physically big).
        nmos.kp = 50e-6;
        pmos.kp = 20e-6;
        nmos.cov_per_m = 1.5e-9;
        pmos.cov_per_m = 1.5e-9;
        nmos.cj_per_m = 3.0e-9;
        pmos.cj_per_m = 3.5e-9;
        OtaTestbench {
            tech: OtaTechnology {
                nmos,
                pmos,
                vdd: 5.0,
                cl: 10e-12,
                length: 1.5e-6,
                input_mismatch: -5.0e-3,
                slew_overdrive: 0.6,
            },
            dc_options: DcOptions::default(),
        }
    }

    /// The input common-mode voltage implied by a design.
    pub fn vcm(&self, d: &OtaDesign) -> f64 {
        self.tech.vdd - d.vsd5 - d.vsg1
    }

    /// Sizes the ten devices of the OTA for a design point.
    fn size_devices(&self, d: &OtaDesign) -> Result<[MosInstance; 10], CircuitError> {
        let t = &self.tech;
        let vthn = t.nmos.vth;
        let vthp = t.pmos.vth;
        let ov = |v: f64, vth: f64, who: &str| -> Result<f64, CircuitError> {
            let vov = v - vth;
            if vov <= 0.02 {
                return Err(CircuitError::InvalidDevice(format!(
                    "{who}: drive {v} leaves no overdrive above vth {vth}"
                )));
            }
            Ok(vov)
        };
        // Input pair M1a/M1b (PMOS), with deterministic mismatch on M1a.
        let m1 = t
            .pmos
            .size_for(d.id1, ov(d.vsg1, vthp, "M1")?, d.vds1, t.length)?;
        let m1a = m1.with_vth_shift(t.input_mismatch);
        let m1b = m1;
        // NMOS mirror diodes M2a/M2b: vds = vgs (diode-connected).
        let vov2 = ov(d.vgs2, vthn, "M2")?;
        let m2_diode = t.nmos.size_for(d.id1, vov2, d.vgs2, t.length)?;
        // NMOS mirror outputs, each sized for id2 at its *designed*
        // operating vds: M2c sits under the PMOS diode (vds = vdd − vsg3),
        // M2d at the output level vds2.
        let m2c = t.nmos.size_for(d.id2, vov2, t.vdd - d.vsg3, t.length)?;
        let m2d = t.nmos.size_for(d.id2, vov2, d.vds2, t.length)?;
        // PMOS mirror diode M3 (actual vsd = vsg3; sizing intent vsd3).
        let m3 = t
            .pmos
            .size_for(d.id2, ov(d.vsg3, vthp, "M3")?, d.vsd3, t.length)?;
        // PMOS mirror output M4, operated at vsg4 via the level shift.
        let m4 = t
            .pmos
            .size_for(d.id2, ov(d.vsg4, vthp, "M4")?, d.vsd4, t.length)?;
        // Cascode M6 between M4 and the output.
        let vsd6_design = t.vdd - d.vsd4 - d.vds2;
        if vsd6_design <= 0.05 {
            return Err(CircuitError::InvalidDevice(format!(
                "cascode headroom vdd − vsd4 − vds2 = {vsd6_design:.3} V is not positive"
            )));
        }
        let m6 = t
            .pmos
            .size_for(d.id2, ov(d.vsg6, vthp, "M6")?, vsd6_design, t.length)?;
        // Tail M5 carries 2·id1.
        let m5 = t
            .pmos
            .size_for(2.0 * d.id1, ov(d.vsg5, vthp, "M5")?, d.vsd5, t.length)?;
        Ok([m1a, m1b, m2_diode, m2_diode, m2c, m2d, m3, m4, m6, m5])
    }

    /// Builds one measurement netlist. Mosfets are always elements 0..=9
    /// (M1a, M1b, M2a, M2b, M2c, M2d, M3, M4, M6, M5) so DC operating
    /// points transplant across configurations.
    fn build(
        &self,
        d: &OtaDesign,
        config: Config,
    ) -> Result<(Netlist, OtaNodes, Option<usize>), CircuitError> {
        let t = &self.tech;
        let devices = self.size_devices(d)?;
        let vcm = self.vcm(d);
        if vcm <= 0.2 || vcm >= t.vdd - 0.2 {
            return Err(CircuitError::InvalidDevice(format!(
                "input common mode {vcm:.3} V out of range"
            )));
        }

        let mut nl = Netlist::new();
        let gnd = NodeId::GROUND;
        let vdd = nl.node("vdd");
        let tail = nl.node("tail");
        let a = nl.node("a");
        let b = nl.node("b");
        let c = nl.node("c");
        let d4 = nl.node("d4");
        let out = nl.node("out");
        let inp = nl.node("inp");
        let inn = nl.node("inn");
        let g4 = nl.node("g4");
        let g5 = nl.node("g5");
        let g6 = nl.node("g6");

        let [m1a, m1b, m2a, m2b, m2c, m2d, m3, m4, m6, m5] = devices;
        // Elements 0..=9: the devices, in fixed order.
        nl.add(Element::Mosfet {
            d: a,
            g: inn,
            s: tail,
            instance: m1a,
        });
        nl.add(Element::Mosfet {
            d: b,
            g: inp,
            s: tail,
            instance: m1b,
        });
        nl.add(Element::Mosfet {
            d: a,
            g: a,
            s: gnd,
            instance: m2a,
        });
        nl.add(Element::Mosfet {
            d: b,
            g: b,
            s: gnd,
            instance: m2b,
        });
        nl.add(Element::Mosfet {
            d: c,
            g: a,
            s: gnd,
            instance: m2c,
        });
        nl.add(Element::Mosfet {
            d: out,
            g: b,
            s: gnd,
            instance: m2d,
        });
        nl.add(Element::Mosfet {
            d: c,
            g: c,
            s: vdd,
            instance: m3,
        });
        nl.add(Element::Mosfet {
            d: d4,
            g: g4,
            s: vdd,
            instance: m4,
        });
        nl.add(Element::Mosfet {
            d: out,
            g: g6,
            s: d4,
            instance: m6,
        });
        nl.add(Element::Mosfet {
            d: tail,
            g: g5,
            s: vdd,
            instance: m5,
        });

        // Load.
        nl.add(Element::Capacitor {
            a: out,
            b: gnd,
            farads: t.cl,
        });

        // Rails and bias. Voltage-source branch order: vdd=0, g5=1, g6=2,
        // shift(c→g4)=3, then config-specific sources (inp=4, inn=5,
        // hold=6).
        nl.add(Element::VSource {
            pos: vdd,
            neg: gnd,
            dc: t.vdd,
            ac: 0.0,
        });
        nl.add(Element::VSource {
            pos: g5,
            neg: gnd,
            dc: t.vdd - d.vsg5,
            ac: 0.0,
        });
        nl.add(Element::VSource {
            pos: g6,
            neg: gnd,
            dc: t.vdd - d.vsd4 - d.vsg6,
            ac: 0.0,
        });
        // Ideal level shift so M4 operates at its designed drive vsg4:
        // v(g4) = v(c) + (vsg3 − vsg4). Zero at the nominal point.
        nl.add(Element::VSource {
            pos: g4,
            neg: c,
            dc: d.vsg3 - d.vsg4,
            ac: 0.0,
        });

        let mut hold_branch = None;
        match config {
            Config::OpenLoopAc { inn_dc } => {
                nl.add(Element::VSource {
                    pos: inp,
                    neg: gnd,
                    dc: vcm,
                    ac: 0.5,
                });
                nl.add(Element::VSource {
                    pos: inn,
                    neg: gnd,
                    dc: inn_dc,
                    ac: -0.5,
                });
            }
            Config::HeldOutput {
                vdiff,
                inn_dc,
                vout,
            } => {
                nl.add(Element::VSource {
                    pos: inp,
                    neg: gnd,
                    dc: vcm + vdiff,
                    ac: 0.0,
                });
                nl.add(Element::VSource {
                    pos: inn,
                    neg: gnd,
                    dc: inn_dc,
                    ac: 0.0,
                });
                nl.add(Element::VSource {
                    pos: out,
                    neg: gnd,
                    dc: vout,
                    ac: 0.0,
                });
                hold_branch = Some(6);
            }
        }

        Ok((nl, OtaNodes { out }, hold_branch))
    }

    /// Solves the held-output configuration and returns `(solution,
    /// imbalance current)`: the current the circuit pushes into the held
    /// output node (positive = would charge `CL`).
    fn held_solve(
        &self,
        d: &OtaDesign,
        vdiff: f64,
        inn_dc: f64,
        vout: f64,
    ) -> Result<(DcSolution, f64), CircuitError> {
        let (nl, _, hold) = self.build(
            d,
            Config::HeldOutput {
                vdiff,
                inn_dc,
                vout,
            },
        )?;
        let sol = solve_dc(&nl, &self.dc_options)?;
        // MNA branch current convention: positive = flowing into the
        // source's positive terminal, i.e. the source absorbs circuit
        // current -> the circuit pushes it into the node.
        let i = sol.vsource_current(hold.expect("held config has hold branch"));
        Ok((sol, i))
    }

    /// Finds the inverting-input voltage that zeroes the output imbalance
    /// current at the designed output level (secant iteration). Returns
    /// `(balanced solution, inn*)`.
    fn balance(&self, d: &OtaDesign) -> Result<(DcSolution, f64), CircuitError> {
        let vcm = self.vcm(d);
        let vout = d.vds2;
        let mut x0 = vcm;
        let (mut sol0, mut g0) = self.held_solve(d, 0.0, x0, vout)?;
        if g0 == 0.0 {
            return Ok((sol0, x0));
        }
        let mut x1 = vcm + 5e-3;
        let (mut sol1, mut g1) = self.held_solve(d, 0.0, x1, vout)?;
        for _ in 0..60 {
            if (g1 - g0).abs() < 1e-18 {
                break;
            }
            // Secant step, clamped to ±100 mV to stay in the active region.
            let mut x2 = x1 - g1 * (x1 - x0) / (g1 - g0);
            let step = (x2 - x1).clamp(-0.1, 0.1);
            x2 = x1 + step;
            let (sol2, g2) = self.held_solve(d, 0.0, x2, vout)?;
            x0 = x1;
            g0 = g1;
            sol0 = sol1;
            x1 = x2;
            g1 = g2;
            sol1 = sol2;
            let gm_scale = (2.0 * d.id2 / 0.3).max(1e-9);
            if g1.abs() < 1e-9 * gm_scale.max(1.0) || (x1 - x0).abs() < 1e-12 {
                return Ok((sol1, x1));
            }
        }
        let _ = (&sol0, g0);
        // Accept the best point if the residual is small relative to the
        // output branch current.
        if g1.abs() < 1e-3 * d.id2 {
            return Ok((sol1, x1));
        }
        Err(CircuitError::PerformanceExtraction(format!(
            "offset balance did not converge (residual {g1:.3e} A at inn = {x1:.4} V)"
        )))
    }

    /// Simulates all six performances of a design point.
    ///
    /// This runs the full measurement flow: balance search (offset +
    /// operating point), open-loop AC (gain, bandwidth, phase margin), and
    /// two large-signal DC solves (slew rates). A design for which any
    /// stage fails (the paper: "some of which did not converge") yields an
    /// error; dataset builders convert that to a dropped sample.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidDevice`] for unphysical design points.
    /// * [`CircuitError::DcNoConvergence`] / [`CircuitError::SingularSystem`]
    ///   from the solvers.
    /// * [`CircuitError::PerformanceExtraction`] when balance or the
    ///   unity-gain search fails.
    pub fn simulate(&self, design: &OtaDesign) -> Result<OtaPerformance, CircuitError> {
        let vcm = self.vcm(design);

        // 1. Balanced operating point + offset.
        let (dc0, inn_star) = self.balance(design)?;
        let voffset = vcm - inn_star;

        // 2. Open-loop AC around the balanced point.
        let (ac_nl, ac_nodes, _) = self.build(design, Config::OpenLoopAc { inn_dc: inn_star })?;
        let low = solve_ac(&ac_nl, &dc0, &[1.0])?;
        let h0 = low.response_at(ac_nodes.out)[0];
        let alf = 20.0 * h0.abs().log10();
        if !alf.is_finite() || alf < 3.0 {
            return Err(CircuitError::PerformanceExtraction(format!(
                "low-frequency gain {alf:.2} dB is not an amplifier"
            )));
        }
        let (fu, phase_at_fu) = unity_gain_crossing(&ac_nl, &dc0, ac_nodes.out, 1e2, 1e10, 81)?;
        let pm = 180.0 + phase_at_fu;

        // 3. Slew rates: output held at the designed level, input
        //    overdriven either way; the hold-source current is what would
        //    charge/discharge CL.
        let vstep = self.tech.slew_overdrive;
        let (_, i_up) = self.held_solve(design, vstep, inn_star, design.vds2)?;
        let (_, i_dn) = self.held_solve(design, -vstep, inn_star, design.vds2)?;
        let srp = i_up / self.tech.cl;
        let srn = i_dn / self.tech.cl;

        Ok(OtaPerformance {
            alf,
            fu,
            pm,
            voffset,
            srp,
            srn,
        })
    }

    /// Measures the slew rates with a large-signal *transient* analysis
    /// (the third of the paper's "three simulations" per sample): the
    /// non-inverting input is stepped by ±[`OtaTechnology::slew_overdrive`]
    /// volts from the balanced state and the steepest output slope is
    /// reported as `(SRp, SRn)`.
    ///
    /// This cross-validates the held-output DC method used by
    /// [`OtaTestbench::simulate`]; the two agree to within the accuracy of
    /// the one-pole approximation (see the integration tests).
    ///
    /// # Errors
    ///
    /// Same conditions as [`OtaTestbench::simulate`], plus transient
    /// non-convergence.
    pub fn simulate_slew_transient(&self, design: &OtaDesign) -> Result<(f64, f64), CircuitError> {
        use crate::tran::{solve_tran, TranOptions};

        let vcm = self.vcm(design);
        let (dc0, inn_star) = self.balance(design)?;
        // The AC configuration has independent inp/inn sources at branch
        // indices 4 and 5; its DC state equals the balanced solution.
        let (nl, nodes, _) = self.build(design, Config::OpenLoopAc { inn_dc: inn_star })?;
        let swing = 2.0 / (2.0 * design.id2 / self.tech.cl);
        let opts = TranOptions {
            t_stop: swing.clamp(1e-7, 1e-4),
            dt: swing.clamp(1e-7, 1e-4) / 400.0,
            ..TranOptions::default()
        };
        let step = self.tech.slew_overdrive;
        let mut rates = [0.0f64; 2];
        for (k, sign) in [1.0f64, -1.0].iter().enumerate() {
            let tran = solve_tran(&nl, &dc0, &opts, |branch, _t| {
                if branch == 4 {
                    Some(vcm + sign * step)
                } else {
                    None
                }
            })?;
            rates[k] = tran.max_slope(nodes.out);
        }
        Ok((rates[0], -rates[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_design_round_trips_through_vec() {
        let d = OtaDesign::nominal();
        let v = d.to_vec();
        assert_eq!(v.len(), 13);
        let d2 = OtaDesign::from_slice(&v).unwrap();
        assert_eq!(d, d2);
        assert!(OtaDesign::from_slice(&v[..12]).is_err());
        let mut bad = v.clone();
        bad[0] = f64::NAN;
        assert!(OtaDesign::from_slice(&bad).is_err());
    }

    #[test]
    fn perf_ids_cover_all_six() {
        assert_eq!(PerfId::ALL.len(), 6);
        assert_eq!(PerfId::Fu.name(), "fu");
        assert!(PerfId::Fu.log_scaled());
        assert!(!PerfId::Pm.log_scaled());
        assert_eq!(PerfId::Alf.to_string(), "ALF");
    }

    #[test]
    fn nominal_simulation_is_physically_sane() {
        let tb = OtaTestbench::default_07um();
        let perf = tb.simulate(&OtaDesign::nominal()).unwrap();
        // Gain: tens of dB.
        assert!(perf.alf > 15.0 && perf.alf < 80.0, "ALF = {} dB", perf.alf);
        // Unity-gain frequency in the 100 kHz .. 100 MHz band.
        assert!(perf.fu > 1e5 && perf.fu < 1e8, "fu = {} Hz", perf.fu);
        // Phase margin: a one-dominant-pole symmetric OTA is stable.
        assert!(perf.pm > 30.0 && perf.pm < 120.0, "PM = {} deg", perf.pm);
        // Offset: injected 2 mV mismatch dominates; systematic terms add mV.
        assert!(perf.voffset.abs() < 30e-3, "voffset = {} V", perf.voffset);
        // Slew rates: sign and magnitude 2·id2/CL ≈ 8 V/µs.
        assert!(perf.srp > 1e5, "SRp = {}", perf.srp);
        assert!(perf.srn < -1e5, "SRn = {}", perf.srn);
        assert!(perf.srp.abs() < 1e9 && perf.srn.abs() < 1e9);
    }

    #[test]
    fn slew_rate_tracks_output_branch_current() {
        let tb = OtaTestbench::default_07um();
        let d = OtaDesign::nominal();
        let perf = tb.simulate(&d).unwrap();
        // Fully switched: mirror pushes ~2·B·id1 = 2·id2 into CL.
        let expect = 2.0 * d.id2 / tb.tech.cl;
        assert!(
            perf.srp > 0.3 * expect && perf.srp < 3.0 * expect,
            "SRp {} vs first-order {}",
            perf.srp,
            expect
        );
        assert!(
            perf.srn < -0.3 * expect && perf.srn > -3.0 * expect,
            "SRn {} vs first-order {}",
            perf.srn,
            expect
        );
    }

    #[test]
    fn bandwidth_and_slew_rise_with_output_current() {
        let tb = OtaTestbench::default_07um();
        let lo = OtaDesign {
            id2: 32e-6,
            ..OtaDesign::nominal()
        };
        let hi = OtaDesign {
            id2: 48e-6,
            ..OtaDesign::nominal()
        };
        let p_lo = tb.simulate(&lo).unwrap();
        let p_hi = tb.simulate(&hi).unwrap();
        assert!(p_hi.fu > p_lo.fu, "fu: {} vs {}", p_lo.fu, p_hi.fu);
        assert!(p_hi.srp > p_lo.srp, "SRp: {} vs {}", p_lo.srp, p_hi.srp);
    }

    #[test]
    fn offset_scales_with_injected_mismatch() {
        let mut tb = OtaTestbench::default_07um();
        tb.tech.input_mismatch = 0.0;
        let p0 = tb.simulate(&OtaDesign::nominal()).unwrap();
        tb.tech.input_mismatch = -4.0e-3;
        let p4 = tb.simulate(&OtaDesign::nominal()).unwrap();
        assert!(
            (p4.voffset - p0.voffset).abs() > 2.0e-3,
            "mismatch injection must move the offset: {} vs {}",
            p0.voffset,
            p4.voffset
        );
    }

    #[test]
    fn unphysical_designs_are_rejected() {
        let tb = OtaTestbench::default_07um();
        // Drive below threshold: no overdrive.
        let bad = OtaDesign {
            vsg1: 0.5,
            ..OtaDesign::nominal()
        };
        assert!(tb.simulate(&bad).is_err());
        // Negative current.
        let bad = OtaDesign {
            id1: -1e-6,
            ..OtaDesign::nominal()
        };
        assert!(tb.simulate(&bad).is_err());
        // Common mode pushed out of range.
        let bad = OtaDesign {
            vsd5: 4.5,
            ..OtaDesign::nominal()
        };
        assert!(tb.simulate(&bad).is_err());
        // Cascode headroom collapsed.
        let bad = OtaDesign {
            vsd4: 3.0,
            vds2: 2.2,
            ..OtaDesign::nominal()
        };
        assert!(tb.simulate(&bad).is_err());
    }

    #[test]
    fn dx_perturbations_keep_the_testbench_alive() {
        // Every single-variable ±10% perturbation of the nominal design
        // must still simulate: the DOE sweep depends on it.
        let tb = OtaTestbench::default_07um();
        let nominal = OtaDesign::nominal().to_vec();
        for i in 0..13 {
            for sign in [-1.0, 1.0] {
                let mut v = nominal.clone();
                v[i] *= 1.0 + sign * 0.10;
                let d = OtaDesign::from_slice(&v).unwrap();
                let perf = tb.simulate(&d);
                assert!(
                    perf.is_ok(),
                    "perturbing {} by {:+.0}% failed: {:?}",
                    OTA_VAR_NAMES[i],
                    sign * 10.0,
                    perf.err()
                );
            }
        }
    }
}
