//! Level-1 (square-law) MOSFET model with channel-length modulation and
//! first-order mobility degradation.
//!
//! This is the device physics behind the OTA testbench. It deliberately
//! follows the classic SPICE level-1 equations — the same family of models
//! the posynomial paper's analytical reasoning assumes — plus two
//! second-order effects that give the response surfaces realistic
//! curvature for the symbolic-modeling experiments:
//!
//! * Early voltage proportional to channel length (`V_A = va_per_m · L`),
//!   so output conductance `g_ds = I_D / (V_A + V_DS)` varies with bias;
//! * mobility degradation `1 / (1 + θ·V_ov)`, which bends the square law
//!   at large overdrives.
//!
//! All terminal quantities are *polarity-normalized*: the model works in
//! `(vgs, vds)` for NMOS and `(vsg, vsd)` for PMOS, with the caller's
//! [`MosInstance::evaluate`] handling the sign conventions.

use serde::{Deserialize, Serialize};

use crate::CircuitError;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MosPolarity {
    /// N-channel device: conducts for `vgs > vth`, current flows drain→source.
    Nmos,
    /// P-channel device: conducts for `vsg > |vth|`, current flows source→drain.
    Pmos,
}

/// Process parameters of a square-law MOSFET (one per polarity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosProcess {
    /// Polarity of the devices this parameter set describes.
    pub polarity: MosPolarity,
    /// Threshold voltage magnitude in volts (paper: 0.76 V NMOS, 0.75 V PMOS).
    pub vth: f64,
    /// Transconductance parameter `k' = µ·C_ox` in A/V².
    pub kp: f64,
    /// Early voltage per meter of channel length, V/m.
    pub va_per_m: f64,
    /// Mobility degradation coefficient θ in 1/V.
    pub theta: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per width, F/m.
    pub cov_per_m: f64,
    /// Junction capacitance per width at drain/source, F/m.
    pub cj_per_m: f64,
}

impl MosProcess {
    /// A 0.7 µm-class NMOS parameter set matching the paper's testbench
    /// (`Vth,nom = 0.76 V`).
    pub fn nmos_07um() -> Self {
        MosProcess {
            polarity: MosPolarity::Nmos,
            vth: 0.76,
            kp: 110e-6,
            va_per_m: 15e6, // 15 V per µm
            theta: 0.3,
            cox: 2.0e-3,
            cov_per_m: 0.25e-9,
            cj_per_m: 0.45e-9,
        }
    }

    /// A 0.7 µm-class PMOS parameter set (`Vth,nom = −0.75 V`).
    pub fn pmos_07um() -> Self {
        MosProcess {
            polarity: MosPolarity::Pmos,
            vth: 0.75,
            kp: 40e-6,
            va_per_m: 12e6,
            theta: 0.25,
            cox: 2.0e-3,
            cov_per_m: 0.25e-9,
            cj_per_m: 0.55e-9,
        }
    }

    /// Sizes a device for a target drain current at a given overdrive,
    /// in saturation at drain-source voltage `vds_sat_target`:
    /// `W/L = 2·I / (k'·V_ov²·(1 + V_DS/V_A)) · (1 + θ·V_ov)`.
    ///
    /// This is the *operating-point driven formulation* of the paper
    /// (ref. \[13\]): currents and drive voltages are the design variables,
    /// and widths follow from them.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidDevice`] when the current or overdrive is not
    /// positive, or the resulting width would be non-finite.
    pub fn size_for(
        &self,
        id: f64,
        vov: f64,
        vds_sat_target: f64,
        length: f64,
    ) -> Result<MosInstance, CircuitError> {
        if !(id > 0.0) || !id.is_finite() {
            return Err(CircuitError::InvalidDevice(format!(
                "drain current must be positive, got {id}"
            )));
        }
        if !(vov > 0.0) || !vov.is_finite() {
            return Err(CircuitError::InvalidDevice(format!(
                "overdrive must be positive, got {vov}"
            )));
        }
        if !(length > 0.0) {
            return Err(CircuitError::InvalidDevice(format!(
                "channel length must be positive, got {length}"
            )));
        }
        let va = self.va_per_m * length;
        let clm = 1.0 + vds_sat_target.max(0.0) / va;
        let mobility = 1.0 + self.theta * vov;
        let w_over_l = 2.0 * id * mobility / (self.kp * vov * vov * clm);
        let width = w_over_l * length;
        if !width.is_finite() || width <= 0.0 {
            return Err(CircuitError::InvalidDevice(format!(
                "computed width {width} is not physical"
            )));
        }
        Ok(MosInstance {
            process: *self,
            width,
            length,
            vth_shift: 0.0,
        })
    }
}

/// A sized MOSFET instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosInstance {
    /// Process parameters.
    pub process: MosProcess,
    /// Channel width in meters.
    pub width: f64,
    /// Channel length in meters.
    pub length: f64,
    /// Deterministic threshold shift in volts (mismatch injection for
    /// offset experiments; positive raises the magnitude of `vth`).
    pub vth_shift: f64,
}

/// The operating point of a MOSFET: current and small-signal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosOperatingPoint {
    /// Drain current (drain→source for NMOS, source→drain for PMOS),
    /// in the *normalized* positive-conduction convention.
    pub id: f64,
    /// Transconductance ∂I/∂V_gs.
    pub gm: f64,
    /// Output conductance ∂I/∂V_ds.
    pub gds: f64,
    /// `true` when the device is in the saturation region.
    pub saturated: bool,
    /// Gate-source capacitance at this bias.
    pub cgs: f64,
    /// Gate-drain capacitance at this bias.
    pub cgd: f64,
    /// Drain-bulk junction capacitance.
    pub cdb: f64,
}

impl MosInstance {
    /// Scales the width by `factor` (current-mirror ratios).
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidDevice`] for a non-positive factor.
    pub fn scaled_width(&self, factor: f64) -> Result<MosInstance, CircuitError> {
        if !(factor > 0.0) || !factor.is_finite() {
            return Err(CircuitError::InvalidDevice(format!(
                "width scale factor must be positive, got {factor}"
            )));
        }
        Ok(MosInstance {
            width: self.width * factor,
            ..*self
        })
    }

    /// Returns a copy with an added threshold shift (mismatch injection).
    pub fn with_vth_shift(&self, shift: f64) -> MosInstance {
        MosInstance {
            vth_shift: self.vth_shift + shift,
            ..*self
        }
    }

    /// Effective threshold magnitude including mismatch shift.
    #[inline]
    pub fn vth_eff(&self) -> f64 {
        self.process.vth + self.vth_shift
    }

    /// Evaluates the device at *polarity-normalized* terminal voltages.
    ///
    /// For NMOS pass `(vgs, vds)`; for PMOS pass `(vsg, vsd)`. Negative
    /// `vds` is handled by the source/drain symmetry of the square law.
    /// The returned operating point is in the same normalized convention;
    /// [`crate::netlist`] maps it back to node polarities.
    pub fn evaluate(&self, vgs: f64, vds: f64) -> MosOperatingPoint {
        // Source/drain swap for reverse conduction.
        if vds < 0.0 {
            // With terminals swapped the gate-source voltage becomes
            // vgd = vgs - vds.
            let swapped = self.evaluate(vgs - vds, -vds);
            return MosOperatingPoint {
                id: -swapped.id,
                gm: swapped.gm,
                // Chain rule through the swap keeps gds positive.
                gds: swapped.gds + swapped.gm,
                ..swapped
            };
        }
        let vth = self.vth_eff();
        let vov = vgs - vth;
        let beta0 = self.process.kp * self.width / self.length;
        let theta = self.process.theta;
        let va = self.process.va_per_m * self.length;

        let (id, gm, gds, saturated) = if vov <= 0.0 {
            // Cutoff: tiny leakage conductance keeps the Jacobian nonsingular.
            let gleak = 1e-12;
            (gleak * vds, 0.0, gleak, false)
        } else {
            // Mobility degradation enters both regions; its vgs-derivative
            // is carried exactly so Newton sees a consistent Jacobian.
            let mob = 1.0 + theta * vov;
            let clm = 1.0 + vds / va;
            if vds >= vov {
                // Saturation with channel-length modulation expressed
                // through a bias-dependent Early voltage.
                let isat = 0.5 * beta0 * vov * vov / mob;
                let id = isat * clm;
                // d/dvov of (vov²/mob) = vov(2 + θ·vov)/mob².
                let gm = 0.5 * beta0 * clm * vov * (2.0 + theta * vov) / (mob * mob);
                let gds = isat / va;
                (id, gm, gds, true)
            } else {
                // Triode region, with the same CLM factor so the current
                // and gds are continuous across vds = vov.
                let core = vov * vds - 0.5 * vds * vds;
                let id = beta0 * core * clm / mob;
                // d/dvgs: product rule over core/mob.
                let gm = beta0 * clm * (vds * mob - theta * core) / (mob * mob);
                let gds = beta0 * ((vov - vds) * clm + core / va) / mob + 1e-12;
                (id, gm, gds, false)
            }
        };

        // Bias-dependent capacitances (Meyer-style split).
        let area = self.width * self.length;
        let (cgs, cgd) = if vov <= 0.0 {
            let chalf = 0.5 * area * self.process.cox;
            (
                chalf * 0.0 + self.width * self.process.cov_per_m,
                chalf * 0.0 + self.width * self.process.cov_per_m,
            )
        } else if saturated {
            (
                (2.0 / 3.0) * area * self.process.cox + self.width * self.process.cov_per_m,
                self.width * self.process.cov_per_m,
            )
        } else {
            let chalf = 0.5 * area * self.process.cox;
            (
                chalf + self.width * self.process.cov_per_m,
                chalf + self.width * self.process.cov_per_m,
            )
        };
        let cdb = self.width * self.process.cj_per_m;

        MosOperatingPoint {
            id,
            gm,
            gds,
            saturated,
            cgs,
            cgd,
            cdb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos_unit() -> MosInstance {
        MosProcess::nmos_07um()
            .size_for(10e-6, 0.3, 1.0, 1e-6)
            .unwrap()
    }

    #[test]
    fn sized_device_carries_target_current() {
        let m = nmos_unit();
        let op = m.evaluate(0.76 + 0.3, 1.0);
        assert!(op.saturated);
        assert!(
            (op.id - 10e-6).abs() / 10e-6 < 1e-9,
            "sized current {} != 10 µA",
            op.id
        );
    }

    #[test]
    fn cutoff_has_negligible_current() {
        let m = nmos_unit();
        let op = m.evaluate(0.5, 1.0);
        assert!(!op.saturated);
        assert!(op.id.abs() < 1e-10);
        assert_eq!(op.gm, 0.0);
    }

    #[test]
    fn current_increases_with_overdrive_and_vds() {
        let m = nmos_unit();
        let i1 = m.evaluate(1.0, 1.0).id;
        let i2 = m.evaluate(1.2, 1.0).id;
        let i3 = m.evaluate(1.2, 2.0).id;
        assert!(i2 > i1);
        assert!(i3 > i2); // channel-length modulation
    }

    #[test]
    fn triode_saturation_boundary_is_continuous() {
        let m = nmos_unit();
        let vov: f64 = 0.3;
        let just_below = m.evaluate(0.76 + vov, vov - 1e-9).id;
        let just_above = m.evaluate(0.76 + vov, vov + 1e-9).id;
        assert!((just_below - just_above).abs() / just_above < 1e-3);
    }

    #[test]
    fn gm_matches_finite_difference() {
        let m = nmos_unit();
        let (vgs, vds) = (1.1, 1.5);
        let op = m.evaluate(vgs, vds);
        let h = 1e-7;
        let fd = (m.evaluate(vgs + h, vds).id - m.evaluate(vgs - h, vds).id) / (2.0 * h);
        assert!(
            (op.gm - fd).abs() / fd.abs() < 1e-4,
            "gm {} vs fd {}",
            op.gm,
            fd
        );
    }

    #[test]
    fn gds_matches_finite_difference_in_saturation() {
        let m = nmos_unit();
        let (vgs, vds) = (1.1, 2.0);
        let op = m.evaluate(vgs, vds);
        let h = 1e-7;
        let fd = (m.evaluate(vgs, vds + h).id - m.evaluate(vgs, vds - h).id) / (2.0 * h);
        // The level-1 CLM derivative neglects the isat·d(clm)/dvds ≈ isat/va
        // coupling with the vds-dependent mobility term; allow 1%.
        assert!(
            (op.gds - fd).abs() / fd.abs() < 1e-2,
            "gds {} vs fd {}",
            op.gds,
            fd
        );
    }

    #[test]
    fn reverse_conduction_is_antisymmetric() {
        let m = nmos_unit();
        // A symmetric device with swapped drain/source carries the negated
        // current of the forward configuration with gate at vgd.
        let fwd = m.evaluate(1.5, 0.8);
        let rev = m.evaluate(1.5 - 0.8, -0.8);
        assert!((fwd.id + rev.id).abs() / fwd.id < 1e-12);
    }

    #[test]
    fn vth_shift_moves_current() {
        let m = nmos_unit();
        let hi = m.with_vth_shift(-0.01).evaluate(1.06, 1.0).id;
        let lo = m.with_vth_shift(0.01).evaluate(1.06, 1.0).id;
        assert!(hi > lo);
        assert!((m.with_vth_shift(0.01).vth_eff() - 0.77).abs() < 1e-12);
    }

    #[test]
    fn mirror_scaling_scales_current() {
        let m = nmos_unit();
        let m4 = m.scaled_width(4.0).unwrap();
        let i1 = m.evaluate(1.1, 1.0).id;
        let i4 = m4.evaluate(1.1, 1.0).id;
        assert!((i4 / i1 - 4.0).abs() < 1e-12);
        assert!(m.scaled_width(0.0).is_err());
        assert!(m.scaled_width(-1.0).is_err());
    }

    #[test]
    fn sizing_rejects_unphysical_requests() {
        let p = MosProcess::nmos_07um();
        assert!(p.size_for(-1e-6, 0.3, 1.0, 1e-6).is_err());
        assert!(p.size_for(1e-6, 0.0, 1.0, 1e-6).is_err());
        assert!(p.size_for(1e-6, 0.3, 1.0, 0.0).is_err());
        assert!(p.size_for(f64::NAN, 0.3, 1.0, 1e-6).is_err());
    }

    #[test]
    fn capacitances_positive_and_bias_dependent() {
        let m = nmos_unit();
        let sat = m.evaluate(1.1, 2.0);
        let tri = m.evaluate(1.5, 0.1);
        assert!(sat.cgs > 0.0 && sat.cgd > 0.0 && sat.cdb > 0.0);
        // In triode the channel splits between source and drain sides.
        assert!(tri.cgd > sat.cgd);
    }

    #[test]
    fn pmos_process_sizes_devices_too() {
        let p = MosProcess::pmos_07um();
        let m = p.size_for(10e-6, 0.35, 1.0, 1e-6).unwrap();
        // Normalized convention: evaluate(vsg, vsd).
        let op = m.evaluate(0.75 + 0.35, 1.0);
        assert!(op.saturated);
        assert!((op.id - 10e-6).abs() / 10e-6 < 1e-9);
    }

    #[test]
    fn mobility_degradation_bends_square_law() {
        // At fixed geometry, doubling overdrive should give LESS than 4x
        // current because of the theta term.
        let p = MosProcess::nmos_07um();
        let m = MosInstance {
            process: p,
            width: 10e-6,
            length: 1e-6,
            vth_shift: 0.0,
        };
        let i1 = m.evaluate(p.vth + 0.2, 2.0).id;
        let i2 = m.evaluate(p.vth + 0.4, 2.0).id;
        assert!(i2 / i1 < 4.0);
        assert!(i2 / i1 > 3.0);
    }
}
