//! Analog circuit simulation substrate for the CAFFEINE reproduction.
//!
//! The paper trains its symbolic models on SPICE simulation data of a
//! high-speed CMOS OTA (Fig. 2 of the paper). We do not have SPICE or the
//! authors' proprietary 0.7 µm technology, so this crate implements the
//! closest self-contained equivalent:
//!
//! * a modified nodal analysis (MNA) engine over the workspace's dense
//!   linear algebra ([`mna`], [`netlist`]),
//! * level-1 (square-law) MOSFET device models with channel-length
//!   modulation and body-effect-free triode/saturation regions ([`mos`]),
//! * Newton–Raphson DC operating-point solving with source stepping
//!   ([`dc`]),
//! * complex-valued AC small-signal analysis ([`ac`]), and
//! * the *operating-point driven* high-speed OTA testbench ([`ota`]): 13
//!   design variables (branch currents and device drive voltages, named as
//!   in the paper: `id1, id2, vsg1, vgs2, vds2, …`) mapped to the six
//!   performances `ALF, fu, PM, voffset, SRp, SRn`.
//!
//! The substitution is documented in `DESIGN.md`; the key property is that
//! the simulator exposes the same physical couplings the paper's models
//! discover (e.g. DC gain inversely proportional to the differential-pair
//! current, slew rates set by bias currents and the load capacitance).
//!
//! # Example
//!
//! ```
//! use caffeine_circuit::ota::{OtaDesign, OtaTestbench};
//!
//! let tb = OtaTestbench::default_07um();
//! let perf = tb.simulate(&OtaDesign::nominal()).unwrap();
//! assert!(perf.alf > 0.0);          // the OTA has gain
//! assert!(perf.fu > 1.0e5);         // unity-gain frequency in a sane band
//! assert!(perf.pm > 0.0 && perf.pm < 180.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod ac;
pub mod dc;
mod error;
pub mod mna;
pub mod mos;
pub mod netlist;
pub mod ota;
pub mod tran;

pub use error::CircuitError;
pub use netlist::{Element, Netlist, NodeId};
