//! Modified nodal analysis (MNA) system assembly.
//!
//! The MNA unknown vector is `[v_1 … v_N, i_1 … i_M]` — one voltage per
//! non-ground node and one branch current per independent voltage source.
//! Elements *stamp* their constitutive relations into the system matrix
//! and right-hand side; this module provides the generic stamping
//! primitives shared by the DC (real) and AC (complex) engines.

use caffeine_linalg::{Matrix, Scalar};

use crate::netlist::NodeId;

/// An MNA system under assembly, generic over real (`f64`, DC) or complex
/// ([`caffeine_linalg::Complex64`], AC) arithmetic.
///
/// # Example
///
/// ```
/// use caffeine_circuit::mna::MnaSystem;
/// use caffeine_circuit::NodeId;
///
/// // A 1 V source driving a 2-resistor divider: 1k to mid, 1k to ground.
/// let mut sys: MnaSystem<f64> = MnaSystem::new(2, 1);
/// let (vin, mid) = (NodeId(1), NodeId(2));
/// sys.stamp_vsource(0, vin, NodeId::GROUND, 1.0);
/// sys.stamp_conductance(vin, mid, 1e-3);
/// sys.stamp_conductance(mid, NodeId::GROUND, 1e-3);
/// let x = sys.solve().unwrap();
/// assert!((x[1] - 0.5).abs() < 1e-12); // mid sits at 0.5 V
/// ```
#[derive(Debug, Clone)]
pub struct MnaSystem<T = f64> {
    n_nodes: usize,
    n_branches: usize,
    a: Matrix<T>,
    z: Vec<T>,
}

impl<T: Scalar> MnaSystem<T> {
    /// Creates an empty system for `n_nodes` non-ground nodes and
    /// `n_branches` voltage-source branches.
    pub fn new(n_nodes: usize, n_branches: usize) -> Self {
        let dim = n_nodes + n_branches;
        MnaSystem {
            n_nodes,
            n_branches,
            a: Matrix::zeros(dim, dim),
            z: vec![T::zero(); dim],
        }
    }

    /// Total system dimension.
    pub fn dim(&self) -> usize {
        self.n_nodes + self.n_branches
    }

    /// Number of non-ground nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    #[inline]
    fn idx(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            debug_assert!(n.0 - 1 < self.n_nodes, "node id out of range");
            Some(n.0 - 1)
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b`.
    pub fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: T) {
        let (ia, ib) = (self.idx(a), self.idx(b));
        if let Some(i) = ia {
            self.a[(i, i)] += g;
        }
        if let Some(j) = ib {
            self.a[(j, j)] += g;
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            self.a[(i, j)] -= g;
            self.a[(j, i)] -= g;
        }
    }

    /// Stamps an independent current: `i` amperes flow out of node `from`
    /// and into node `to`.
    pub fn stamp_current(&mut self, from: NodeId, to: NodeId, i: T) {
        if let Some(f) = self.idx(from) {
            self.z[f] -= i;
        }
        if let Some(t) = self.idx(to) {
            self.z[t] += i;
        }
    }

    /// Stamps a voltage-controlled current source: `gm·(v(cp) − v(cn))`
    /// flows out of `out_pos` and into `out_neg` *through the element*
    /// (i.e. it is drawn from `out_pos`'s node).
    pub fn stamp_vccs(&mut self, out_pos: NodeId, out_neg: NodeId, cp: NodeId, cn: NodeId, gm: T) {
        let (ip, ineg) = (self.idx(out_pos), self.idx(out_neg));
        let (icp, icn) = (self.idx(cp), self.idx(cn));
        if let Some(p) = ip {
            if let Some(c) = icp {
                self.a[(p, c)] += gm;
            }
            if let Some(c) = icn {
                self.a[(p, c)] -= gm;
            }
        }
        if let Some(n) = ineg {
            if let Some(c) = icp {
                self.a[(n, c)] -= gm;
            }
            if let Some(c) = icn {
                self.a[(n, c)] += gm;
            }
        }
    }

    /// Stamps an independent voltage source on branch `branch`
    /// (0-based among voltage sources): `v(pos) − v(neg) = v`.
    pub fn stamp_vsource(&mut self, branch: usize, pos: NodeId, neg: NodeId, v: T) {
        debug_assert!(branch < self.n_branches);
        let row = self.n_nodes + branch;
        if let Some(p) = self.idx(pos) {
            self.a[(row, p)] += T::one();
            self.a[(p, row)] += T::one();
        }
        if let Some(n) = self.idx(neg) {
            self.a[(row, n)] -= T::one();
            self.a[(n, row)] -= T::one();
        }
        self.z[row] += v;
    }

    /// Adds `g` from every node to ground (the classic `gmin` convergence
    /// aid for Newton homotopy).
    pub fn stamp_gmin(&mut self, g: T) {
        for i in 0..self.n_nodes {
            self.a[(i, i)] += g;
        }
    }

    /// Solves the assembled system, returning the raw unknown vector
    /// `[v_1 … v_N, i_1 … i_M]`.
    ///
    /// # Errors
    ///
    /// [`caffeine_linalg::LinalgError::Singular`] when the system is
    /// singular (floating node, voltage-source loop).
    pub fn solve(&self) -> Result<Vec<T>, caffeine_linalg::LinalgError> {
        caffeine_linalg::solve_square(&self.a, &self.z)
    }

    /// Direct read access to the assembled matrix (for tests/inspection).
    pub fn matrix(&self) -> &Matrix<T> {
        &self.a
    }

    /// Direct read access to the assembled right-hand side.
    pub fn rhs(&self) -> &[T] {
        &self.z
    }
}

/// Expands a raw MNA solution into per-node voltages indexed by `NodeId`
/// (ground included as entry 0).
pub fn node_voltages<T: Scalar>(solution: &[T], n_nodes: usize) -> Vec<T> {
    let mut v = Vec::with_capacity(n_nodes + 1);
    v.push(T::zero());
    v.extend_from_slice(&solution[..n_nodes]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use caffeine_linalg::Complex64;

    #[test]
    fn resistor_divider_solves() {
        let mut sys: MnaSystem<f64> = MnaSystem::new(2, 1);
        sys.stamp_vsource(0, NodeId(1), NodeId::GROUND, 10.0);
        sys.stamp_conductance(NodeId(1), NodeId(2), 1.0 / 1000.0);
        sys.stamp_conductance(NodeId(2), NodeId::GROUND, 1.0 / 3000.0);
        let x = sys.solve().unwrap();
        assert!((x[0] - 10.0).abs() < 1e-12);
        assert!((x[1] - 7.5).abs() < 1e-12);
        // Branch current: 10V over 4k total = 2.5 mA, flowing out of
        // the source's positive terminal (MNA sign: into the + node).
        assert!((x[2] + 2.5e-3).abs() < 1e-12);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut sys: MnaSystem<f64> = MnaSystem::new(1, 0);
        sys.stamp_current(NodeId::GROUND, NodeId(1), 1e-3);
        sys.stamp_conductance(NodeId(1), NodeId::GROUND, 1e-3);
        let x = sys.solve().unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vccs_acts_as_transconductor() {
        // v(1) set by source; vccs pulls gm*v(1) out of node 2 into ground;
        // node 2 loaded with 1k to ground -> v(2) = -gm*R*v(1).
        let mut sys: MnaSystem<f64> = MnaSystem::new(2, 1);
        sys.stamp_vsource(0, NodeId(1), NodeId::GROUND, 1.0);
        sys.stamp_vccs(NodeId(2), NodeId::GROUND, NodeId(1), NodeId::GROUND, 2e-3);
        sys.stamp_conductance(NodeId(2), NodeId::GROUND, 1e-3);
        let x = sys.solve().unwrap();
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmin_regularizes_floating_node() {
        let mut sys: MnaSystem<f64> = MnaSystem::new(1, 0);
        // Node 1 floats: singular without gmin.
        assert!(sys.solve().is_err());
        sys.stamp_gmin(1e-12);
        let x = sys.solve().unwrap();
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn complex_rc_divider_has_expected_phase() {
        // Series R, shunt C driven by 1 V AC at ω where ωRC = 1:
        // |H| = 1/√2, phase = −45°.
        let r = 1e3;
        let c = 1e-9;
        let omega = 1.0 / (r * c);
        let mut sys: MnaSystem<Complex64> = MnaSystem::new(2, 1);
        sys.stamp_vsource(0, NodeId(1), NodeId::GROUND, Complex64::ONE);
        sys.stamp_conductance(NodeId(1), NodeId(2), Complex64::from_real(1.0 / r));
        sys.stamp_conductance(NodeId(2), NodeId::GROUND, Complex64::new(0.0, omega * c));
        let x = sys.solve().unwrap();
        let h = x[1];
        assert!((h.abs() - 1.0 / 2.0_f64.sqrt()).abs() < 1e-9);
        assert!((h.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn node_voltages_prepends_ground() {
        let v = node_voltages(&[1.0, 2.0, 9.0], 2);
        assert_eq!(v, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn two_sources_two_branches() {
        let mut sys: MnaSystem<f64> = MnaSystem::new(2, 2);
        sys.stamp_vsource(0, NodeId(1), NodeId::GROUND, 5.0);
        sys.stamp_vsource(1, NodeId(2), NodeId::GROUND, 3.0);
        sys.stamp_conductance(NodeId(1), NodeId(2), 1e-3);
        let x = sys.solve().unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        // 2 mA flows 1 -> 2.
        assert!((x[2] + 2e-3).abs() < 1e-12);
        assert!((x[3] - 2e-3).abs() < 1e-12);
    }
}
