//! AC small-signal analysis.
//!
//! Linearizes every device around a previously computed DC operating point
//! and solves the complex MNA system at each requested frequency. The
//! stimulus is taken from the `ac` magnitudes of the netlist's voltage
//! sources (phase 0 assumed).

use caffeine_linalg::Complex64;

use crate::dc::DcSolution;
use crate::mna::{node_voltages, MnaSystem};
use crate::mos::MosPolarity;
use crate::netlist::{Element, Netlist, NodeId};
use crate::CircuitError;

/// The complex node-voltage response at a set of frequencies.
#[derive(Debug, Clone)]
pub struct AcSweep {
    /// Analysis frequencies, Hz.
    pub frequencies: Vec<f64>,
    /// For each frequency: node voltages indexed by `NodeId.0`
    /// (ground = entry 0 = 0).
    pub node_voltages: Vec<Vec<Complex64>>,
}

impl AcSweep {
    /// The transfer response at one node across the sweep.
    pub fn response_at(&self, node: NodeId) -> Vec<Complex64> {
        self.node_voltages.iter().map(|v| v[node.0]).collect()
    }

    /// Magnitude in dB at `node` across the sweep.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.response_at(node)
            .iter()
            .map(|h| 20.0 * h.abs().log10())
            .collect()
    }

    /// Phase in degrees at `node` across the sweep (unwrapped naively
    /// per-point in `(-180, 180]`).
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        self.response_at(node)
            .iter()
            .map(|h| h.arg().to_degrees())
            .collect()
    }
}

/// Generates `points` logarithmically spaced frequencies over
/// `[f_start, f_stop]`, inclusive on both ends.
///
/// # Panics
///
/// Panics if the interval is not positive-increasing or `points < 2`.
pub fn log_frequencies(f_start: f64, f_stop: f64, points: usize) -> Vec<f64> {
    assert!(
        f_start > 0.0 && f_stop > f_start,
        "need 0 < f_start < f_stop"
    );
    assert!(points >= 2, "need at least two points");
    let l0 = f_start.log10();
    let l1 = f_stop.log10();
    (0..points)
        .map(|i| 10f64.powf(l0 + (l1 - l0) * i as f64 / (points - 1) as f64))
        .collect()
}

/// Runs an AC sweep of the netlist around the DC operating point `dc`.
///
/// # Errors
///
/// * [`CircuitError::SingularSystem`] if the small-signal system is
///   singular at some frequency.
/// * [`CircuitError::InvalidDevice`] for a negative frequency.
pub fn solve_ac(
    netlist: &Netlist,
    dc: &DcSolution,
    frequencies: &[f64],
) -> Result<AcSweep, CircuitError> {
    if frequencies.iter().any(|f| !(*f >= 0.0) || !f.is_finite()) {
        return Err(CircuitError::InvalidDevice(
            "frequencies must be finite and non-negative".into(),
        ));
    }
    let n_nodes = netlist.n_nodes() - 1;
    let n_branches = netlist.n_vsources();
    let mut out = Vec::with_capacity(frequencies.len());

    for &f in frequencies {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut sys: MnaSystem<Complex64> = MnaSystem::new(n_nodes, n_branches);
        // A tiny real gmin keeps high-impedance AC nodes well conditioned.
        sys.stamp_gmin(Complex64::from_real(1e-15));
        let mut branch = 0usize;
        for (idx, e) in netlist.elements().iter().enumerate() {
            match *e {
                Element::Resistor { a, b, ohms } => {
                    sys.stamp_conductance(a, b, Complex64::from_real(1.0 / ohms));
                }
                Element::Capacitor { a, b, farads } => {
                    sys.stamp_conductance(a, b, Complex64::new(0.0, omega * farads));
                }
                Element::VSource { pos, neg, ac, .. } => {
                    sys.stamp_vsource(branch, pos, neg, Complex64::from_real(ac));
                    branch += 1;
                }
                Element::ISource { .. } => {} // ideal bias: open at AC
                Element::Vccs {
                    out_pos,
                    out_neg,
                    cp,
                    cn,
                    gm,
                } => {
                    sys.stamp_vccs(out_pos, out_neg, cp, cn, Complex64::from_real(gm));
                }
                Element::Mosfet { d, g, s, instance } => {
                    let op = dc.mos_op(idx).ok_or_else(|| {
                        CircuitError::PerformanceExtraction(format!(
                            "no DC operating point for mosfet element {idx}"
                        ))
                    })?;
                    let gm = Complex64::from_real(op.gm);
                    let gds = Complex64::from_real(op.gds);
                    match instance.process.polarity {
                        MosPolarity::Nmos => {
                            sys.stamp_vccs(d, s, g, s, gm);
                            sys.stamp_conductance(d, s, gds);
                        }
                        MosPolarity::Pmos => {
                            sys.stamp_vccs(s, d, s, g, gm);
                            sys.stamp_conductance(s, d, gds);
                        }
                    }
                    // Device capacitances; bulk approximated as AC ground.
                    sys.stamp_conductance(g, s, Complex64::new(0.0, omega * op.cgs));
                    sys.stamp_conductance(g, d, Complex64::new(0.0, omega * op.cgd));
                    sys.stamp_conductance(d, NodeId::GROUND, Complex64::new(0.0, omega * op.cdb));
                }
            }
        }
        let x = sys.solve().map_err(CircuitError::from)?;
        out.push(node_voltages(&x, n_nodes));
    }

    Ok(AcSweep {
        frequencies: frequencies.to_vec(),
        node_voltages: out,
    })
}

/// Finds the unity-gain frequency of `|H|` at `node` by bisection on a log
/// grid, returning `(fu, phase_at_fu_degrees)`.
///
/// The search brackets the first crossing of `|H| = 1` on the sweep and
/// refines it with 40 bisection steps, re-solving the AC system each time
/// (cheap for our circuit sizes).
///
/// # Errors
///
/// [`CircuitError::PerformanceExtraction`] when `|H|` never crosses unity
/// inside the swept band.
pub fn unity_gain_crossing(
    netlist: &Netlist,
    dc: &DcSolution,
    node: NodeId,
    f_start: f64,
    f_stop: f64,
    coarse_points: usize,
) -> Result<(f64, f64), CircuitError> {
    let freqs = log_frequencies(f_start, f_stop, coarse_points);
    let sweep = solve_ac(netlist, dc, &freqs)?;
    let mags: Vec<f64> = sweep.response_at(node).iter().map(|h| h.abs()).collect();

    // Locate the first high-to-low crossing of 1.0.
    let mut bracket = None;
    for i in 1..mags.len() {
        if mags[i - 1] >= 1.0 && mags[i] < 1.0 {
            bracket = Some((freqs[i - 1], freqs[i]));
            break;
        }
    }
    let (mut lo, mut hi) = bracket.ok_or_else(|| {
        CircuitError::PerformanceExtraction(format!(
            "gain never crosses unity in [{f_start:.3e}, {f_stop:.3e}] Hz \
             (|H| range {:.3e}..{:.3e})",
            mags.iter().cloned().fold(f64::INFINITY, f64::min),
            mags.iter().cloned().fold(0.0, f64::max),
        ))
    })?;

    let mut phase = 0.0;
    for _ in 0..40 {
        let mid = (lo * hi).sqrt(); // geometric midpoint on the log axis
        let s = solve_ac(netlist, dc, &[mid])?;
        let h = s.node_voltages[0][node.0];
        if h.abs() >= 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        phase = h.arg().to_degrees();
    }
    Ok(((lo * hi).sqrt(), phase))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{solve_dc, DcOptions};
    use crate::mos::MosProcess;

    fn rc_lowpass(r: f64, c: f64) -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.add(Element::VSource {
            pos: vin,
            neg: NodeId::GROUND,
            dc: 0.0,
            ac: 1.0,
        });
        nl.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: r,
        });
        nl.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: c,
        });
        (nl, out)
    }

    #[test]
    fn rc_pole_at_expected_frequency() {
        let (nl, out) = rc_lowpass(1e3, 1e-9);
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let fpole = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let sweep = solve_ac(&nl, &dc, &[fpole]).unwrap();
        let h = sweep.response_at(out)[0];
        assert!((h.abs() - 1.0 / 2.0f64.sqrt()).abs() < 1e-6);
        assert!((h.arg().to_degrees() + 45.0).abs() < 1e-6);
    }

    #[test]
    fn magnitude_rolls_off_20db_per_decade() {
        let (nl, out) = rc_lowpass(1e3, 1e-9);
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let fpole = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let sweep = solve_ac(&nl, &dc, &[fpole * 10.0, fpole * 100.0]).unwrap();
        let db = sweep.magnitude_db(out);
        assert!((db[0] - db[1] - 20.0).abs() < 0.5);
    }

    #[test]
    fn log_frequencies_are_geometric() {
        let f = log_frequencies(1.0, 1000.0, 4);
        assert_eq!(f.len(), 4);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[1] - 10.0).abs() < 1e-9);
        assert!((f[3] - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "f_start")]
    fn log_frequencies_rejects_bad_interval() {
        let _ = log_frequencies(10.0, 1.0, 5);
    }

    #[test]
    fn common_source_gain_matches_gm_times_rout() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let gate = nl.node("g");
        let drain = nl.node("d");
        nl.add(Element::VSource {
            pos: vdd,
            neg: NodeId::GROUND,
            dc: 5.0,
            ac: 0.0,
        });
        nl.add(Element::VSource {
            pos: gate,
            neg: NodeId::GROUND,
            dc: 1.06,
            ac: 1.0,
        });
        let rload = 50e3;
        nl.add(Element::Resistor {
            a: vdd,
            b: drain,
            ohms: rload,
        });
        let inst = MosProcess::nmos_07um()
            .size_for(20e-6, 0.3, 2.0, 1e-6)
            .unwrap();
        let midx = nl.add(Element::Mosfet {
            d: drain,
            g: gate,
            s: NodeId::GROUND,
            instance: inst,
        });
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let op = dc.mos_op(midx).unwrap();
        let sweep = solve_ac(&nl, &dc, &[1.0]).unwrap();
        let gain = sweep.response_at(drain)[0].abs();
        let rout = 1.0 / (1.0 / rload + op.gds);
        let expect = op.gm * rout;
        assert!(
            (gain - expect).abs() / expect < 1e-3,
            "gain {gain} vs gm*rout {expect}"
        );
    }

    #[test]
    fn unity_gain_crossing_on_integrator_like_stage() {
        // gm stage into a capacitor: |H| = gm/(ωC) ⇒ fu = gm/(2πC).
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.add(Element::VSource {
            pos: vin,
            neg: NodeId::GROUND,
            dc: 0.0,
            ac: 1.0,
        });
        let gm = 1e-3;
        nl.add(Element::Vccs {
            out_pos: out,
            out_neg: NodeId::GROUND,
            cp: NodeId::GROUND,
            cn: vin,
            gm,
        });
        nl.add(Element::Resistor {
            a: out,
            b: NodeId::GROUND,
            ohms: 1e9,
        });
        let c = 1e-9;
        nl.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: c,
        });
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let (fu, phase) = unity_gain_crossing(&nl, &dc, out, 1.0, 1e9, 61).unwrap();
        let expect = gm / (2.0 * std::f64::consts::PI * c);
        assert!((fu - expect).abs() / expect < 1e-3, "fu {fu} vs {expect}");
        // Pure integrator: -90 degrees.
        assert!((phase + 90.0).abs() < 1.0, "phase {phase}");
    }

    #[test]
    fn crossing_error_when_gain_below_unity() {
        let (nl, out) = rc_lowpass(1e3, 1e-9);
        // Passive RC never exceeds unity gain... it equals 1 at DC.
        // Restrict the band to far above the pole so |H| < 1 everywhere.
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        let err = unity_gain_crossing(&nl, &dc, out, 1e9, 1e12, 11);
        assert!(matches!(err, Err(CircuitError::PerformanceExtraction(_))));
    }

    #[test]
    fn negative_frequency_rejected() {
        let (nl, _) = rc_lowpass(1e3, 1e-9);
        let dc = solve_dc(&nl, &DcOptions::default()).unwrap();
        assert!(solve_ac(&nl, &dc, &[-1.0]).is_err());
    }
}
