// Fixture: a reversed pair silenced by a reasoned allow annotation on the
// inner acquisition line.
impl Scheduler {
    fn reversed_but_vetted(&self, entry: &JobEntry) {
        let g = entry.outcome.lock();
        // lint: allow(lock-order) — fixture: maintenance path, runs single-threaded before workers start
        self.state.lock().touch();
        let _ = g;
    }
}
