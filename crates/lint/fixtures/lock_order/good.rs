// Fixture: the same locks taken in the declared order, and sequential
// (non-overlapping) acquisitions.
impl Scheduler {
    fn ordered(&self, entry: &JobEntry) {
        let g = self.state.lock();
        entry.outcome.lock().touch();
        let _ = g;
    }

    fn sequential(&self, entry: &JobEntry) {
        {
            let a = self.state.lock();
            let _ = a;
        }
        entry.outcome.lock().touch();
    }
}
