// Fixture: a reversed pair and a self-deadlock. Linted with the pretend
// path `crates/serve/src/jobs.rs` against the real lint.toml order
// (Scheduler.state before Job.outcome); never compiled.
impl Scheduler {
    fn reversed(&self, entry: &JobEntry) {
        let g = entry.outcome.lock();
        self.state.lock().touch();
        let _ = g;
    }

    fn reentrant(&self) {
        let a = self.state.lock();
        let b = self.state.lock();
        let _ = (a, b);
    }
}
