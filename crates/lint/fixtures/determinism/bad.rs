// Fixture: one example of every determinism violation class. Linted with
// the pretend path `crates/core/src/fixture.rs`; never compiled.
use std::collections::HashMap;
use std::time::{Instant, SystemTime};

fn wall_clock() -> Instant {
    Instant::now()
}

fn epoch() {
    let _ = SystemTime::now();
}

fn map_iteration(m: &HashMap<String, u32>) -> u32 {
    m.values().sum()
}

fn map_for_loop() {
    let m: HashMap<u32, u32> = HashMap::new();
    for (k, v) in &m {
        let _ = (k, v);
    }
}
