// Fixture: deterministic equivalents of everything bad.rs does.
use std::collections::BTreeMap;

fn ordered_iteration(m: &BTreeMap<String, u32>) -> u32 {
    m.values().sum()
}

fn logical_clock(generation: u64) -> u64 {
    generation + 1
}
