// Fixture: a real violation silenced by a reasoned allow annotation.
use std::collections::HashMap;

fn recycle(cache: &mut HashMap<u64, Vec<f64>>) {
    // lint: allow(determinism) — fixture: drain order never reaches engine state
    for (_, buf) in cache.drain() {
        let _ = buf;
    }
}
