// Fixture: the same annotation with a reason silences the finding.
// lint: allow(determinism) — fixture: import feeds the probe below only
use std::time::SystemTime;

fn f() {
    // lint: allow(determinism) — fixture: probe feeds a log line only
    let _ = SystemTime::now();
}
