// Fixture: an allow annotation without a reason is itself a finding and
// silences nothing.
use std::time::SystemTime;

fn f() {
    // lint: allow(determinism)
    let _ = SystemTime::now();
}
