//! Fixture crate root without the unsafe-code gate. Linted with the
//! pretend path `crates/core/src/lib.rs`; never compiled.

pub fn f() -> u32 {
    1
}
