//! Fixture crate root with the unsafe-code gate.

#![deny(unsafe_code)]

pub fn f() -> u32 {
    1
}
