// lint: allow(hygiene) — fixture: generated shim exempt from the gate
//! Fixture crate root without the unsafe-code gate, vetted.

pub fn f() -> u32 {
    1
}
