// Fixture: every panic-freedom violation class. Linted with the pretend
// path `crates/serve/src/jobs.rs`; never compiled.
fn explode(v: Option<u32>, w: Option<u32>) -> u32 {
    let x = v.unwrap();
    let y = w.expect("present");
    if x > y {
        panic!("boom");
    }
    unreachable!()
}
