// Fixture: graceful handling; test code may panic freely.
fn graceful(v: Option<u32>) -> u32 {
    v.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        assert_eq!(super::graceful(None), 0);
        let _ = Some(3u32).unwrap();
        panic!("fine in tests");
    }
}
