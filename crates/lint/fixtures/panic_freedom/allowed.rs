// Fixture: a vetted panic site silenced by a reasoned allow annotation.
fn startup(v: Option<u32>) -> u32 {
    // lint: allow(panic-freedom) — fixture: runs once at startup before any request is accepted
    v.expect("configured at startup")
}
