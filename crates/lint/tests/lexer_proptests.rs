//! Property tests for the lexer's totality contract: `lex` must accept
//! *arbitrary bytes* — truncated strings, unterminated comments, invalid
//! UTF-8, lone quotes — without panicking, and every span it emits must
//! be in-bounds, non-empty, and non-overlapping in source order.
//!
//! The lint runs on every file in the workspace on every CI run; a lexer
//! panic on one weird byte sequence would take the whole gate down.

use caffeine_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Spans are in-bounds, non-empty, strictly ascending, and line numbers
/// are monotone — on any input at all.
fn well_formed(src: &[u8]) {
    let toks = lex(src);
    let mut prev_end = 0usize;
    let mut prev_line = 1u32;
    for t in &toks {
        assert!(t.lo < t.hi, "empty span {}..{} in {src:?}", t.lo, t.hi);
        assert!(t.hi <= src.len(), "span {}..{} out of bounds", t.lo, t.hi);
        assert!(t.lo >= prev_end, "overlapping span at {} in {src:?}", t.lo);
        assert!(t.line >= prev_line, "line numbers must be monotone");
        prev_end = t.hi;
        prev_line = t.line;
    }
}

/// Fragments exercising the tricky lexer states: raw strings, byte and C
/// strings, lifetimes, char escapes, nested block comments — each also in
/// a truncated (unterminated) form.
const FRAGMENTS: &[&str] = &[
    "r#\"raw\"#",
    "r#\"unterminated",
    "br##\"",
    "\"str\\\"esc\"",
    "\"unterminated",
    "'a'",
    "'lifetime",
    "'\\n'",
    "b'x'",
    "c\"c\"",
    "/* nested /* block */ */",
    "/* unterminated",
    "// line\n",
    "/// doc\n",
    "0x1f",
    "1_000.5e-3",
    "ident",
    "::",
    "<'a>",
    "#![",
    "}\u{fffd}{",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure byte soup: anything at all.
    #[test]
    fn lex_is_total_on_arbitrary_bytes(src in proptest::collection::vec(0u8..=255, 0..512)) {
        well_formed(&src);
    }

    /// Rust-flavoured soup: the tricky fragments concatenated in random
    /// order, truncated ones included.
    #[test]
    fn lex_is_total_on_rustish_fragments(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..24),
    ) {
        let src: Vec<u8> = picks
            .iter()
            .flat_map(|&i| FRAGMENTS[i].bytes())
            .collect();
        well_formed(&src);
    }

    /// Truncating valid-ish source at any byte must still lex.
    #[test]
    fn lex_survives_truncation(cut in 0usize..200) {
        let src = br###"fn f<'a>(x: &'a str) -> u8 { let s = r##"raw "# inside"##; /* c */ b'\x7f' }"###;
        let cut = cut.min(src.len());
        well_formed(&src[..cut]);
    }

    /// Comments and strings are classified (never silently merged into
    /// idents), so rules that filter comments see honest token kinds.
    #[test]
    fn comment_bytes_never_leak_into_idents(n in 1usize..6) {
        let src = format!("a {} b", "/* x */".repeat(n)).into_bytes();
        let toks = lex(&src);
        let idents = toks.iter().filter(|t| t.kind == TokKind::Ident).count();
        let comments = toks.iter().filter(|t| t.kind == TokKind::BlockComment).count();
        prop_assert_eq!(idents, 2);
        prop_assert_eq!(comments, n);
    }
}
