//! End-to-end tests of the `caffeine-lint` binary over the fixture
//! triples in `crates/lint/fixtures/`: every rule fires on its bad
//! fixture (exit 1, rule name in the JSON output), stays quiet on the
//! good one, and is silenced by a reasoned allow annotation (exit 0
//! both times). Also pins the CLI contract itself: exit 2 on usage
//! errors and exit 0 with `clean` on the real workspace.
//!
//! Fixtures are linted via `--file <fixture> --pretend <rel-path>` so
//! the path-scoped rules apply as if the file lived in the workspace
//! (the fixtures directory itself is excluded in lint.toml).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel)
}

fn run_on(rel: &str, pretend: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_caffeine-lint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--file")
        .arg(fixture(rel))
        .arg("--pretend")
        .arg(pretend)
        .output()
        .expect("run caffeine-lint")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

/// Asserts the triple contract for one rule: bad fires (naming `rule` in
/// the JSON output), good and allowed are clean.
fn assert_triple(dir: &str, pretend: &str, rule: &str) {
    let bad = run_on(&format!("{dir}/bad.rs"), pretend);
    assert_eq!(exit_code(&bad), 1, "{dir}/bad.rs must fire");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains(&format!("\"rule\":\"{rule}\"")),
        "{dir}/bad.rs findings must include rule `{rule}`; got:\n{stdout}"
    );

    let good = run_on(&format!("{dir}/good.rs"), pretend);
    assert_eq!(
        exit_code(&good),
        0,
        "{dir}/good.rs must be clean; got:\n{}",
        String::from_utf8_lossy(&good.stdout)
    );

    let allowed_path = format!("{dir}/allowed.rs");
    if fixture(&allowed_path).exists() {
        let allowed = run_on(&allowed_path, pretend);
        assert_eq!(
            exit_code(&allowed),
            0,
            "{allowed_path} must be silenced; got:\n{}",
            String::from_utf8_lossy(&allowed.stdout)
        );
    }
}

#[test]
fn determinism_triple() {
    assert_triple("determinism", "crates/core/src/fixture.rs", "determinism");
}

#[test]
fn determinism_bad_names_every_class() {
    let out = run_on("determinism/bad.rs", "crates/core/src/fixture.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["Instant::now", "SystemTime", "iteration"] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}

#[test]
fn panic_freedom_triple() {
    assert_triple("panic_freedom", "crates/serve/src/jobs.rs", "panic-freedom");
}

#[test]
fn panic_freedom_bad_catches_all_four_sites() {
    let out = run_on("panic_freedom/bad.rs", "crates/serve/src/jobs.rs");
    let findings = String::from_utf8_lossy(&out.stdout);
    let n = findings
        .lines()
        .filter(|l| l.contains("panic-freedom"))
        .count();
    assert_eq!(n, 4, "unwrap, expect, panic!, unreachable!:\n{findings}");
}

#[test]
fn lock_order_triple() {
    assert_triple("lock_order", "crates/serve/src/jobs.rs", "lock-order");
}

#[test]
fn lock_order_bad_flags_both_violation_and_self_deadlock() {
    let out = run_on("lock_order/bad.rs", "crates/serve/src/jobs.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lock order violation"), "{stdout}");
    assert!(stdout.contains("not reentrant"), "{stdout}");
}

#[test]
fn hygiene_triple() {
    assert_triple("hygiene", "crates/core/src/lib.rs", "hygiene");
}

#[test]
fn bad_allow_fires_and_reasoned_allow_passes() {
    let bad = run_on("bad_allow/bad.rs", "crates/core/src/fixture.rs");
    assert_eq!(exit_code(&bad), 1);
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("\"rule\":\"bad-allow\""), "{stdout}");
    // The reason-less allow also silences nothing: the violation it sat
    // on is still reported.
    assert!(stdout.contains("\"rule\":\"determinism\""), "{stdout}");

    let good = run_on("bad_allow/good.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        exit_code(&good),
        0,
        "{}",
        String::from_utf8_lossy(&good.stdout)
    );
}

#[test]
fn doc_links_triple() {
    let bad = run_on("doc_links/bad.md", "docs/fixture.md");
    assert_eq!(exit_code(&bad), 1);
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("broken relative link"), "{stdout}");
    assert!(stdout.contains("absolute link"), "{stdout}");

    let good = run_on("doc_links/good.md", "docs/fixture.md");
    assert_eq!(
        exit_code(&good),
        0,
        "{}",
        String::from_utf8_lossy(&good.stdout)
    );

    let allowed = run_on("doc_links/allowed.md", "docs/fixture.md");
    assert_eq!(
        exit_code(&allowed),
        0,
        "{}",
        String::from_utf8_lossy(&allowed.stdout)
    );
}

#[test]
fn workspace_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_caffeine-lint"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run caffeine-lint");
    assert_eq!(
        exit_code(&out),
        0,
        "workspace must lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("clean"));
}

#[test]
fn usage_error_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_caffeine-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("run caffeine-lint");
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn text_format_is_grep_friendly() {
    let out = Command::new(env!("CARGO_BIN_EXE_caffeine-lint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--format")
        .arg("text")
        .arg("--file")
        .arg(fixture("panic_freedom/bad.rs"))
        .arg("--pretend")
        .arg("crates/serve/src/jobs.rs")
        .output()
        .expect("run caffeine-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout
            .lines()
            .all(|l| l.starts_with("crates/serve/src/jobs.rs:")),
        "{stdout}"
    );
}
