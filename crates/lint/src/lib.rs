//! `caffeine-lint` — a zero-dependency static checker for the
//! workspace's hardest-won invariants.
//!
//! Tests catch violations *when they run the violating path*; this crate
//! makes four whole violation classes unwritable at commit time, in
//! milliseconds, over the workspace's own source:
//!
//! * **determinism** — no wall clocks or hash-map iteration in the
//!   deterministic engine crates (bit-exact resume would silently break);
//! * **lock-order** — nested `.lock()` acquisitions must follow the
//!   order declared in `lint.toml` (static complement to the chaos
//!   suite's dynamic hunting);
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!` in serve's
//!   request-path modules (a panic kills a worker or poisons a lock);
//! * **hygiene** — every crate pins `#![deny(unsafe_code)]`, and every
//!   relative markdown link resolves.
//!
//! Intentional exceptions are silenced only by an inline
//! `// lint: allow(<rule>) — <reason>` annotation; a reason-less allow is
//! itself a violation (`bad-allow`). The full contract lives in
//! `docs/LINTS.md`.
//!
//! Run as `cargo run -p caffeine-lint`: machine-readable JSON findings on
//! stdout (one object per line), human summary on stderr, exit 1 when
//! anything fires.

#![deny(unsafe_code)]

pub mod config;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;

use std::path::{Path, PathBuf};

use config::Config;
use findings::{Finding, Rule};
use source::SourceFile;

/// Run every applicable rule against one Rust source file identified by
/// its workspace-relative path.
pub fn check_rust_source(rel_path: &str, bytes: &[u8], cfg: &Config) -> Vec<Finding> {
    let sf = SourceFile::new(rel_path, bytes);
    let mut out = Vec::new();
    if determinism_applies(rel_path, cfg) {
        rules::determinism::check(&sf, &mut out);
    }
    if cfg.panic_freedom_files.iter().any(|f| f == rel_path) {
        rules::panic_freedom::check(&sf, &mut out);
    }
    if cfg.lock_order_files.iter().any(|f| f == rel_path) {
        rules::lock_order::check(&sf, cfg, &mut out);
    }
    if is_crate_root(rel_path) {
        rules::hygiene::check(&sf, &mut out);
    }
    out.extend(sf.bad_allow_findings());
    out
}

/// Nested-lock events for one file (the `--locks` debugging view).
pub fn lock_events(
    rel_path: &str,
    bytes: &[u8],
    cfg: &Config,
) -> Vec<rules::lock_order::PairEvent> {
    let sf = SourceFile::new(rel_path, bytes);
    rules::lock_order::pairs(&sf, cfg)
}

/// Run the doc-links rule against one markdown file.
pub fn check_markdown(root: &Path, rel_path: &str, bytes: &[u8]) -> Vec<Finding> {
    let mut out = Vec::new();
    rules::doc_links::check(root, rel_path, bytes, &mut out);
    out
}

fn determinism_applies(rel_path: &str, cfg: &Config) -> bool {
    cfg.determinism_crates
        .iter()
        .any(|c| rel_path.starts_with(&format!("crates/{c}/src/")))
}

fn is_crate_root(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs")
}

/// Load `lint.toml` from the workspace root.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| e.to_string())
}

/// Lint the whole workspace under `root`. IO failures become `internal`
/// findings rather than aborting the run.
pub fn run_workspace(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut rust_files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        collect_files(&root.join(top), root, cfg, "rs", &mut rust_files);
    }
    rust_files.sort();
    for rel in &rust_files {
        match std::fs::read(root.join(rel)) {
            Ok(bytes) => out.extend(check_rust_source(rel, &bytes, cfg)),
            Err(e) => out.push(Finding::new(
                Rule::Internal,
                rel,
                0,
                format!("cannot read file: {e}"),
            )),
        }
    }
    let mut md_files = Vec::new();
    for doc_root in &cfg.doc_roots {
        let p = root.join(doc_root);
        if p.is_dir() {
            collect_files(&p, root, cfg, "md", &mut md_files);
        } else if p.is_file() {
            md_files.push(doc_root.clone());
        } else {
            out.push(Finding::new(
                Rule::Internal,
                "lint.toml",
                0,
                format!("doc root `{doc_root}` does not exist"),
            ));
        }
    }
    md_files.sort();
    for rel in &md_files {
        match std::fs::read(root.join(rel)) {
            Ok(bytes) => out.extend(check_markdown(root, rel, &bytes)),
            Err(e) => out.push(Finding::new(
                Rule::Internal,
                rel,
                0,
                format!("cannot read file: {e}"),
            )),
        }
    }
    findings::sort(&mut out);
    out
}

/// Recursively collect files with `ext` under `dir` as workspace-relative
/// `/`-separated paths, honoring `[workspace] exclude` prefixes.
fn collect_files(dir: &Path, root: &Path, cfg: &Config, ext: &str, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // absent top-level dirs are fine
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let Some(rel) = workspace_rel(&path, root) else {
            continue;
        };
        if cfg
            .exclude
            .iter()
            .any(|x| rel == *x || rel.starts_with(&format!("{x}/")))
        {
            continue;
        }
        if path.is_dir() {
            collect_files(&path, root, cfg, ext, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some(ext) {
            out.push(rel);
        }
    }
}

/// `root`-relative `/`-separated form of `path`.
pub fn workspace_rel(path: &Path, root: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut s = String::new();
    for c in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&c.as_os_str().to_string_lossy());
    }
    Some(s)
}
