//! Per-file analysis context shared by all token-stream rules: the token
//! stream itself, the allow-annotation index, and the byte ranges of
//! test-only code that substantive rules skip.

use crate::findings::{Finding, Rule};
use crate::lexer::{lex, TokKind, Token};

/// One `// lint: allow(<rule>) — <reason>` annotation.
#[derive(Debug)]
pub struct Allow {
    pub rule: String,
    /// Line the comment starts on. The annotation covers findings on its
    /// own line and on the following line, so it can sit inline after the
    /// flagged expression or on its own line immediately above.
    pub line: u32,
    pub has_reason: bool,
}

/// A lexed file plus everything the rules need to interpret it.
pub struct SourceFile<'a> {
    /// Workspace-relative `/`-separated path.
    pub path: &'a str,
    pub bytes: &'a [u8],
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items (half-open).
    test_ranges: Vec<(usize, usize)>,
}

impl<'a> SourceFile<'a> {
    pub fn new(path: &'a str, bytes: &'a [u8]) -> SourceFile<'a> {
        let tokens = lex(bytes);
        let allows = scan_allows(bytes, &tokens);
        let test_ranges = scan_test_ranges(bytes, &tokens);
        SourceFile {
            path,
            bytes,
            tokens,
            allows,
            test_ranges,
        }
    }

    /// True when the token at `idx` lies inside test-only code.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.tokens
            .get(idx)
            .is_some_and(|tok| self.byte_in_test(tok.lo))
    }

    /// True when byte offset `lo` lies inside test-only code.
    pub fn byte_in_test(&self, lo: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(rlo, rhi)| lo >= rlo && lo < rhi)
    }

    /// Is a finding of `rule` at `line` silenced by a well-formed allow?
    /// (Reason-less allows silence nothing; they are themselves findings.)
    pub fn is_allowed(&self, rule: Rule, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.has_reason && a.rule == rule.name() && (a.line == line || a.line + 1 == line)
        })
    }

    /// Apply the allow filter to a rule finding; `None` when silenced.
    pub fn filtered(&self, f: Finding) -> Option<Finding> {
        if self.is_allowed(f.rule, f.line) {
            None
        } else {
            Some(f)
        }
    }

    /// Findings for malformed annotations: unknown rule names and missing
    /// reasons. A bare allow is itself a violation — the contract is that
    /// every silenced finding carries a human justification.
    pub fn bad_allow_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for a in &self.allows {
            if !Rule::allowable(&a.rule) {
                out.push(Finding::new(
                    Rule::BadAllow,
                    self.path,
                    a.line,
                    format!(
                        "allow names unknown rule `{}` (known: determinism, lock-order, \
                         panic-freedom, hygiene, doc-links)",
                        a.rule
                    ),
                ));
            } else if !a.has_reason {
                out.push(Finding::new(
                    Rule::BadAllow,
                    self.path,
                    a.line,
                    format!(
                        "allow({}) without a reason — write `// lint: allow({}) — <why>`",
                        a.rule, a.rule
                    ),
                ));
            }
        }
        out
    }
}

/// Extract allow annotations from comment tokens. Recognized shape inside
/// any `//` or `/* */` comment: `lint: allow(<rule>)` followed by a
/// separator (`—`, `-`, `:`) and a non-empty reason.
fn scan_allows(src: &[u8], tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        let text = String::from_utf8_lossy(t.text(src));
        // Only a comment that *starts* with `lint:` (after the comment
        // sigils) is an annotation — prose *quoting* the syntax, like
        // this sentence or docs/LINTS.md, must not register.
        let body = text.trim_start_matches(['/', '!', '*']).trim_start();
        if !body.starts_with("lint:") {
            continue;
        }
        let rest = body["lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            // `lint:` without `allow(` — treat as malformed annotation so
            // typos like `lint: alow(...)` surface instead of silently
            // doing nothing.
            out.push(Allow {
                rule: rest.split_whitespace().next().unwrap_or("?").to_string(),
                line: t.line,
                has_reason: false,
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            out.push(Allow {
                rule: args.to_string(),
                line: t.line,
                has_reason: false,
            });
            continue;
        };
        let rule = args[..close].trim().to_string();
        let reason = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        out.push(Allow {
            rule,
            line: t.line,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// Locate `#[cfg(test)]` / `#[test]` items and return their byte ranges.
///
/// An attribute is test-gating when it contains the identifier `test`
/// nested only under `cfg` / `any` / `all` (so `#[cfg(not(test))]` does
/// NOT gate — that code compiles into the shipped binary and must stay
/// lintable). After a gating attribute, any further attributes are
/// skipped, then the item's extent is the matching `}` of its first
/// top-level `{`, or the first top-level `;` for braceless items.
fn scan_test_ranges(src: &[u8], tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].punct(src) == Some(b'#') && punct_at(src, tokens, i + 1) == Some(b'[') {
            let (is_test, after) = attr_is_test(src, tokens, i + 1);
            if is_test {
                let start = tokens[i].lo;
                let mut j = after;
                // Skip any stacked attributes and doc comments.
                loop {
                    if punct_at(src, tokens, j) == Some(b'#')
                        && punct_at(src, tokens, j + 1) == Some(b'[')
                    {
                        let (_, next) = attr_is_test(src, tokens, j + 1);
                        j = next;
                    } else if tokens.get(j).is_some_and(|t| {
                        t.kind == TokKind::LineComment || t.kind == TokKind::BlockComment
                    }) {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let end_idx = item_end(src, tokens, j);
                let end = tokens.get(end_idx).map(|t| t.hi).unwrap_or(src.len());
                out.push((start, end));
                i = end_idx + 1;
                continue;
            }
            i = after;
            continue;
        }
        i += 1;
    }
    out
}

fn punct_at(src: &[u8], tokens: &[Token], idx: usize) -> Option<u8> {
    tokens.get(idx).and_then(|t| t.punct(src))
}

/// `tokens[open]` is the `[` of an attribute. Returns (gates-test-code,
/// index just past the closing `]`). Malformed attributes (no closing
/// bracket) consume to end of input.
fn attr_is_test(src: &[u8], tokens: &[Token], open: usize) -> (bool, usize) {
    let mut depth = 0i32;
    // Stack of wrapper idents: the ident preceding each `(` we are inside.
    let mut wrappers: Vec<Vec<u8>> = Vec::new();
    let mut prev_ident: Option<Vec<u8>> = None;
    let mut is_test = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.punct(src) {
            Some(b'[') => depth += 1,
            Some(b']') => {
                depth -= 1;
                if depth == 0 {
                    return (is_test, j + 1);
                }
            }
            Some(b'(') => {
                wrappers.push(prev_ident.take().unwrap_or_default());
            }
            Some(b')') => {
                wrappers.pop();
            }
            _ => {}
        }
        if t.kind == TokKind::Ident {
            let text = t.text(src);
            if text == b"test"
                && !wrappers.is_empty()
                && wrappers
                    .iter()
                    .all(|w| w == b"cfg" || w == b"any" || w == b"all")
            {
                is_test = true;
            }
            if text == b"test" && wrappers.is_empty() {
                // `#[test]` / `#[tokio::test]`-shaped: bare ident.
                is_test = true;
            }
            prev_ident = Some(text.to_vec());
        } else {
            prev_ident = None;
        }
        j += 1;
    }
    (is_test, tokens.len())
}

/// Index of the token that ends the item starting at `start`: the `}`
/// matching the first top-level `{`, or the first top-level `;`.
/// Top-level means outside all `()`, `[]`, `<`-free (angle brackets are
/// ignored — they never wrap `{` or `;` in item position).
fn item_end(src: &[u8], tokens: &[Token], start: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut saw_brace = false;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].punct(src) {
            Some(b'(') => paren += 1,
            Some(b')') => paren -= 1,
            Some(b'[') => bracket += 1,
            Some(b']') => bracket -= 1,
            Some(b'{') => {
                brace += 1;
                saw_brace = true;
            }
            Some(b'}') => {
                brace -= 1;
                if saw_brace && brace == 0 {
                    return j;
                }
            }
            Some(b';') if !saw_brace && paren == 0 && bracket == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file<'a>(src: &'a str) -> SourceFile<'a> {
        SourceFile::new("x.rs", src.as_bytes())
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn also_live() {}";
        let f = file(src);
        let idx_of = |word: &str| {
            f.tokens
                .iter()
                .position(|t| t.is_ident(src.as_bytes(), word))
                .unwrap()
        };
        assert!(!f.in_test_code(idx_of("live")));
        assert!(f.in_test_code(idx_of("helper")));
        assert!(!f.in_test_code(idx_of("also_live")));
    }

    #[test]
    fn cfg_not_test_is_not_skipped() {
        let src = "#[cfg(not(test))]\nfn shipped() {}";
        let f = file(src);
        let idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident(src.as_bytes(), "shipped"))
            .unwrap();
        assert!(!f.in_test_code(idx));
    }

    #[test]
    fn cfg_any_test_is_skipped() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn gated() {}";
        let f = file(src);
        let idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident(src.as_bytes(), "gated"))
            .unwrap();
        assert!(f.in_test_code(idx));
    }

    #[test]
    fn test_attr_with_stacked_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() { body(); }\nfn live() {}";
        let f = file(src);
        let body = f
            .tokens
            .iter()
            .position(|t| t.is_ident(src.as_bytes(), "body"))
            .unwrap();
        let live = f
            .tokens
            .iter()
            .position(|t| t.is_ident(src.as_bytes(), "live"))
            .unwrap();
        assert!(f.in_test_code(body));
        assert!(!f.in_test_code(live));
    }

    #[test]
    fn allow_parsing() {
        let src = "\
let a = 1; // lint: allow(determinism) — telemetry side channel
let b = 2; // lint: allow(determinism)
// lint: allow(nonsense) — whatever
// lint: allow(panic-freedom): colon separator works too
";
        let f = file(src);
        assert!(f.is_allowed(Rule::Determinism, 1));
        assert!(f.is_allowed(Rule::Determinism, 2)); // covers next line too
        assert!(!f.is_allowed(Rule::Determinism, 3));
        assert!(f.is_allowed(Rule::PanicFreedom, 4));
        let bad = f.bad_allow_findings();
        assert_eq!(bad.len(), 2); // reason-less line 2 + unknown rule line 3
        assert!(bad
            .iter()
            .any(|b| b.line == 2 && b.message.contains("without a reason")));
        assert!(bad
            .iter()
            .any(|b| b.line == 3 && b.message.contains("unknown rule")));
    }

    #[test]
    fn reasonless_allow_silences_nothing() {
        let f = file("x(); // lint: allow(determinism)\n");
        assert!(!f.is_allowed(Rule::Determinism, 1));
    }
}
