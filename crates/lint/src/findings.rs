//! Finding model and machine-readable rendering.

/// The rule that produced a finding. Names here are the same strings the
/// allow-annotation contract uses: `// lint: allow(<rule>) — <reason>`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    Determinism,
    LockOrder,
    PanicFreedom,
    Hygiene,
    DocLinks,
    /// Meta-rule: a malformed or reason-less allow annotation. Cannot
    /// itself be allowed.
    BadAllow,
    /// Meta-rule: lint.toml or a source file could not be read/parsed.
    Internal,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::LockOrder => "lock-order",
            Rule::PanicFreedom => "panic-freedom",
            Rule::Hygiene => "hygiene",
            Rule::DocLinks => "doc-links",
            Rule::BadAllow => "bad-allow",
            Rule::Internal => "internal",
        }
    }

    /// Rules an allow annotation may name. `bad-allow` and `internal` are
    /// deliberately absent: a violation in the silencing machinery itself
    /// must stay visible.
    pub fn allowable(name: &str) -> bool {
        matches!(
            name,
            "determinism" | "lock-order" | "panic-freedom" | "hygiene" | "doc-links"
        )
    }
}

/// One violation at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(rule: Rule, path: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }

    /// One finding as a JSON object (the machine-readable output format:
    /// one object per line on stdout).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":{},"file":{},"line":{},"message":{}}}"#,
            json_str(self.rule.name()),
            json_str(&self.path),
            self.line,
            json_str(&self.message)
        )
    }

    /// `path:line: [rule] message` for humans.
    pub fn to_text(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Minimal JSON string escaping (the only JSON this crate emits).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic report order: path, then line, then rule name.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.name(), a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule.name(),
            b.message.as_str(),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let f = Finding::new(Rule::Determinism, "a/b.rs", 3, "uses \"Instant::now\"\n");
        assert_eq!(
            f.to_json(),
            r#"{"rule":"determinism","file":"a/b.rs","line":3,"message":"uses \"Instant::now\"\n"}"#
        );
    }

    #[test]
    fn meta_rules_not_allowable() {
        assert!(Rule::allowable("determinism"));
        assert!(!Rule::allowable("bad-allow"));
        assert!(!Rule::allowable("internal"));
        assert!(!Rule::allowable("everything"));
    }
}
