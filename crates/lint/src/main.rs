//! CLI for `caffeine-lint`.
//!
//! ```text
//! cargo run -p caffeine-lint                  # lint the whole workspace
//! cargo run -p caffeine-lint -- --format text # human-readable findings
//! cargo run -p caffeine-lint -- --file F --pretend crates/core/src/x.rs
//! cargo run -p caffeine-lint -- --locks       # dump nested-lock pairs
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. Findings go to
//! stdout — one JSON object per line by default (`--format json`), or
//! `path:line: [rule] message` with `--format text`. The summary line
//! goes to stderr either way.

use std::path::PathBuf;
use std::process::ExitCode;

use caffeine_lint::findings::Finding;

struct Args {
    root: PathBuf,
    format: Format,
    /// (file-on-disk, workspace-relative pretend path) pairs; empty means
    /// lint the whole workspace.
    files: Vec<(PathBuf, String)>,
    locks: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Json,
    Text,
}

fn usage() -> String {
    "usage: caffeine-lint [--root DIR] [--format json|text] [--locks] \
     [--file PATH [--pretend WORKSPACE_REL_PATH]]..."
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        format: Format::Json,
        files: Vec::new(),
        locks: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or_else(usage)?);
            }
            "--format" => {
                args.format = match it.next().ok_or_else(usage)?.as_str() {
                    "json" => Format::Json,
                    "text" => Format::Text,
                    other => return Err(format!("unknown format `{other}`; {}", usage())),
                }
            }
            "--file" => {
                let path = PathBuf::from(it.next().ok_or_else(usage)?);
                let pretend = caffeine_lint::workspace_rel(&path, &args.root)
                    .unwrap_or_else(|| path.to_string_lossy().into_owned());
                args.files.push((path, pretend));
            }
            "--pretend" => {
                let pretend = it.next().ok_or_else(usage)?;
                let last = args
                    .files
                    .last_mut()
                    .ok_or_else(|| format!("--pretend must follow --file; {}", usage()))?;
                last.1 = pretend;
            }
            "--locks" => args.locks = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`; {}", usage())),
        }
    }
    Ok(args)
}

/// Default workspace root: two levels above this crate's manifest dir
/// (compiled in, so `cargo run -p caffeine-lint` works from anywhere in
/// the workspace).
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("caffeine-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = match caffeine_lint::load_config(&args.root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("caffeine-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.locks {
        return dump_locks(&args, &cfg);
    }

    let findings: Vec<Finding> = if args.files.is_empty() {
        caffeine_lint::run_workspace(&args.root, &cfg)
    } else {
        let mut out = Vec::new();
        for (path, pretend) in &args.files {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("caffeine-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            if pretend.ends_with(".md") {
                out.extend(caffeine_lint::check_markdown(&args.root, pretend, &bytes));
            } else {
                out.extend(caffeine_lint::check_rust_source(pretend, &bytes, &cfg));
            }
        }
        caffeine_lint::findings::sort(&mut out);
        out
    };

    for f in &findings {
        match args.format {
            Format::Json => println!("{}", f.to_json()),
            Format::Text => println!("{}", f.to_text()),
        }
    }
    if findings.is_empty() {
        eprintln!("caffeine-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("caffeine-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Print every nested-lock acquisition event in the covered files —
/// the maintenance view for keeping `[lock_order] order` truthful.
fn dump_locks(args: &Args, cfg: &caffeine_lint::config::Config) -> ExitCode {
    for rel in &cfg.lock_order_files {
        let path = args.root.join(rel);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("caffeine-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        for ev in caffeine_lint::lock_events(rel, &bytes, cfg) {
            println!(
                "{rel}:{line}: fn {function}: holds `{outer}` -> acquires `{inner}`",
                line = ev.line,
                function = ev.function,
                outer = ev.outer,
                inner = ev.inner,
            );
        }
    }
    ExitCode::SUCCESS
}
