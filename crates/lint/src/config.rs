//! `lint.toml` — declarative workspace invariants.
//!
//! Parsed by a deliberately tiny TOML-subset reader (sections, string
//! values, string arrays over one or more lines, `#` comments) in the same
//! hand-rolled spirit as the workspace's serde and HTTP stand-ins. The
//! subset is exactly what the config needs; anything else is a parse
//! error, never a panic.

use std::collections::BTreeMap;

/// Parsed configuration. Field names mirror the `lint.toml` sections.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes (workspace-relative, `/`-separated) the walker skips.
    pub exclude: Vec<String>,
    /// Crate names (directory names under `crates/`) whose `src/` trees
    /// the determinism rule covers.
    pub determinism_crates: Vec<String>,
    /// Workspace-relative files the panic-freedom rule covers.
    pub panic_freedom_files: Vec<String>,
    /// Workspace-relative files the lock-order rule covers.
    pub lock_order_files: Vec<String>,
    /// Declared total acquisition order: a lock earlier in this list must
    /// be acquired before any later one when both are held.
    pub lock_order: Vec<String>,
    /// Raw extracted lock name -> canonical node in `lock_order` (used
    /// when the same mutex is reached through differently-named paths).
    pub lock_aliases: BTreeMap<String, String>,
    /// Markdown roots (files, or directories scanned for `*.md`) whose
    /// relative links must resolve.
    pub doc_roots: Vec<String>,
}

/// One parse failure with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strip a trailing `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'\\' if in_str => {}
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse one `"quoted string"` starting at `s` (already trimmed); returns
/// (value, rest-after-closing-quote).
fn parse_string(s: &str, line_no: u32) -> Result<(String, &str), ConfigError> {
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| err(line_no, format!("expected string, found {s:?}")))?;
    let end = rest
        .find('"')
        .ok_or_else(|| err(line_no, "unterminated string"))?;
    Ok((rest[..end].to_string(), &rest[end + 1..]))
}

/// Parser state: values land in `Config` keyed by (section, key).
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated section header"))?;
            section = name.trim().to_string();
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| err(line_no, format!("expected `key = value`, found {line:?}")))?;
        let key = line[..eq].trim().trim_matches('"').to_string();
        let mut value = line[eq + 1..].trim().to_string();
        // Multiline arrays: keep consuming lines until brackets balance.
        if value.starts_with('[') {
            while !array_closed(&value) {
                match lines.next() {
                    Some((_, more)) => {
                        value.push(' ');
                        value.push_str(strip_comment(more).trim());
                    }
                    None => return Err(err(line_no, "unterminated array")),
                }
            }
        }
        apply(&mut cfg, &section, &key, value.trim(), line_no)?;
    }
    Ok(cfg)
}

/// True when the accumulated array literal has its closing bracket
/// (brackets inside quoted strings don't count).
fn array_closed(s: &str) -> bool {
    let mut in_str = false;
    for b in s.bytes() {
        match b {
            b'"' => in_str = !in_str,
            b']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

fn parse_string_array(s: &str, line_no: u32) -> Result<Vec<String>, ConfigError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.trim_end().strip_suffix(']'))
        .ok_or_else(|| err(line_no, format!("expected array, found {s:?}")))?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let (value, after) = parse_string(rest, line_no)?;
        out.push(value);
        rest = after.trim_start();
        if let Some(after_comma) = rest.strip_prefix(',') {
            rest = after_comma.trim_start();
        } else if !rest.is_empty() {
            return Err(err(
                line_no,
                format!("expected `,` in array, found {rest:?}"),
            ));
        }
    }
    Ok(out)
}

fn apply(
    cfg: &mut Config,
    section: &str,
    key: &str,
    value: &str,
    line_no: u32,
) -> Result<(), ConfigError> {
    let array = |v: &str| parse_string_array(v, line_no);
    match (section, key) {
        ("workspace", "exclude") => cfg.exclude = array(value)?,
        ("determinism", "crates") => cfg.determinism_crates = array(value)?,
        ("panic_freedom", "files") => cfg.panic_freedom_files = array(value)?,
        ("lock_order", "files") => cfg.lock_order_files = array(value)?,
        ("lock_order", "order") => cfg.lock_order = array(value)?,
        ("lock_order.aliases", raw) => {
            let (canon, rest) = parse_string(value, line_no)?;
            if !rest.trim().is_empty() {
                return Err(err(line_no, format!("trailing input {rest:?}")));
            }
            cfg.lock_aliases.insert(raw.to_string(), canon);
        }
        ("doc_links", "roots") => cfg.doc_roots = array(value)?,
        _ => {
            return Err(err(
                line_no,
                format!("unknown configuration key [{section}] {key}"),
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = parse(
            r#"
# comment
[workspace]
exclude = ["vendor", "target"]

[determinism]
crates = [
    "core", # inline comment
    "doe",
]

[lock_order]
files = ["crates/serve/src/jobs.rs"]
order = ["a", "b"]

[lock_order.aliases]
"Job.outcome" = "outcome"

[doc_links]
roots = ["README.md", "docs"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude, vec!["vendor", "target"]);
        assert_eq!(cfg.determinism_crates, vec!["core", "doe"]);
        assert_eq!(cfg.lock_order, vec!["a", "b"]);
        assert_eq!(cfg.lock_aliases["Job.outcome"], "outcome");
        assert_eq!(cfg.doc_roots, vec!["README.md", "docs"]);
    }

    #[test]
    fn rejects_unknown_keys() {
        let e = parse("[nope]\nx = \"y\"\n").unwrap_err();
        assert!(e.message.contains("unknown configuration key"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_unterminated_array() {
        assert!(parse("[workspace]\nexclude = [\"a\",").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let cfg = parse("[workspace]\nexclude = [\"a#b\"]\n").unwrap();
        assert_eq!(cfg.exclude, vec!["a#b"]);
    }
}
