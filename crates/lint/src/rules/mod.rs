//! The rule set. Each rule is a pure function from a lexed source file
//! (plus config) to findings; `crate::check_rust_source` decides which
//! rules a given path is subject to.

pub mod determinism;
pub mod doc_links;
pub mod hygiene;
pub mod lock_order;
pub mod panic_freedom;
