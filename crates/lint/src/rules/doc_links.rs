//! Rule `doc-links`: relative markdown links must resolve.
//!
//! The docs tree (README, docs/*.md) cross-references heavily; a renamed
//! file silently strands every inbound link. This rule extracts inline
//! `[text](target)` links (images included), skips external schemes and
//! pure `#anchor` links, ignores fenced code blocks, and checks that each
//! relative target exists on disk (anchors stripped). Absolute paths are
//! flagged too — they break the moment the repo is cloned elsewhere.

use std::path::{Component, Path, PathBuf};

use crate::findings::{Finding, Rule};

pub fn check(root: &Path, rel_path: &str, bytes: &[u8], out: &mut Vec<Finding>) {
    let text = String::from_utf8_lossy(bytes);
    let dir = Path::new(rel_path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let mut in_fence = false;
    let mut allows: Vec<u32> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        // Allow annotations ride in HTML comments in markdown:
        // <!-- lint: allow(doc-links) — reason -->
        if let Some(pos) = line.find("lint: allow(doc-links)") {
            let rest = &line[pos + "lint: allow(doc-links)".len()..];
            let reason = rest
                .trim_start()
                .trim_start_matches(['—', '–', '-', ':'])
                .trim_end_matches("-->")
                .trim();
            if !reason.is_empty() {
                allows.push(line_no);
            } else {
                out.push(Finding::new(
                    Rule::BadAllow,
                    rel_path,
                    line_no,
                    "allow(doc-links) without a reason — write \
                     `<!-- lint: allow(doc-links) — <why> -->`",
                ));
            }
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        for target in extract_links(line) {
            if let Some(f) = check_target(root, &dir, rel_path, line_no, target) {
                if !allows.contains(&line_no) && !allows.contains(&line_no.saturating_sub(1)) {
                    out.push(f);
                }
            }
        }
    }
}

/// Targets of `[text](target)` on one line, inline-code spans excluded.
fn extract_links(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut in_code = false;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'`' => in_code = !in_code,
            b']' if !in_code && bytes.get(i + 1) == Some(&b'(') => {
                let start = i + 2;
                if let Some(rel_end) = line.get(start..).and_then(|s| s.find(')')) {
                    out.push(&line[start..start + rel_end]);
                    i = start + rel_end;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

fn check_target(
    root: &Path,
    dir: &Path,
    rel_path: &str,
    line_no: u32,
    raw: &str,
) -> Option<Finding> {
    // Titles: [x](path "title") — take the path part.
    let target = raw.split_whitespace().next().unwrap_or("");
    if target.is_empty()
        || target.contains("://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
    {
        return None;
    }
    if target.starts_with('/') {
        return Some(Finding::new(
            Rule::DocLinks,
            rel_path,
            line_no,
            format!("absolute link `{target}` — use a path relative to this file"),
        ));
    }
    let path_part = target.split('#').next().unwrap_or(target);
    let joined = dir.join(path_part);
    let normalized = normalize(&joined);
    if !root.join(&normalized).exists() {
        return Some(Finding::new(
            Rule::DocLinks,
            rel_path,
            line_no,
            format!(
                "broken relative link `{target}` — `{}` does not exist",
                normalized.display()
            ),
        ));
    }
    None
}

/// Collapse `.` and `..` without touching the filesystem.
fn normalize(p: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in p.components() {
        match c {
            Component::CurDir => {}
            Component::ParentDir => {
                out.pop();
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, text: &str) -> Vec<Finding> {
        // The real workspace root: these tests link against files that
        // genuinely exist in the repo.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let mut out = Vec::new();
        check(&root, rel, text.as_bytes(), &mut out);
        out
    }

    #[test]
    fn existing_link_passes() {
        assert!(run(
            "docs/X.md",
            "see [arch](ARCHITECTURE.md) and [readme](../README.md)"
        )
        .is_empty());
    }

    #[test]
    fn broken_link_fires() {
        let out = run("docs/X.md", "see [gone](NOT_A_FILE.md)");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("NOT_A_FILE.md"));
    }

    #[test]
    fn anchors_and_external_skipped() {
        let text = "[a](#section) [b](https://example.com/x.md) [c](mailto:x@y.z)";
        assert!(run("README.md", text).is_empty());
    }

    #[test]
    fn anchor_on_existing_file_passes() {
        assert!(run("docs/X.md", "[a](ARCHITECTURE.md#overview)").is_empty());
    }

    #[test]
    fn fenced_code_blocks_skipped() {
        let text = "```\n[not a link](nope.md)\n```\n";
        assert!(run("README.md", text).is_empty());
    }

    #[test]
    fn absolute_link_fires() {
        let out = run("README.md", "[x](/etc/passwd)");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("absolute"));
    }

    #[test]
    fn allow_comment_silences() {
        let text =
            "<!-- lint: allow(doc-links) — generated at build time -->\n[x](BENCH_generated.json)";
        assert!(run("README.md", text).is_empty());
    }
}
