//! Rule `lock-order`: nested mutex acquisitions must follow the order
//! declared in `lint.toml`.
//!
//! PR 9's chaos runs flushed lock-discipline bugs out *dynamically*; this
//! rule catches the same class statically, per function, in milliseconds.
//! For every function in a covered file it extracts `.lock()` /
//! `.plock()` acquisition sites (the latter is serve's poison-recovering
//! wrapper; see `crates/serve/src/sync.rs`), models guard lifetimes (a `let`/`if let`/`while let`/`match`
//! binding holds to the end of its enclosing block; a statement-temporary
//! `x.lock().…;` holds to the end of its statement), and on every nested
//! acquisition checks the ordered pair against `[lock_order] order`:
//!
//! * both locks declared, inner earlier than outer → **violation**
//!   (a cycle candidate: some other thread may nest them the other way);
//! * a pair with an undeclared lock → **undeclared pair** (the order list
//!   is the single source of truth; extend it deliberately);
//! * same lock twice → **nested self-acquisition** (self-deadlock with
//!   `std::sync::Mutex`, which is not reentrant).
//!
//! Lock identity is `ImplType.field` for `self.field.lock()` inside an
//! `impl` block and the bare receiver field otherwise;
//! `[lock_order.aliases]` folds differently-spelled paths to one node
//! (e.g. `entry.outcome.lock()` reached from the manager vs.
//! `self.outcome.lock()` inside `impl Job`). Known over-approximations
//! (guards released early via `drop`, locks inside `thread::spawn`
//! closures attributed to the spawning function) are documented in
//! docs/LINTS.md; the fix is an allow annotation with the reason.

use crate::config::Config;
use crate::findings::{Finding, Rule};
use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

/// One observed nested acquisition: `inner` taken while `outer` held.
#[derive(Debug, Clone)]
pub struct PairEvent {
    pub outer: String,
    pub inner: String,
    pub line: u32,
    pub function: String,
}

/// All nested-acquisition events in a file (for `--locks` and the rule).
pub fn pairs(sf: &SourceFile<'_>, cfg: &Config) -> Vec<PairEvent> {
    let src = sf.bytes;
    let toks: Vec<&Token> = sf
        .tokens
        .iter()
        .filter(|t| t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment)
        .collect();
    let impl_ctx = impl_context(src, &toks);
    let mut events = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        if toks[k].is_ident(src, "fn") && !sf.byte_in_test(toks[k].lo) {
            if let Some((name, body_lo, body_hi)) = fn_body(src, &toks, k) {
                analyze_body(
                    src,
                    &toks,
                    &impl_ctx,
                    cfg,
                    &name,
                    body_lo,
                    body_hi,
                    &mut events,
                );
                k = body_hi + 1;
                continue;
            }
        }
        k += 1;
    }
    events
}

pub fn check(sf: &SourceFile<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    let order = &cfg.lock_order;
    let pos = |name: &str| order.iter().position(|o| o == name);
    let mut seen = std::collections::BTreeSet::new();
    for ev in pairs(sf, cfg) {
        let message = if ev.outer == ev.inner {
            format!(
                "nested acquisition of `{}` in `{}` — std::sync::Mutex is not \
                 reentrant; this self-deadlocks",
                ev.inner, ev.function
            )
        } else {
            match (pos(&ev.outer), pos(&ev.inner)) {
                (Some(po), Some(pi)) if pi < po => format!(
                    "lock order violation in `{}`: `{}` acquired while holding `{}`, \
                     but lint.toml declares `{}` before `{}`",
                    ev.function, ev.inner, ev.outer, ev.inner, ev.outer
                ),
                (Some(_), Some(_)) => continue, // declared and well-ordered
                _ => format!(
                    "undeclared nested lock pair in `{}`: `{}` acquired while holding \
                     `{}` — declare both in lint.toml [lock_order] order",
                    ev.function, ev.inner, ev.outer
                ),
            }
        };
        // One finding per (line, message); the same nesting inside a loop
        // would otherwise repeat.
        if seen.insert((ev.line, message.clone())) {
            out.extend(sf.filtered(Finding::new(Rule::LockOrder, sf.path, ev.line, message)));
        }
    }
}

/// For each dense-token index, the `impl` self-type in scope (empty when
/// outside any impl block).
fn impl_context(src: &[u8], toks: &[&Token]) -> Vec<String> {
    let mut ctx = vec![String::new(); toks.len()];
    let mut depth = 0i32;
    let mut stack: Vec<(String, i32)> = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        let t = toks[k];
        match t.punct(src) {
            Some(b'{') => depth += 1,
            Some(b'}') => {
                depth -= 1;
                while stack.last().is_some_and(|&(_, d)| depth < d) {
                    stack.pop();
                }
            }
            _ => {}
        }
        if t.is_ident(src, "impl") {
            if let Some((name, _open)) = impl_self_type(src, toks, k) {
                // In scope until the block opened after the header closes.
                stack.push((name, depth + 1));
            }
        }
        if let Some((name, _)) = stack.last() {
            ctx[k].clone_from(name);
        }
        k += 1;
    }
    ctx
}

/// From an `impl` keyword, the self-type name: idents outside `<…>` up to
/// the opening `{` (or `where`), taking the ident after `for` when
/// present (`impl Drop for TraceStore` → `TraceStore`).
fn impl_self_type(src: &[u8], toks: &[&Token], impl_k: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut names: Vec<Vec<u8>> = Vec::new();
    let mut after_for: Option<Vec<u8>> = None;
    let mut saw_for = false;
    let mut j = impl_k + 1;
    while j < toks.len() {
        let t = toks[j];
        match t.punct(src) {
            Some(b'<') => angle += 1,
            Some(b'>') => angle = (angle - 1).max(0),
            Some(b'{') => {
                let name = after_for.or_else(|| names.first().cloned())?;
                return Some((String::from_utf8_lossy(&name).into_owned(), j));
            }
            Some(b';') => return None, // `impl Trait for Type;` — not a block
            _ => {}
        }
        if angle == 0 && t.kind == TokKind::Ident {
            if t.is_ident(src, "where") {
                // Bounds follow; the self type is already decided.
                let name = after_for.or_else(|| names.first().cloned())?;
                // Find the `{` to report scope start.
                let mut m = j;
                while m < toks.len() {
                    if toks[m].punct(src) == Some(b'{') {
                        return Some((String::from_utf8_lossy(&name).into_owned(), m));
                    }
                    m += 1;
                }
                return None;
            }
            if t.is_ident(src, "for") {
                saw_for = true;
            } else if saw_for && after_for.is_none() {
                after_for = Some(t.text(src).to_vec());
            } else {
                names.push(t.text(src).to_vec());
            }
        }
        j += 1;
    }
    None
}

/// From a `fn` keyword at `k`: (name, dense index of body `{`, dense
/// index of matching `}`). `None` for braceless trait declarations.
fn fn_body(src: &[u8], toks: &[&Token], k: usize) -> Option<(String, usize, usize)> {
    let name_tok = toks.get(k + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = String::from_utf8_lossy(name_tok.text(src)).into_owned();
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = k + 2;
    let open = loop {
        let t = toks.get(j)?;
        match t.punct(src) {
            Some(b'(') => paren += 1,
            Some(b')') => paren -= 1,
            Some(b'[') => bracket += 1,
            Some(b']') => bracket -= 1,
            Some(b'{') if paren == 0 && bracket == 0 => break j,
            Some(b';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        j += 1;
    };
    let mut depth = 0i32;
    let mut m = open;
    while m < toks.len() {
        match toks[m].punct(src) {
            Some(b'{') => depth += 1,
            Some(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((name, open, m));
                }
            }
            _ => {}
        }
        m += 1;
    }
    Some((name, open, toks.len().saturating_sub(1)))
}

#[derive(Debug)]
struct Held {
    name: String,
    /// Guard bound by `let`/`if let`/`match`: lives until its block
    /// closes. Otherwise a statement temporary: dies at the next `;`.
    scoped: bool,
    depth: i32,
}

#[allow(clippy::too_many_arguments)]
fn analyze_body(
    src: &[u8],
    toks: &[&Token],
    impl_ctx: &[String],
    cfg: &Config,
    fn_name: &str,
    body_lo: usize,
    body_hi: usize,
    events: &mut Vec<PairEvent>,
) {
    let mut depth = 0i32;
    let mut held: Vec<Held> = Vec::new();
    let mut stmt_scoped = false;
    let mut k = body_lo;
    while k <= body_hi && k < toks.len() {
        let t = toks[k];
        match t.punct(src) {
            Some(b'{') => {
                depth += 1;
                stmt_scoped = false;
            }
            Some(b'}') => {
                depth -= 1;
                held.retain(|h| !(h.scoped && h.depth > depth));
                stmt_scoped = false;
            }
            Some(b';') => {
                held.retain(|h| h.scoped);
                stmt_scoped = false;
            }
            _ => {}
        }
        if t.kind == TokKind::Ident {
            let text = t.text(src);
            if text == b"let" || text == b"match" || text == b"if" || text == b"while" {
                stmt_scoped = true;
            }
            // Nested `fn` items do not execute inline: skip their bodies.
            if text == b"fn" && k > body_lo {
                if let Some((_, _, inner_hi)) = fn_body(src, toks, k) {
                    k = inner_hi + 1;
                    continue;
                }
            }
            if (text == b"lock" || text == b"plock")
                && k >= 2
                && toks[k - 1].punct(src) == Some(b'.')
                && toks.get(k + 1).and_then(|t| t.punct(src)) == Some(b'(')
                && toks.get(k + 2).and_then(|t| t.punct(src)) == Some(b')')
            {
                let name = lock_name(src, toks, impl_ctx, k);
                let canon = cfg.lock_aliases.get(&name).cloned().unwrap_or(name);
                for h in &held {
                    events.push(PairEvent {
                        outer: h.name.clone(),
                        inner: canon.clone(),
                        line: t.line,
                        function: fn_name.to_string(),
                    });
                }
                held.push(Held {
                    name: canon,
                    scoped: stmt_scoped,
                    depth,
                });
            }
        }
        k += 1;
    }
}

/// Identity of the lock acquired at dense index `k` (the `lock` ident):
/// `ImplType.field` for `self.field.lock()` in an impl, the bare field
/// for `other.field.lock()`, `<expr>` when the receiver is not an ident.
fn lock_name(src: &[u8], toks: &[&Token], impl_ctx: &[String], k: usize) -> String {
    let recv = toks.get(k.wrapping_sub(2));
    let Some(recv) = recv.filter(|t| t.kind == TokKind::Ident) else {
        return "<expr>".to_string();
    };
    let field = String::from_utf8_lossy(recv.text(src)).into_owned();
    if field == "self" {
        // Direct `self.lock()` — a type that *is* a lock wrapper.
        let ty = impl_ctx.get(k).cloned().unwrap_or_default();
        return if ty.is_empty() { field } else { ty };
    }
    let self_qualified =
        k >= 4 && toks[k - 3].punct(src) == Some(b'.') && toks[k - 4].is_ident(src, "self");
    if self_qualified {
        let ty = impl_ctx.get(k).cloned().unwrap_or_default();
        if !ty.is_empty() {
            return format!("{ty}.{field}");
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(order: &[&str]) -> Config {
        Config {
            lock_order: order.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        }
    }

    fn run(src: &str, cfg: &Config) -> Vec<Finding> {
        let sf = SourceFile::new("crates/serve/src/jobs.rs", src.as_bytes());
        let mut out = Vec::new();
        check(&sf, cfg, &mut out);
        out
    }

    const NESTED: &str = "
impl Scheduler {
    fn admit(&self) {
        let st = self.state.lock().unwrap_or_default();
        entry.outcome.lock().set(1);
    }
}";

    #[test]
    fn ordered_pair_is_clean() {
        assert!(run(NESTED, &cfg(&["Scheduler.state", "outcome"])).is_empty());
    }

    #[test]
    fn reversed_order_is_violation() {
        let out = run(NESTED, &cfg(&["outcome", "Scheduler.state"]));
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("lock order violation"));
    }

    #[test]
    fn undeclared_pair_flagged() {
        let out = run(NESTED, &cfg(&["Scheduler.state"]));
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("undeclared nested lock pair"));
    }

    #[test]
    fn sequential_statement_temporaries_do_not_pair() {
        let src = "
fn f(a: M, b: M) {
    a.lock().touch();
    b.lock().touch();
}";
        assert!(run(src, &cfg(&[])).is_empty());
    }

    #[test]
    fn guard_released_by_block_end() {
        let src = "
fn f(s: &S) {
    {
        let g = s.first.lock();
        g.touch();
    }
    let h = s.second.lock();
}";
        assert!(run(src, &cfg(&[])).is_empty());
    }

    #[test]
    fn self_nesting_flagged() {
        let src = "
impl Hub {
    fn f(&self) {
        let a = self.state.lock();
        let b = self.state.lock();
    }
}";
        let out = run(src, &cfg(&["Hub.state"]));
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not reentrant"));
    }

    #[test]
    fn same_statement_chain_pairs() {
        let src = "fn f(a: M, b: M) { a.lock().push(b.lock().get()); }";
        let out = run(src, &cfg(&["b", "a"]));
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("violation"));
    }

    #[test]
    fn aliases_fold_names() {
        let mut c = cfg(&["Scheduler.state", "outcome"]);
        c.lock_aliases
            .insert("Job.outcome".to_string(), "outcome".to_string());
        let src = "
impl Job {
    fn f(&self) {
        let g = sched.state.lock();
        self.outcome.lock().set(1);
    }
}";
        // `sched.state` is bare `state` — undeclared; shows aliases and
        // qualification interplay.
        let out = run(src, &c);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("undeclared"), "{out:?}");
    }

    #[test]
    fn plock_counts_as_acquisition() {
        let src = "
impl Scheduler {
    fn admit(&self) {
        let st = self.state.plock();
        entry.outcome.plock().set(1);
    }
}";
        let out = run(src, &cfg(&["outcome", "Scheduler.state"]));
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("lock order violation"));
    }

    #[test]
    fn if_let_guard_held_through_block() {
        let src = "
impl S {
    fn f(&self) {
        if let Ok(g) = self.a.lock() {
            self.b.lock().touch();
        }
    }
}";
        let out = run(src, &cfg(&["S.b", "S.a"]));
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("violation"));
    }
}
