//! Rule `hygiene`: every crate's `lib.rs` carries `#![deny(unsafe_code)]`.
//!
//! The workspace is pure safe Rust by policy (the perf story is layout
//! and algorithms, not `unsafe`); this pin makes the policy survive
//! future contributors. The check is token-level — the attribute inside a
//! doc comment or string does not count.

use crate::findings::{Finding, Rule};
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub fn check(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let src = sf.bytes;
    let toks: Vec<&crate::lexer::Token> = sf
        .tokens
        .iter()
        .filter(|t| t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment)
        .collect();
    let pat: &[&str] = &["#", "!", "[", "deny", "(", "unsafe_code", ")", "]"];
    let found = toks.windows(pat.len()).any(|w| {
        w.iter().zip(pat).all(|(t, p)| match t.kind {
            TokKind::Ident => t.text(src) == p.as_bytes(),
            TokKind::Punct => t.text(src) == p.as_bytes(),
            _ => false,
        })
    });
    if !found {
        out.extend(sf.filtered(Finding::new(
            Rule::Hygiene,
            sf.path,
            1,
            "crate root is missing `#![deny(unsafe_code)]`",
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::new("crates/x/src/lib.rs", src.as_bytes());
        let mut out = Vec::new();
        check(&sf, &mut out);
        out
    }

    #[test]
    fn present_attr_passes() {
        assert!(findings("//! Docs.\n#![deny(unsafe_code)]\npub fn f() {}").is_empty());
    }

    #[test]
    fn missing_attr_fires() {
        let out = findings("pub fn f() {}");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn attr_in_doc_comment_does_not_count() {
        let out = findings("//! #![deny(unsafe_code)]\npub fn f() {}");
        assert_eq!(out.len(), 1);
    }
}
