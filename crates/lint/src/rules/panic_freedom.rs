//! Rule `panic-freedom`: no panicking constructs in the daemon's
//! request-path modules.
//!
//! A panic on a pool worker, the acceptor, or the SSE streamer thread
//! either kills that thread (silently degrading capacity) or poisons a
//! mutex every later request trips over. Request-path code must turn
//! failures into structured 4xx/5xx responses instead. The covered
//! modules are listed in `lint.toml` `[panic_freedom] files`; deliberate
//! panic sites (e.g. the single audited lock-poison escalation point)
//! carry an allow annotation with a reason.
//!
//! Flagged: `.unwrap()`, `.expect(…)`, `.unwrap_err()`, `.expect_err(…)`,
//! `panic!`, `unreachable!`, `todo!`, `unimplemented!`. Out of scope
//! (documented in docs/LINTS.md): slice indexing and arithmetic overflow,
//! plus `assert!` family — the codebase uses asserts for startup-time
//! invariants, not per-request paths.

use crate::findings::{Finding, Rule};
use crate::lexer::TokKind;
use crate::source::SourceFile;

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let src = sf.bytes;
    let idx: Vec<usize> = (0..sf.tokens.len())
        .filter(|&i| {
            let k = sf.tokens[i].kind;
            k != TokKind::LineComment && k != TokKind::BlockComment
        })
        .collect();
    for (k, &raw_i) in idx.iter().enumerate() {
        if sf.in_test_code(raw_i) {
            continue;
        }
        let t = &sf.tokens[raw_i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_punct = |ahead: usize| idx.get(k + ahead).and_then(|&i| sf.tokens[i].punct(src));
        let prev_punct = || (k > 0).then(|| sf.tokens[idx[k - 1]].punct(src)).flatten();
        let text = t.text(src);
        if PANIC_METHODS.iter().any(|m| text == m.as_bytes())
            && prev_punct() == Some(b'.')
            && next_punct(1) == Some(b'(')
        {
            let name = String::from_utf8_lossy(text);
            out.extend(sf.filtered(Finding::new(
                Rule::PanicFreedom,
                sf.path,
                t.line,
                format!(
                    ".{name}() in a request-path module — a panic here kills a worker \
                     thread or poisons a lock; return a structured error instead"
                ),
            )));
        }
        if PANIC_MACROS.iter().any(|m| text == m.as_bytes()) && next_punct(1) == Some(b'!') {
            let name = String::from_utf8_lossy(text);
            out.extend(sf.filtered(Finding::new(
                Rule::PanicFreedom,
                sf.path,
                t.line,
                format!(
                    "{name}! in a request-path module — a panic here kills a worker \
                     thread or poisons a lock; return a structured error instead"
                ),
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::new("crates/serve/src/handlers.rs", src.as_bytes());
        let mut out = Vec::new();
        check(&sf, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_fire() {
        let out = findings("fn f() { x.unwrap(); y.expect(\"m\"); }");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn panic_macros_fire() {
        let out = findings("fn f() { panic!(\"no\"); unreachable!(); todo!() }");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn fn_named_unwrap_without_dot_does_not_fire() {
        assert!(findings("fn unwrap() {}").is_empty());
    }

    #[test]
    fn test_module_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn allow_with_reason_silences() {
        let src = "fn f() {\n    // lint: allow(panic-freedom) — poisoned lock means a worker already panicked\n    m.lock().expect(\"poisoned\");\n}";
        assert!(findings(src).is_empty());
    }
}
