//! Rule `determinism`: no wall-clock reads and no hash-map iteration in
//! the deterministic engine crates.
//!
//! The engine's contract (bit-exact checkpoint/resume, bit-identical
//! results for 1..N threads) dies silently if generation code observes
//! `Instant::now`/`SystemTime` or iterates a `HashMap`/`HashSet` — the
//! randomized hash seed makes iteration order differ between *runs of the
//! same binary*, so a resumed run diverges from the original without any
//! test failing locally. This rule makes both whole classes un-writable
//! in `crates/{core,doe,linalg,posynomial,circuit,runtime}`.
//!
//! Map-iteration detection is name-based: idents bound or typed as
//! `HashMap`/`HashSet` (let bindings, struct fields, fn params — wrapper
//! types `Arc`/`Mutex`/`RwLock`/`Box`/`Option`/`Rc` are looked through)
//! are tracked per file, and `.iter()`/`.iter_mut()`/`.into_iter()`/
//! `.keys()`/`.values()`/`.values_mut()`/`.drain()`/`.retain()` calls or
//! `for … in [&[mut]] name` loops on a tracked name fire. Name tracking
//! keeps `Vec::drain` and friends out of the blast radius.

use std::collections::BTreeSet;

use crate::findings::{Finding, Rule};
use crate::lexer::TokKind;
use crate::source::SourceFile;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

const WRAPPERS: &[&str] = &[
    "Arc", "Mutex", "RwLock", "Box", "Option", "Rc", "RefCell", "Cell",
];

pub fn check(sf: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let src = sf.bytes;
    let toks = &sf.tokens;
    let map_names = collect_map_names(sf);

    let code = |i: usize| {
        toks.get(i)
            .filter(|t| t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment)
    };
    // Dense index of non-comment tokens so adjacency patterns skip
    // interleaved comments.
    let idx: Vec<usize> = (0..toks.len()).filter(|&i| code(i).is_some()).collect();
    let tok = |k: usize| idx.get(k).map(|&i| (&toks[i], i));

    let mut k = 0usize;
    while let Some((t, raw_i)) = tok(k) {
        if sf.in_test_code(raw_i) {
            k += 1;
            continue;
        }
        // SystemTime anywhere (even an import is a liability here).
        if t.is_ident(src, "SystemTime") {
            out.extend(sf.filtered(Finding::new(
                Rule::Determinism,
                sf.path,
                t.line,
                "SystemTime in a deterministic engine crate — wall-clock reads break \
                 bit-exact resume; route timing through a telemetry side channel",
            )));
        }
        // Instant :: now
        if t.is_ident(src, "Instant")
            && punct(sf, tok(k + 1)) == Some(b':')
            && punct(sf, tok(k + 2)) == Some(b':')
            && tok(k + 3).is_some_and(|(n, _)| n.is_ident(src, "now"))
        {
            out.extend(sf.filtered(Finding::new(
                Rule::Determinism,
                sf.path,
                t.line,
                "Instant::now() in a deterministic engine crate — wall-clock reads \
                 break bit-exact resume; route timing through a telemetry side channel",
            )));
        }
        // name . iter_method (
        if t.kind == TokKind::Ident && map_names.contains(t.text(src)) {
            if let (Some(b'.'), Some((m, _)), Some(b'(')) =
                (punct(sf, tok(k + 1)), tok(k + 2), punct(sf, tok(k + 3)))
            {
                if m.kind == TokKind::Ident {
                    let name = String::from_utf8_lossy(m.text(src)).into_owned();
                    if ITER_METHODS.contains(&name.as_str()) {
                        out.extend(sf.filtered(Finding::new(
                            Rule::Determinism,
                            sf.path,
                            t.line,
                            format!(
                                "iteration over hash-based `{}` (`.{}()`) — iteration \
                                 order varies per process and breaks bit-exact resume; \
                                 use a BTreeMap/Vec or sort first",
                                String::from_utf8_lossy(t.text(src)),
                                name
                            ),
                        )));
                    }
                }
            }
        }
        // for pat in [&[mut]] name {   (implicit IntoIterator on a map)
        if t.is_ident(src, "for") {
            if let Some(f) = check_for_loop(sf, &idx, k, &map_names) {
                out.extend(sf.filtered(f));
            }
        }
        k += 1;
    }
}

fn punct(sf: &SourceFile<'_>, t: Option<(&crate::lexer::Token, usize)>) -> Option<u8> {
    t.and_then(|(t, _)| t.punct(sf.bytes))
}

/// From a `for` keyword at dense index `k`, find the `in` at
/// paren/bracket depth 0 within a short window and test whether the
/// iterated expression is exactly a tracked map name (optionally behind
/// `&`/`&mut`), ending the loop header.
fn check_for_loop(
    sf: &SourceFile<'_>,
    idx: &[usize],
    k: usize,
    map_names: &BTreeSet<Vec<u8>>,
) -> Option<Finding> {
    let src = sf.bytes;
    let at = |j: usize| idx.get(j).map(|&i| &sf.tokens[i]);
    let mut depth = 0i32;
    let mut j = k + 1;
    // Bounded scan: loop patterns are short; 40 tokens is generous.
    let limit = k + 40;
    let in_pos = loop {
        let t = at(j)?;
        match t.punct(src) {
            Some(b'(') | Some(b'[') => depth += 1,
            Some(b')') | Some(b']') => depth -= 1,
            Some(b'{') => return None, // body reached without `in`
            _ => {}
        }
        if depth == 0 && t.is_ident(src, "in") {
            break j;
        }
        j += 1;
        if j > limit {
            return None;
        }
    };
    let mut j = in_pos + 1;
    if at(j).and_then(|t| t.punct(src)) == Some(b'&') {
        j += 1;
    }
    if at(j).is_some_and(|t| t.is_ident(src, "mut")) {
        j += 1;
    }
    let name = at(j)?;
    if name.kind != TokKind::Ident || !map_names.contains(name.text(src)) {
        return None;
    }
    // The loop body must start right after the name — otherwise this is
    // `map.something()` (caught by the method pattern) or a more complex
    // expression we don't judge.
    if at(j + 1).and_then(|t| t.punct(src)) != Some(b'{') {
        return None;
    }
    Some(Finding::new(
        Rule::Determinism,
        sf.path,
        name.line,
        format!(
            "`for … in` over hash-based `{}` — iteration order varies per process \
             and breaks bit-exact resume; use a BTreeMap/Vec or sort first",
            String::from_utf8_lossy(name.text(src))
        ),
    ))
}

/// Names bound or typed as `HashMap`/`HashSet` in this file:
/// `name: HashMap<…>`, `name: &mut HashMap<…>`, `name = HashMap::new()`,
/// `name: Arc<Mutex<HashMap<…>>>`, ….
fn collect_map_names(sf: &SourceFile<'_>) -> BTreeSet<Vec<u8>> {
    let src = sf.bytes;
    let toks: Vec<&crate::lexer::Token> = sf
        .tokens
        .iter()
        .filter(|t| t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment)
        .collect();
    let mut names = BTreeSet::new();
    for (k, t) in toks.iter().enumerate() {
        if !(t.is_ident(src, "HashMap") || t.is_ident(src, "HashSet")) {
            continue;
        }
        // Walk backwards over wrapper idents, `<`, `&`, `mut`, lifetimes,
        // and `path::` segments (`std::collections::HashMap`).
        let mut j = k;
        while j > 0 {
            let prev = toks[j - 1];
            // `ident ::` path segment before the current position.
            if prev.punct(src) == Some(b':')
                && j >= 3
                && toks[j - 2].punct(src) == Some(b':')
                && toks[j - 3].kind == TokKind::Ident
            {
                j -= 3;
                continue;
            }
            let skip = match prev.punct(src) {
                Some(b'<') | Some(b'&') => true,
                _ => {
                    prev.kind == TokKind::Lifetime
                        || prev.is_ident(src, "mut")
                        || (prev.kind == TokKind::Ident
                            && WRAPPERS.iter().any(|w| prev.is_ident(src, w)))
                }
            };
            if skip {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        let sep = toks[j - 1];
        let is_binding = matches!(sep.punct(src), Some(b':') | Some(b'='));
        if !is_binding || j < 2 {
            continue;
        }
        // A lone `:` preceded by another `:` is a path separator the walk
        // above did not fold (defensive; should not happen).
        if sep.punct(src) == Some(b':') && toks[j - 2].punct(src) == Some(b':') {
            continue;
        }
        let name = toks[j - 2];
        if name.kind == TokKind::Ident {
            names.insert(name.text(src).to_vec());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::new("crates/core/src/x.rs", src.as_bytes());
        let mut out = Vec::new();
        check(&sf, &mut out);
        out
    }

    #[test]
    fn instant_now_fires() {
        let out = findings("fn f() { let t = Instant::now(); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Instant::now"));
    }

    #[test]
    fn instant_elapsed_alone_does_not_fire() {
        assert!(findings("fn f(t: Instant) -> Duration { t.elapsed() }").is_empty());
    }

    #[test]
    fn systemtime_fires_even_as_import() {
        assert_eq!(findings("use std::time::SystemTime;").len(), 1);
    }

    #[test]
    fn map_drain_fires_but_vec_drain_does_not() {
        let src = "
struct S { cache: HashMap<u64, u32>, cols: Vec<u32> }
impl S {
    fn clear(&mut self) {
        for (_, e) in self.cache.drain() { drop(e); }
        for e in self.cols.drain(..) { drop(e); }
    }
}";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`cache`"));
    }

    #[test]
    fn insert_only_hashset_is_fine() {
        let src = "
fn dedup(xs: Vec<u64>) -> usize {
    let mut seen = std::collections::HashSet::new();
    xs.into_iter().filter(|x| seen.insert(*x)).count()
}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn for_loop_over_map_ref_fires() {
        let src = "fn f(m: &HashMap<u32, u32>) { for (k, v) in m { use_it(k, v); } }";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn wrapped_map_field_is_tracked() {
        let src = "
struct S { index: Arc<Mutex<HashMap<u32, u32>>> }
fn f(s: &S) { for k in s.index.keys() { touch(k); } }";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "
#[cfg(test)]
mod tests {
    fn t() { let _ = Instant::now(); }
}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn allow_with_reason_silences() {
        let src = "fn f() {\n    // lint: allow(determinism) — telemetry side channel only\n    let t = Instant::now();\n}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn string_contents_do_not_fire() {
        assert!(findings(r#"fn f() -> &'static str { "Instant::now" }"#).is_empty());
    }
}
