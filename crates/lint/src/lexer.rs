//! A small, *total* Rust lexer.
//!
//! Totality is the contract: for **any** byte sequence — valid Rust, a
//! truncated file, binary garbage — [`lex`] terminates without panicking
//! and returns tokens whose spans lie inside the input
//! (`lo <= hi <= src.len()`, verified by proptest in
//! `tests/lexer_proptests.rs`). Unterminated constructs (a block comment,
//! string, or raw string with no closing delimiter) simply extend to end
//! of input as one token.
//!
//! The rules engine only needs enough fidelity to never mistake comment or
//! string *contents* for code: `Instant::now` inside a doc comment or an
//! error message must not trip the determinism rule. So the lexer
//! understands exactly the constructs that can hide code-looking bytes —
//! line and nested block comments, string / raw-string / byte-string /
//! c-string literals, char literals vs. lifetimes — and treats everything
//! else as identifiers, numbers, or single-byte punctuation.

/// Token classification. Spans index into the original byte slice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (also any run containing bytes >= 0x80,
    /// which conservatively covers non-ASCII identifiers).
    Ident,
    /// `'label` / `'a` lifetime (no closing quote).
    Lifetime,
    /// Any string-shaped literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char literal `'x'`, including escapes.
    Char,
    /// Numeric literal (approximate: digits plus trailing alphanumerics).
    Num,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting honored, to EOF when unterminated.
    BlockComment,
    /// Any other single byte.
    Punct,
}

/// One lexed token. `line` is 1-based and refers to the token's first byte.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub lo: usize,
    pub hi: usize,
    pub line: u32,
}

impl Token {
    /// The token's bytes within `src`. Never panics: spans are clamped at
    /// construction and re-clamped here for defense in depth.
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        let hi = self.hi.min(src.len());
        let lo = self.lo.min(hi);
        &src[lo..hi]
    }

    /// Single punctuation byte, if this is a `Punct` token.
    pub fn punct(&self, src: &[u8]) -> Option<u8> {
        if self.kind == TokKind::Punct {
            self.text(src).first().copied()
        } else {
            None
        }
    }

    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, src: &[u8], word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == word.as_bytes()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Internal cursor over the input; every advance is bounds-checked.
struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    /// Advance one byte, keeping the line count in step.
    fn bump(&mut self) {
        if let Some(b) = self.src.get(self.i) {
            if *b == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consume a non-raw string body after the opening quote, honoring
    /// `\"` escapes; stops after the closing `"` or at EOF.
    fn eat_quoted(&mut self, quote: u8) {
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump();
                self.bump();
            } else if b == quote {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consume a raw-string body: after `r##"`, scan for `"##` with the
    /// same number of hashes; to EOF when unterminated.
    fn eat_raw(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }
}

/// Try to lex a string literal (with optional `b`/`c`/`r` prefixes)
/// starting at the cursor. Returns `true` and consumes it when present.
fn try_string(c: &mut Cursor<'_>) -> bool {
    // Recognized prefixes: "", b, c, br, cr, r — longest match first.
    let (skip, raw) = match (c.peek(0), c.peek(1)) {
        (Some(b'b') | Some(b'c'), Some(b'r')) => (2, true),
        (Some(b'b') | Some(b'c'), _) => (1, false),
        (Some(b'r'), _) => (1, true),
        _ => (0, false),
    };
    if raw {
        // r / br / cr: zero or more hashes then a quote.
        let mut hashes = 0;
        while c.peek(skip + hashes) == Some(b'#') {
            hashes += 1;
        }
        if c.peek(skip + hashes) == Some(b'"') {
            c.bump_n(skip + hashes + 1);
            c.eat_raw(hashes);
            return true;
        }
        return false;
    }
    if c.peek(skip) == Some(b'"') {
        c.bump_n(skip + 1);
        c.eat_quoted(b'"');
        return true;
    }
    false
}

/// Lex `src` completely. Whitespace is dropped; comments are kept (the
/// allow-annotation scanner reads them).
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut c = Cursor { src, i: 0, line: 1 };
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        let lo = c.i;
        let line = c.line;
        let kind = if b.is_ascii_whitespace() {
            c.bump();
            continue;
        } else if b == b'/' && c.peek(1) == Some(b'/') {
            while let Some(nb) = c.peek(0) {
                if nb == b'\n' {
                    break;
                }
                c.bump();
            }
            TokKind::LineComment
        } else if b == b'/' && c.peek(1) == Some(b'*') {
            c.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (c.peek(0), c.peek(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        c.bump_n(2);
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        c.bump_n(2);
                    }
                    (Some(_), _) => c.bump(),
                    (None, _) => break,
                }
            }
            TokKind::BlockComment
        } else if try_string(&mut c) {
            TokKind::Str
        } else if b == b'\'' {
            lex_quote(&mut c)
        } else if is_ident_start(b) {
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokKind::Ident
        } else if b.is_ascii_digit() {
            lex_number(&mut c);
            TokKind::Num
        } else {
            c.bump();
            TokKind::Punct
        };
        out.push(Token {
            kind,
            lo,
            hi: c.i,
            line,
        });
        // Totality backstop: the cursor must advance every iteration.
        if c.i == lo {
            c.bump();
        }
    }
    out
}

/// Disambiguate `'a'` (char) / `'\n'` (char) / `'static` (lifetime) /
/// stray `'` (punct). The cursor sits on the opening quote.
fn lex_quote(c: &mut Cursor<'_>) -> TokKind {
    match c.peek(1) {
        Some(b'\\') => {
            // Escape: definitely a char literal. Consume to the closing
            // quote, skipping escaped bytes; stop at newline or EOF so a
            // stray `'\` cannot swallow the rest of the file.
            c.bump_n(2); // ' and backslash
            c.bump(); // escaped byte
            while let Some(b) = c.peek(0) {
                if b == b'\'' {
                    c.bump();
                    break;
                }
                if b == b'\n' {
                    break;
                }
                if b == b'\\' {
                    c.bump();
                }
                c.bump();
            }
            TokKind::Char
        }
        Some(nb) if is_ident_start(nb) => {
            // `'xyz` — lifetime unless a quote closes it (`'x'`).
            let mut k = 1;
            while c.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if c.peek(k) == Some(b'\'') {
                c.bump_n(k + 1);
                TokKind::Char
            } else {
                c.bump_n(k);
                TokKind::Lifetime
            }
        }
        Some(_) if c.peek(2) == Some(b'\'') => {
            // `'+'` and friends.
            c.bump_n(3);
            TokKind::Char
        }
        _ => {
            c.bump();
            TokKind::Punct
        }
    }
}

/// Approximate numeric literal: digits, `_`, alphanumeric suffixes and
/// type markers, a fractional part, and signed exponents. Exactness is
/// irrelevant to the rules; not splitting `1.0e-3` into surprising
/// punctuation is what matters. `0..n` correctly stops before `..`.
fn lex_number(c: &mut Cursor<'_>) {
    let mut prev = 0u8;
    loop {
        match c.peek(0) {
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                prev = b;
                c.bump();
            }
            Some(b'.') if c.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                prev = b'.';
                c.bump();
            }
            Some(b'+') | Some(b'-')
                if (prev == b'e' || prev == b'E')
                    && c.peek(1).is_some_and(|d| d.is_ascii_digit()) =>
            {
                prev = 0;
                c.bump();
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src.as_bytes()).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex(b"self.cache.drain()");
        let texts: Vec<&[u8]> = toks.iter().map(|t| t.text(b"self.cache.drain()")).collect();
        assert_eq!(
            texts,
            vec![b"self".as_ref(), b".", b"cache", b".", b"drain", b"(", b")"]
        );
    }

    #[test]
    fn strings_hide_code() {
        let src = br#"let m = "Instant::now() inside a string";"#;
        let toks = lex(src);
        assert!(toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .all(|t| t.text(src) != b"Instant"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = br##"r#"embedded "quote" and \ backslash"# trailing"##;
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert!(toks[1].is_ident(src, "trailing"));
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            kinds("/* outer /* inner */ still outer */ x"),
            vec![TokKind::BlockComment, TokKind::Ident]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(kinds("'static"), vec![TokKind::Lifetime]);
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds("'\\n'"), vec![TokKind::Char]);
        assert_eq!(
            kinds("&'a str"),
            vec![TokKind::Punct, TokKind::Lifetime, TokKind::Ident]
        );
    }

    #[test]
    fn unterminated_constructs_reach_eof() {
        for src in [
            "\"never closed",
            "/* never closed",
            "r##\"never closed",
            "b\"x",
        ] {
            let toks = lex(src.as_bytes());
            assert_eq!(toks.len(), 1, "{src:?} should be one token");
            assert_eq!(toks[0].hi, src.len());
        }
    }

    #[test]
    fn line_numbers() {
        let src = b"a\nb\n\nc";
        let toks = lex(src);
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn range_after_number() {
        // `0..n` must not glue the dots onto the number.
        let src = b"for i in 0..n {}";
        let toks = lex(src);
        let num = toks.iter().find(|t| t.kind == TokKind::Num).unwrap();
        assert_eq!(num.text(src), b"0");
    }

    #[test]
    fn float_with_exponent() {
        let src = b"1.5e-3_f64;";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Num);
        assert_eq!(toks[0].text(src), b"1.5e-3_f64");
    }
}
