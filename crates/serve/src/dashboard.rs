//! The embedded live dashboard served at `GET /dashboard`.
//!
//! One self-contained HTML file — no JS toolchain, no external assets,
//! no CDN — compiled into the binary with `include_str!`. The page polls
//! `GET /v1/jobs` for the job set and follows each live job's
//! `GET /v1/jobs/{id}/events` SSE stream, rendering a log-scale
//! convergence curve, the live (error, complexity) Pareto front carried
//! by `progress` frames, and a per-phase bar breakdown of where the last
//! generation's wall time went. A traces panel polls `GET /v1/traces`
//! and draws the selected trace's span tree as a canvas waterfall.

/// The dashboard page, verbatim.
pub const HTML: &str = include_str!("dashboard.html");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_is_self_contained_html() {
        assert!(HTML.starts_with("<!DOCTYPE html>"));
        // Zero external dependencies: nothing fetched from another origin.
        assert!(!HTML.contains("http://"), "external reference in dashboard");
        assert!(
            !HTML.contains("https://"),
            "external reference in dashboard"
        );
        assert!(!HTML.contains("<script src"), "external script");
        assert!(!HTML.contains("<link "), "external stylesheet");
        // It drives the daemon's own API surface.
        assert!(HTML.contains("/v1/jobs"));
        assert!(HTML.contains("EventSource"));
        assert!(HTML.contains("progress"));
        assert!(HTML.contains("/v1/traces"));
        assert!(HTML.contains("drawWaterfall"));
    }
}
