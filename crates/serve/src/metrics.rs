//! Request counters and latency histograms, rendered in the Prometheus
//! text exposition format.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use caffeine_obs::TraceStoreStats;
use caffeine_runtime::PhaseBreakdown;

use crate::sync::PoisonlessMutex;

/// The phase labels of `caffeine_engine_phase_seconds`, in render order.
/// Mirrors [`PhaseBreakdown`]'s duration fields.
const ENGINE_PHASES: [&str; 6] = [
    "basis_eval",
    "linear_solve",
    "eval_other",
    "selection",
    "migration",
    "wall",
];

/// Upper bounds of the latency buckets, in microseconds (powers of four
/// from 16µs to ~17s, plus +Inf implicitly).
const BUCKET_BOUNDS_US: [u64; 13] = [
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
];

/// One latency histogram (counts per bucket + sum + total).
#[derive(Debug, Default)]
struct Histogram {
    buckets: [u64; BUCKET_BOUNDS_US.len()],
    count: u64,
    sum_us: u64,
}

impl Histogram {
    fn observe(&mut self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            if us <= bound {
                self.buckets[i] += 1;
                break;
            }
        }
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }
}

/// Server-wide observability state. Every method is thread-safe.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// `(route label, status) → count`.
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Per-route latency histograms.
    latency: Mutex<BTreeMap<String, Histogram>>,
    /// Requests rejected because the worker queue was full.
    rejected_busy: AtomicU64,
    /// Jobs submitted over the API.
    jobs_submitted: AtomicU64,
    /// Jobs that reached a terminal state.
    jobs_finished: AtomicU64,
    /// Terminal job records evicted from the bounded store.
    jobs_evicted: AtomicU64,
    /// Interrupted jobs re-adopted from checkpoints at startup.
    jobs_adopted: AtomicU64,
    /// Requests served on an already-open (kept-alive) connection.
    keepalive_reused: AtomicU64,
    /// SSE job-event streams opened.
    sse_streams: AtomicU64,
    /// SSE streams currently owned by the streamer thread (gauge).
    sse_active: AtomicU64,
    /// Jobs currently waiting in the admission queue (gauge).
    jobs_queued: AtomicU64,
    /// Time jobs spent queued before admission.
    queue_wait: Mutex<Histogram>,
    /// Wall-clock start of the process (unix seconds), for
    /// `process_start_time_seconds`.
    start_unix: f64,
    /// Cumulative engine time per phase, microseconds, indexed like
    /// [`ENGINE_PHASES`]. Fed by the job event pumps from each
    /// generation's [`PhaseBreakdown`].
    engine_phase_us: [AtomicU64; ENGINE_PHASES.len()],
    /// Cumulative basis-cache hits across all jobs' generations.
    cache_hits: AtomicU64,
    /// Cumulative basis-cache misses across all jobs' generations.
    cache_misses: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            requests: Mutex::new(BTreeMap::new()),
            latency: Mutex::new(BTreeMap::new()),
            rejected_busy: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_finished: AtomicU64::new(0),
            jobs_evicted: AtomicU64::new(0),
            jobs_adopted: AtomicU64::new(0),
            keepalive_reused: AtomicU64::new(0),
            sse_streams: AtomicU64::new(0),
            sse_active: AtomicU64::new(0),
            jobs_queued: AtomicU64::new(0),
            queue_wait: Mutex::new(Histogram::default()),
            start_unix: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
            engine_phase_us: Default::default(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Folds one generation's phase breakdown into the cumulative
    /// engine-phase counters and cache totals.
    pub fn observe_engine_phases(&self, b: &PhaseBreakdown) {
        let secs = [
            b.basis_eval,
            b.linear_solve,
            b.eval_other,
            b.selection,
            b.migration,
            b.wall,
        ];
        for (cell, s) in self.engine_phase_us.iter().zip(secs) {
            cell.fetch_add((s.max(0.0) * 1e6) as u64, Ordering::Relaxed);
        }
        self.cache_hits.fetch_add(b.cache_hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(b.cache_misses, Ordering::Relaxed);
    }

    /// Records one finished request.
    pub fn observe(&self, route: &str, status: u16, elapsed: Duration) {
        *self
            .requests
            .plock()
            .entry((route.to_string(), status))
            .or_insert(0) += 1;
        self.latency
            .plock()
            .entry(route.to_string())
            .or_default()
            .observe(elapsed);
    }

    /// Records a 503 due to a saturated worker pool.
    pub fn observe_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job submission.
    pub fn observe_job_submitted(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job reaching a terminal state.
    pub fn observe_job_finished(&self) {
        self.jobs_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a terminal job record evicted from the bounded store.
    pub fn observe_job_evicted(&self) {
        self.jobs_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an interrupted job re-adopted from its checkpoint.
    pub fn observe_job_adopted(&self) {
        self.jobs_adopted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request served on a reused (kept-alive) connection.
    pub fn observe_keepalive_reuse(&self) {
        self.keepalive_reused.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an SSE job-event stream being opened.
    pub fn observe_sse_stream(&self) {
        self.sse_streams.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a stream entering the dedicated streamer's ownership.
    pub fn observe_sse_adopted(&self) {
        self.sse_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a stream leaving the streamer (done, dead, or dropped).
    pub fn observe_sse_closed(&self) {
        // Saturating: a close without a matched adopt must not wrap.
        let _ = self
            .sse_active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Publishes the current admission-queue depth (gauge).
    pub fn set_jobs_queued(&self, depth: usize) {
        self.jobs_queued.store(depth as u64, Ordering::Relaxed);
    }

    /// The last published admission-queue depth.
    pub fn jobs_queued(&self) -> u64 {
        self.jobs_queued.load(Ordering::Relaxed)
    }

    /// Records how long one job waited in the admission queue.
    pub fn observe_queue_wait(&self, waited: Duration) {
        self.queue_wait.plock().observe(waited);
    }

    /// Renders everything in the Prometheus text format. Registry cache
    /// counters and trace-store statistics are passed in so `Metrics`
    /// stays decoupled from the registry and the trace store.
    pub fn render(
        &self,
        registry_hits: u64,
        registry_misses: u64,
        traces: &TraceStoreStats,
    ) -> String {
        let mut out = String::with_capacity(2048);
        let uptime = self.started.elapsed().as_secs_f64();
        out.push_str("# TYPE caffeine_serve_uptime_seconds gauge\n");
        out.push_str(&format!("caffeine_serve_uptime_seconds {uptime:.3}\n"));
        out.push_str("# TYPE process_start_time_seconds gauge\n");
        out.push_str(&format!(
            "process_start_time_seconds {:.3}\n",
            self.start_unix
        ));
        out.push_str("# TYPE caffeine_build_info gauge\n");
        out.push_str(&format!(
            "caffeine_build_info{{version=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        ));

        out.push_str("# TYPE caffeine_serve_requests_total counter\n");
        for ((route, status), count) in self.requests.plock().iter() {
            out.push_str(&format!(
                "caffeine_serve_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str("# TYPE caffeine_serve_request_duration_microseconds histogram\n");
        for (route, hist) in self.latency.plock().iter() {
            let mut cumulative = 0;
            for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                cumulative += hist.buckets[i];
                out.push_str(&format!(
                    "caffeine_serve_request_duration_microseconds_bucket{{route=\"{route}\",le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "caffeine_serve_request_duration_microseconds_bucket{{route=\"{route}\",le=\"+Inf\"}} {}\n",
                hist.count
            ));
            out.push_str(&format!(
                "caffeine_serve_request_duration_microseconds_sum{{route=\"{route}\"}} {}\n",
                hist.sum_us
            ));
            out.push_str(&format!(
                "caffeine_serve_request_duration_microseconds_count{{route=\"{route}\"}} {}\n",
                hist.count
            ));
        }

        out.push_str("# TYPE caffeine_serve_rejected_busy_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_rejected_busy_total {}\n",
            self.rejected_busy.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_registry_hits_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_registry_hits_total {registry_hits}\n"
        ));
        out.push_str("# TYPE caffeine_serve_registry_misses_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_registry_misses_total {registry_misses}\n"
        ));
        out.push_str("# TYPE caffeine_serve_jobs_submitted_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_jobs_submitted_total {}\n",
            self.jobs_submitted.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_jobs_finished_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_jobs_finished_total {}\n",
            self.jobs_finished.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_jobs_evicted_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_jobs_evicted_total {}\n",
            self.jobs_evicted.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_jobs_adopted_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_jobs_adopted_total {}\n",
            self.jobs_adopted.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_keepalive_reused_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_keepalive_reused_total {}\n",
            self.keepalive_reused.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_sse_streams_total counter\n");
        out.push_str(&format!(
            "caffeine_serve_sse_streams_total {}\n",
            self.sse_streams.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_sse_active gauge\n");
        out.push_str(&format!(
            "caffeine_serve_sse_active {}\n",
            self.sse_active.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_jobs_queued gauge\n");
        out.push_str(&format!(
            "caffeine_serve_jobs_queued {}\n",
            self.jobs_queued.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE caffeine_serve_queue_wait_seconds histogram\n");
        {
            let hist = self.queue_wait.plock();
            let mut cumulative = 0;
            for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                cumulative += hist.buckets[i];
                out.push_str(&format!(
                    "caffeine_serve_queue_wait_seconds_bucket{{le=\"{}\"}} {cumulative}\n",
                    bound as f64 / 1e6
                ));
            }
            out.push_str(&format!(
                "caffeine_serve_queue_wait_seconds_bucket{{le=\"+Inf\"}} {}\n",
                hist.count
            ));
            out.push_str(&format!(
                "caffeine_serve_queue_wait_seconds_sum {}\n",
                hist.sum_us as f64 / 1e6
            ));
            out.push_str(&format!(
                "caffeine_serve_queue_wait_seconds_count {}\n",
                hist.count
            ));
        }
        out.push_str("# TYPE caffeine_engine_phase_seconds counter\n");
        for (phase, cell) in ENGINE_PHASES.iter().zip(&self.engine_phase_us) {
            out.push_str(&format!(
                "caffeine_engine_phase_seconds{{phase=\"{phase}\"}} {:.6}\n",
                cell.load(Ordering::Relaxed) as f64 / 1e6
            ));
        }
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        out.push_str("# TYPE caffeine_engine_cache_hits_total counter\n");
        out.push_str(&format!("caffeine_engine_cache_hits_total {hits}\n"));
        out.push_str("# TYPE caffeine_engine_cache_misses_total counter\n");
        out.push_str(&format!("caffeine_engine_cache_misses_total {misses}\n"));
        out.push_str("# TYPE caffeine_basis_cache_hit_ratio gauge\n");
        let ratio = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        out.push_str(&format!("caffeine_basis_cache_hit_ratio {ratio:.6}\n"));
        out.push_str("# TYPE caffeine_trace_spans_total counter\n");
        out.push_str(&format!(
            "caffeine_trace_spans_total {}\n",
            traces.spans_total
        ));
        out.push_str("# TYPE caffeine_traces_sampled_total counter\n");
        out.push_str(&format!(
            "caffeine_traces_sampled_total {}\n",
            traces.sampled_total
        ));
        out.push_str("# TYPE caffeine_traces_dropped_total counter\n");
        out.push_str(&format!(
            "caffeine_traces_dropped_total {}\n",
            traces.dropped_total
        ));
        out.push_str("# TYPE caffeine_trace_store_bytes gauge\n");
        out.push_str(&format!(
            "caffeine_trace_store_bytes {}\n",
            traces.store_bytes
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_show_up_in_the_rendering() {
        let m = Metrics::new();
        m.observe("predict", 200, Duration::from_micros(120));
        m.observe("predict", 200, Duration::from_micros(90_000));
        m.observe("predict", 400, Duration::from_micros(10));
        m.observe_busy();
        m.observe_job_submitted();
        let text = m.render(
            5,
            2,
            &TraceStoreStats {
                spans_total: 12,
                sampled_total: 3,
                dropped_total: 1,
                store_bytes: 4096,
            },
        );
        assert!(
            text.contains("caffeine_serve_requests_total{route=\"predict\",status=\"200\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("caffeine_serve_requests_total{route=\"predict\",status=\"400\"} 1"),
            "{text}"
        );
        assert!(text.contains("_count{route=\"predict\"} 3"), "{text}");
        assert!(
            text.contains("caffeine_serve_registry_hits_total 5"),
            "{text}"
        );
        assert!(
            text.contains("caffeine_serve_rejected_busy_total 1"),
            "{text}"
        );
        assert!(text.contains("le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("caffeine_trace_spans_total 12"), "{text}");
        assert!(text.contains("caffeine_traces_sampled_total 3"), "{text}");
        assert!(text.contains("caffeine_traces_dropped_total 1"), "{text}");
        assert!(text.contains("caffeine_trace_store_bytes 4096"), "{text}");
    }

    #[test]
    fn gauges_and_queue_wait_render() {
        let m = Metrics::new();
        m.set_jobs_queued(3);
        m.observe_sse_adopted();
        m.observe_sse_adopted();
        m.observe_sse_closed();
        m.observe_queue_wait(Duration::from_millis(2));
        let text = m.render(0, 0, &TraceStoreStats::default());
        assert!(text.contains("caffeine_serve_jobs_queued 3"), "{text}");
        assert!(text.contains("caffeine_serve_sse_active 1"), "{text}");
        assert!(
            text.contains("caffeine_serve_queue_wait_seconds_count 1"),
            "{text}"
        );
        assert!(
            text.contains("caffeine_serve_queue_wait_seconds_bucket{le=\"0.004096\"} 1"),
            "{text}"
        );
        // The gauge is saturating: an unmatched close stays at zero.
        m.observe_sse_closed();
        m.observe_sse_closed();
        assert!(m
            .render(0, 0, &TraceStoreStats::default())
            .contains("caffeine_serve_sse_active 0"));
    }

    #[test]
    fn build_info_start_time_and_engine_phases_render() {
        let m = Metrics::new();
        let text = m.render(0, 0, &TraceStoreStats::default());
        assert!(
            text.contains(&format!(
                "caffeine_build_info{{version=\"{}\"}} 1",
                env!("CARGO_PKG_VERSION")
            )),
            "{text}"
        );
        // The daemon started after the unix epoch, presumably.
        let start: f64 = text
            .lines()
            .find(|l| l.starts_with("process_start_time_seconds "))
            .and_then(|l| l.split(' ').nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(start > 1e9, "{start}");
        // Zeroed phase counters still render (so dashboards see the series).
        assert!(
            text.contains("caffeine_engine_phase_seconds{phase=\"basis_eval\"} 0.000000"),
            "{text}"
        );

        m.observe_engine_phases(&PhaseBreakdown {
            generation: 1,
            basis_eval: 0.25,
            linear_solve: 0.5,
            eval_other: 0.01,
            selection: 0.05,
            migration: 0.0,
            wall: 1.0,
            cache_hits: 30,
            cache_misses: 10,
        });
        m.observe_engine_phases(&PhaseBreakdown {
            generation: 2,
            basis_eval: 0.25,
            linear_solve: 0.25,
            eval_other: 0.0,
            selection: 0.0,
            migration: 0.0,
            wall: 0.5,
            cache_hits: 10,
            cache_misses: 0,
        });
        let text = m.render(0, 0, &TraceStoreStats::default());
        assert!(
            text.contains("caffeine_engine_phase_seconds{phase=\"basis_eval\"} 0.500000"),
            "{text}"
        );
        assert!(
            text.contains("caffeine_engine_phase_seconds{phase=\"linear_solve\"} 0.750000"),
            "{text}"
        );
        assert!(
            text.contains("caffeine_engine_phase_seconds{phase=\"wall\"} 1.500000"),
            "{text}"
        );
        assert!(
            text.contains("caffeine_engine_cache_hits_total 40"),
            "{text}"
        );
        assert!(
            text.contains("caffeine_engine_cache_misses_total 10"),
            "{text}"
        );
        assert!(
            text.contains("caffeine_basis_cache_hit_ratio 0.800000"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        // 10µs lands in the first bucket; every later bucket must include it.
        m.observe("x", 200, Duration::from_micros(10));
        let text = m.render(0, 0, &TraceStoreStats::default());
        assert!(text.contains("le=\"16\"} 1"), "{text}");
        assert!(text.contains("le=\"268435456\"} 1"), "{text}");
    }
}
