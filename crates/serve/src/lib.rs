//! `caffeine-serve` — a zero-dependency model-serving daemon for the
//! CAFFEINE workspace.
//!
//! The engine's payoff is that fitted canonical-form models are cheap
//! surrogates that replace SPICE in downstream sizing loops; that value
//! is only realized when the models can be *queried at scale*. This
//! crate puts a network front door on the PR-2 batch-evaluation path
//! using nothing but `std`:
//!
//! * **HTTP/1.1 over `std::net`** ([`http`]): a strict, bounded request
//!   parser (never panics, answers 400/413/501 on hostile input), a
//!   bounded worker thread pool ([`WorkerPool`]) with 503 backpressure
//!   and draining shutdown, keep-alive connections with a per-connection
//!   request budget and idle timeout, and chunked transfer-encoding for
//!   streamed responses.
//! * **Versioned model registry** ([`ModelRegistry`]): fitted Pareto
//!   fronts as content-hash-addressed JSON artifacts
//!   ([`caffeine_core::ModelArtifact`]), in memory with optional disk
//!   persistence, idempotent publication, and per-id version history.
//! * **Batched prediction**: `POST /v1/models/{id}/predict` deserializes
//!   row-major point batches and evaluates them through the compiled-tape
//!   batch path with full shape validation (empty/ragged/mismatched
//!   batches are structured 400s, never panics).
//! * **Async modeling jobs** ([`JobManager`]): `POST /v1/jobs` admits a
//!   GP run through a FIFO **admission scheduler** — at most
//!   `--max-running-jobs` runs execute concurrently, the rest wait in
//!   the `queued` state with a visible queue position — onto background
//!   threads through `caffeine-runtime`'s island engine and
//!   [`caffeine_runtime::RunController`], with live progress snapshots,
//!   SSE event streaming ([`EventHub`]) served by a dedicated streamer
//!   thread ([`SseStreamer`], so open streams never occupy pool
//!   workers), checkpointing, cancellation, automatic publication of
//!   the finished front into the registry, a bounded store with
//!   terminal-state eviction, and re-adoption of interrupted jobs on
//!   restart (through the same queue).
//! * **Observability** ([`Metrics`]): request counts, per-route latency
//!   histograms, registry cache hits, engine phase timings, and
//!   job/keep-alive/SSE counters in the Prometheus text format at
//!   `GET /metrics`; structured (text or JSON) access logs with an
//!   `X-Request-Id` echoed on every response; distributed tracing
//!   ([`caffeine_obs::TraceStore`]) — every request opens a server span
//!   (W3C `traceparent` accepted inbound and echoed back), job
//!   submission links the job's whole lifecycle (queued wait, engine
//!   phases, checkpoint writes, publication) into the submitting
//!   request's trace, and tail-sampled span trees are queryable at
//!   `GET /v1/traces`; and an embedded zero-dependency live dashboard
//!   with a trace waterfall at `GET /dashboard` (see
//!   `docs/OBSERVABILITY.md`).
//!
//! # Endpoints
//!
//! | Method & path                        | Purpose                          |
//! |--------------------------------------|----------------------------------|
//! | `GET /healthz`                       | liveness                         |
//! | `GET /readyz`                        | readiness (503 while draining)   |
//! | `GET /metrics`                       | Prometheus metrics               |
//! | `GET /dashboard`                     | live jobs dashboard (HTML)       |
//! | `GET /v1/models`                     | list ids and versions            |
//! | `POST /v1/models/{id}`               | publish an artifact              |
//! | `GET /v1/models/{id}[?version=h]`    | fetch an artifact                |
//! | `POST /v1/models/{id}/predict`       | batched prediction               |
//! | `GET /v1/jobs[?state=s]` · `POST /v1/jobs` | list / submit modeling jobs |
//! | `GET /v1/jobs/{id}`                  | job status and progress          |
//! | `GET /v1/jobs/{id}/events`           | live job events (SSE stream)     |
//! | `DELETE /v1/jobs/{id}`               | cancel a job (409 if terminal)   |
//! | `GET /v1/traces[?min_duration_ms=n&error=true&job=id]` | sampled trace summaries |
//! | `GET /v1/traces/{trace_id}`          | one trace's full span tree       |
//! | `POST /v1/admin/shutdown`            | graceful drain                   |
//!
//! The full request/response contract lives in `docs/API.md` at the
//! workspace root. Connections are kept alive between requests (bounded
//! per-connection request budget + idle timeout); the job store is
//! bounded with terminal-state eviction; and a daemon restarted over the
//! same `--model-dir` re-adopts jobs that were interrupted mid-run from
//! their checkpoints.
//!
//! # Quickstart
//!
//! ```
//! use caffeine_serve::{client, Server, ServeConfig};
//! use std::time::Duration;
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServeConfig::default()
//! }).unwrap();
//! let addr = server.local_addr().to_string();
//! let handle = server.handle();
//! let thread = std::thread::spawn(move || server.serve());
//!
//! let r = client::request(&addr, "GET", "/healthz", None, Duration::from_secs(2)).unwrap();
//! assert_eq!(r.status, 200);
//!
//! handle.shutdown();
//! thread.join().unwrap().unwrap();
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
mod dashboard;
mod error;
mod handlers;
pub mod http;
mod jobs;
mod metrics;
mod pool;
mod registry;
mod router;
mod server;
mod sse;
mod sync;

pub use error::ApiError;

/// The `caffeine-serve` crate version, as stamped into
/// `caffeine_build_info` on `/metrics` and into bench snapshots.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
pub use jobs::{EventHub, JobEntry, JobEventFrame, JobManager, JobOutcome, JobSpec};
pub use metrics::Metrics;
pub use pool::WorkerPool;
pub use registry::{ModelRegistry, StoredVersion};
pub use router::{route, valid_model_id, Route};
pub use server::{ServeConfig, Server, ServerHandle, Shared};
pub use sse::SseStreamer;
