//! A bounded worker thread pool with backpressure and draining shutdown.
//!
//! Tasks (accepted connections) are handed to a fixed set of worker
//! threads through a bounded queue. When the queue is full,
//! [`WorkerPool::try_execute`] returns the task so the acceptor can
//! answer `503` on it instead of buffering unboundedly. Dropping the
//! sender on shutdown lets workers drain everything already queued
//! before exiting — in-flight requests finish, nothing new is admitted.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A pool of workers applying one shared handler to queued tasks.
#[derive(Debug)]
pub struct WorkerPool<T: Send + 'static> {
    tx: Option<SyncSender<T>>,
    workers: Vec<JoinHandle<()>>,
    queued: Arc<AtomicUsize>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `workers` threads sharing a queue of at most `backlog`
    /// pending tasks (both clamped to ≥ 1), each task handled by
    /// `handler`.
    pub fn new<F>(workers: usize, backlog: usize, handler: F) -> WorkerPool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<T>(backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handler = Arc::new(handler);
        let queued = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let queued = Arc::clone(&queued);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, handler.as_ref(), &queued))
                    // lint: allow(panic-freedom) — startup-time: runs once in WorkerPool::new before the listener accepts requests
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers: handles,
            queued,
        }
    }

    /// Queues a task, or returns it when the pool is saturated or
    /// shutting down so the caller can still respond.
    ///
    /// # Errors
    ///
    /// The rejected task.
    pub fn try_execute(&self, task: T) -> Result<(), T> {
        let Some(tx) = &self.tx else {
            return Err(task);
        };
        match tx.try_send(task) {
            Ok(()) => {
                self.queued.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(t) | TrySendError::Disconnected(t)) => Err(t),
        }
    }

    /// Tasks accepted but not yet picked up by a worker — an approximate
    /// backpressure signal for the acceptor.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Stops admitting work and joins every worker after the queue
    /// drains.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.tx.take(); // closes the channel; workers exit when drained
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop<T>(rx: &Mutex<Receiver<T>>, handler: &(impl Fn(T) + ?Sized), queued: &AtomicUsize) {
    loop {
        // Hold the lock only while dequeuing, never while handling.
        let task = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a worker panicked while holding the lock
        };
        match task {
            Ok(task) => {
                queued.fetch_sub(1, Ordering::Relaxed);
                handler(task);
            }
            Err(_) => return, // channel closed and drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_tasks_on_workers_and_drains_on_shutdown() {
        let counter = Arc::new(AtomicUsize::new(0));
        let sum = Arc::clone(&counter);
        let pool = WorkerPool::new(4, 64, move |n: usize| {
            sum.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..50 {
            pool.try_execute(1).expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn saturation_returns_the_task_instead_of_blocking() {
        let gate = Arc::new(Mutex::new(()));
        let worker_gate = Arc::clone(&gate);
        let held = gate.lock().unwrap();
        // The single worker blocks on the gate for its first task.
        let pool = WorkerPool::new(1, 1, move |_: u32| {
            let _g = worker_gate.lock().unwrap();
        });
        pool.try_execute(0).expect("first task fits");
        // Give the worker a moment to pick up the blocking task, then
        // fill the queue slot.
        std::thread::sleep(Duration::from_millis(30));
        assert!(pool.try_execute(1).is_ok(), "backlog slot fits");
        // Now both worker and backlog are occupied: the next task
        // bounces back.
        let mut bounced = None;
        for _ in 0..3 {
            match pool.try_execute(7) {
                Err(t) => {
                    bounced = Some(t);
                    break;
                }
                Ok(()) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        assert_eq!(bounced, Some(7), "saturated pool must hand the task back");
        assert_eq!(pool.queued(), 1, "one task waits in the backlog slot");
        drop(held);
        pool.shutdown();
    }
}
