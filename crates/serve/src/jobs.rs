//! Async modeling jobs: GP runs on background threads with live
//! progress, SSE event fan-out, cancellation, checkpointing, automatic
//! publication of the finished front into the registry, a bounded job
//! store with terminal-state eviction, and re-adoption of interrupted
//! jobs from their checkpoints on daemon restart.
//!
//! # Lifecycle
//!
//! `submit` validates the spec, persists it next to the job's checkpoint
//! file (when a model dir is configured), and hands the prepared run to
//! the **admission scheduler**: a bounded set of *running* slots
//! (`max_running`) with FIFO admission. A submission beyond the running
//! limit enters the `queued` state — visible in job listings with its
//! 1-based `queue_position` — instead of spawning threads; resources are
//! committed at *admission* time, not accept time. 429 fires only when
//! the whole bounded store is full of live (queued or running) jobs.
//!
//! Admission spawns two threads: the *driver*
//! ([`caffeine_runtime::RunController::drive`] stepping the island
//! runner one generation at a time) and the *pump*, which fans the
//! runner's [`caffeine_runtime::RunEvent`]s out to SSE subscribers via
//! the job's [`EventHub`]. On a terminal outcome the driver publishes
//! (or not), removes the job's on-disk spec + checkpoint, frees its
//! running slot (admitting the next queued job), and the pump emits a
//! final `done` event and closes the hub.
//!
//! A daemon killed mid-job leaves `job-{id}.spec.json` and
//! `job-{id}.ckpt` behind; [`JobManager::adopt_orphans`] re-creates those
//! jobs on the next start — resuming from the checkpoint when one
//! exists, restarting from generation zero when the crash predated the
//! first checkpoint write, and surfacing an unusable spec/checkpoint as
//! a failed job rather than silently discarding it.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::Deserialize;

use caffeine_core::{CaffeineSettings, GrammarConfig, ModelArtifact};
use caffeine_doe::Dataset;
use caffeine_obs::{trace::fresh_span_id, SpanKind, SpanRecord, TraceContext, TraceStore};
use caffeine_runtime::{
    IslandRunner, PhaseBreakdown, RunController, RunEvent, RuntimeCheckpoint, RuntimeConfig,
};

use crate::error::ApiError;
use crate::handlers::sanitize;
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use crate::router::valid_model_id;
use crate::sync::PoisonlessMutex;

/// Events kept for late SSE subscribers, per job.
const HUB_HISTORY_CAP: usize = 512;
/// Per-subscriber buffered events; a consumer lagging this far behind is
/// dropped rather than allowed to block the run.
const SUBSCRIBER_BUFFER: usize = 256;

/// A parsed job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Registry id the finished front publishes under (default
    /// `job-{id}`).
    pub name: Option<String>,
    /// Design-variable names (defines input dimensionality).
    pub var_names: Vec<String>,
    /// Row-major training points.
    pub points: Vec<Vec<f64>>,
    /// Training targets, one per point.
    pub targets: Vec<f64>,
    /// Population size (default 60).
    pub population: usize,
    /// Generations (default 40).
    pub generations: usize,
    /// Max basis functions per model (default 6).
    pub max_bases: usize,
    /// RNG seed (default 0).
    pub seed: u64,
    /// Islands (default 1).
    pub islands: usize,
    /// Evaluation threads (default 1).
    pub threads: usize,
    /// Grammar: `"full"` (default) or `"rational"`.
    pub grammar: String,
    /// Checkpoint cadence in generations (default 10; 0 = only on
    /// completion). Only effective when the daemon has a model dir.
    pub checkpoint_every: usize,
}

/// Extracts an optional field, treating `null` and absence identically.
fn opt_field<T: Deserialize>(v: &serde_json::Value, name: &str) -> Result<Option<T>, ApiError> {
    match v.as_object().and_then(|m| m.get(name)) {
        None | Some(serde_json::Value::Null) => Ok(None),
        Some(f) => T::from_value(f)
            .map(Some)
            .map_err(|e| ApiError::bad_request(format!("field `{name}`: {e}"))),
    }
}

fn req_field<T: Deserialize>(v: &serde_json::Value, name: &str) -> Result<T, ApiError> {
    opt_field(v, name)?
        .ok_or_else(|| ApiError::bad_request(format!("missing required field `{name}`")))
}

impl JobSpec {
    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// 400 for malformed JSON, missing/mistyped fields, shape mismatches,
    /// an invalid `name`, or a grammar this server does not know.
    pub fn from_json(body: &[u8]) -> Result<JobSpec, ApiError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ApiError::bad_request("job body is not UTF-8"))?;
        let v: serde_json::Value = serde_json::from_str(text)
            .map_err(|e| ApiError::bad_request(format!("job body is not JSON: {e}")))?;
        let spec = JobSpec {
            name: opt_field(&v, "name")?,
            var_names: req_field(&v, "var_names")?,
            points: req_field(&v, "points")?,
            targets: req_field(&v, "targets")?,
            population: opt_field(&v, "population")?.unwrap_or(60),
            generations: opt_field(&v, "generations")?.unwrap_or(40),
            max_bases: opt_field(&v, "max_bases")?.unwrap_or(6),
            seed: opt_field(&v, "seed")?.unwrap_or(0),
            islands: opt_field(&v, "islands")?.unwrap_or(1),
            threads: opt_field(&v, "threads")?.unwrap_or(1),
            grammar: opt_field(&v, "grammar")?.unwrap_or_else(|| "full".to_string()),
            checkpoint_every: opt_field(&v, "checkpoint_every")?.unwrap_or(10),
        };
        if let Some(name) = &spec.name {
            if !valid_model_id(name) {
                return Err(ApiError::bad_request(format!(
                    "job name `{name}` is not a valid model id"
                )));
            }
        }
        if spec.grammar != "full" && spec.grammar != "rational" {
            return Err(ApiError::bad_request(format!(
                "grammar `{}` unknown (use `full` or `rational`)",
                spec.grammar
            )));
        }
        if spec.points.is_empty() {
            return Err(ApiError::bad_request("job has no training points"));
        }
        Ok(spec)
    }

    /// Renders the spec back to the submission JSON shape — the inverse
    /// of [`JobSpec::from_json`], used to persist the spec next to the
    /// job's checkpoint so a restarted daemon can rebuild the dataset.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "name": self.name,
            "var_names": self.var_names,
            "points": self.points,
            "targets": self.targets,
            "population": self.population,
            "generations": self.generations,
            "max_bases": self.max_bases,
            "seed": self.seed,
            "islands": self.islands,
            "threads": self.threads,
            "grammar": self.grammar,
            "checkpoint_every": self.checkpoint_every,
        })
    }

    fn settings(&self) -> CaffeineSettings {
        let mut s = CaffeineSettings::paper();
        s.population = self.population;
        s.generations = self.generations;
        s.max_bases = self.max_bases;
        s.seed = self.seed;
        s.stats_every = (self.generations / 10).max(1);
        s
    }

    fn grammar_config(&self, n_vars: usize) -> GrammarConfig {
        match self.grammar.as_str() {
            "rational" => GrammarConfig::rational(n_vars),
            _ => GrammarConfig::paper_full(n_vars),
        }
    }

    fn dataset(&self) -> Result<Dataset, ApiError> {
        Dataset::new(
            self.var_names.clone(),
            self.points.clone(),
            self.targets.clone(),
        )
        .map_err(ApiError::from)
    }

    fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            threads: self.threads.max(1),
            islands: self.islands.max(1),
            checkpoint_every: self.checkpoint_every,
            ..RuntimeConfig::default()
        }
    }
}

/// Terminal result of a job (alongside the controller's phase).
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Still queued/running/paused.
    Pending,
    /// Finished; the front is in the registry.
    Published {
        /// Registry id.
        model_id: String,
        /// Content-hash version.
        version: String,
        /// Front size.
        n_models: usize,
    },
    /// The run failed.
    Failed {
        /// The failure.
        message: String,
    },
    /// The run was cancelled before finishing.
    Cancelled,
}

impl JobOutcome {
    /// `true` once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobOutcome::Pending)
    }
}

/// One rendered server-sent event: the `event:` name plus its JSON
/// `data:` payload and (once published) its position in the job's
/// stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEventFrame {
    /// 1-based position in the job's event stream, stamped by
    /// `EventHub::publish` and rendered as the SSE `id:` field so a
    /// reconnecting watcher can discard frames it has already seen.
    /// `0` means unsequenced (a frame that never went through a hub,
    /// e.g. the per-subscription snapshot) and renders without an id.
    pub seq: u64,
    /// SSE `event:` field.
    pub event: &'static str,
    /// SSE `data:` field (one line of JSON).
    pub data: String,
}

impl JobEventFrame {
    /// The wire form of the frame (terminated by the SSE blank line).
    pub fn render(&self) -> String {
        if self.seq == 0 {
            format!("event: {}\ndata: {}\n\n", self.event, self.data)
        } else {
            format!(
                "id: {}\nevent: {}\ndata: {}\n\n",
                self.seq, self.event, self.data
            )
        }
    }
}

fn frame(event: &'static str, data: serde_json::Value) -> JobEventFrame {
    // Sanitized `Value`s always serialize; an empty object beats
    // panicking inside the event loop if that invariant ever breaks.
    let data = serde_json::to_string(&sanitize(data)).unwrap_or_else(|_| "{}".to_string());
    JobEventFrame {
        seq: 0,
        event,
        data,
    }
}

fn frame_for(event: &RunEvent) -> JobEventFrame {
    match event {
        RunEvent::Progress {
            island,
            stats,
            phases,
            front,
        } => frame(
            "progress",
            serde_json::json!({
                "island": island,
                "generation": stats.generation,
                "best_error": stats.best_error,
                "min_complexity": stats.min_complexity,
                "front_size": stats.front_size,
                "feasible": stats.feasible,
                "phases": serde_json::to_value(phases),
                "cache_hit_ratio": phases.cache_hit_ratio(),
                "front": serde_json::to_value(front),
            }),
        ),
        RunEvent::Migrated { generation } => {
            frame("migrated", serde_json::json!({ "generation": generation }))
        }
        RunEvent::Checkpointed {
            generation,
            duration_secs,
        } => frame(
            "checkpoint",
            serde_json::json!({ "generation": generation, "duration_secs": duration_secs }),
        ),
        RunEvent::Finished { generation } => {
            frame("finished", serde_json::json!({ "generation": generation }))
        }
    }
}

#[derive(Debug, Default)]
struct HubState {
    history: VecDeque<JobEventFrame>,
    subscribers: Vec<SyncSender<JobEventFrame>>,
    closed: bool,
    /// Sequence stamped on the last published frame (first frame is 1).
    last_seq: u64,
}

/// Broadcast of one job's event stream: every frame goes to the bounded
/// per-job history (for subscribers that arrive late) and to every live
/// subscriber. Closing the hub drops the senders, which ends every
/// subscriber's stream.
#[derive(Debug, Default)]
pub struct EventHub {
    state: Mutex<HubState>,
}

impl EventHub {
    pub(crate) fn publish(&self, f: JobEventFrame) {
        let mut st = self.state.plock();
        st.last_seq += 1;
        let f = JobEventFrame {
            seq: st.last_seq,
            ..f
        };
        if st.history.len() >= HUB_HISTORY_CAP {
            st.history.pop_front();
        }
        st.history.push_back(f.clone());
        // A subscriber whose buffer is full is lagging hopelessly (or
        // gone); drop it rather than block the run or buffer unboundedly.
        st.subscribers.retain(|tx| tx.try_send(f.clone()).is_ok());
    }

    fn close(&self) {
        let mut st = self.state.plock();
        st.closed = true;
        st.subscribers.clear(); // drops the senders; receivers see EOF
    }

    /// [`EventHub::close`] for crate-internal tests (the SSE streamer's).
    #[cfg(test)]
    pub(crate) fn close_for_tests(&self) {
        self.close();
    }

    /// Joins the stream: everything already emitted (bounded history)
    /// plus, while the job is live, a receiver for what comes next
    /// (`None` once the stream has closed).
    pub fn subscribe(&self) -> (Vec<JobEventFrame>, Option<Receiver<JobEventFrame>>) {
        let mut st = self.state.plock();
        let history: Vec<JobEventFrame> = st.history.iter().cloned().collect();
        if st.closed {
            (history, None)
        } else {
            let (tx, rx) = std::sync::mpsc::sync_channel(SUBSCRIBER_BUFFER);
            st.subscribers.push(tx);
            (history, Some(rx))
        }
    }
}

/// Emits one job's lifecycle spans into the daemon's trace store. A
/// submitted job *adopts the submitting HTTP request's trace* (same
/// trace id, the request's root span as parent), so a finished job reads
/// as one tree: HTTP accept → queued wait → running → engine phases /
/// checkpoints → publish. Re-adopted orphans have no originating request
/// and mint a fresh trace instead.
///
/// The tracer holds the trace open ([`TraceStore::hold`]) for the job's
/// whole life; [`JobTracer::finish`] records the `running` and `job`
/// spans and completes the trace, which is when tail sampling decides
/// whether to retain it.
#[derive(Debug)]
pub(crate) struct JobTracer {
    store: Arc<TraceStore>,
    /// The `job` span's own context (shared trace id, fresh span id).
    ctx: TraceContext,
    /// Pre-minted context of the `running` span so the pump thread can
    /// parent phase/checkpoint spans under it before it is recorded.
    running_ctx: TraceContext,
    /// The submitting request's root span; `None` for orphans.
    parent_span_id: Option<u64>,
    job_id: u64,
    start_unix_ns: u64,
    started: Instant,
    /// Set at admission; `None` for a job settled while still queued.
    running_started: Mutex<Option<(u64, Instant)>>,
    /// `finish` runs once: the pump and the settle paths can both reach
    /// a terminal state for the same job (e.g. a driver-spawn failure),
    /// and the trace must complete exactly once.
    finished: std::sync::atomic::AtomicBool,
}

impl JobTracer {
    fn new(store: &Arc<TraceStore>, parent: Option<TraceContext>, job_id: u64) -> Arc<JobTracer> {
        let ctx = parent.map_or_else(TraceContext::mint, |p| p.child());
        store.hold(ctx.trace_id);
        Arc::new(JobTracer {
            store: Arc::clone(store),
            running_ctx: ctx.child(),
            parent_span_id: parent.map(|p| p.span_id),
            ctx,
            job_id,
            start_unix_ns: caffeine_obs::trace::unix_ns(),
            started: Instant::now(),
            running_started: Mutex::new(None),
            finished: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The canonical 32-char hex trace id (the `GET /v1/traces/{id}` key).
    pub(crate) fn trace_id_hex(&self) -> String {
        self.ctx.trace_id_hex()
    }

    fn record(
        &self,
        name: &str,
        span_id: u64,
        parent_span_id: Option<u64>,
        start_unix_ns: u64,
        duration: Duration,
        attrs: Vec<(String, String)>,
    ) {
        self.store.record(SpanRecord {
            trace_id: self.ctx.trace_id,
            span_id,
            parent_span_id,
            name: name.to_string(),
            kind: SpanKind::Internal,
            start_unix_ns,
            duration_ns: u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX),
            attrs,
            error: None,
        });
    }

    /// Records the scheduler-wait span (admission or queued settle time).
    fn record_queued(&self, waited: Duration) {
        let waited_ns = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
        self.record(
            "queued",
            fresh_span_id(),
            Some(self.ctx.span_id),
            caffeine_obs::trace::unix_ns().saturating_sub(waited_ns),
            waited,
            Vec::new(),
        );
    }

    /// Stamps the start of the `running` span (recorded at `finish`).
    fn mark_running(&self) {
        *self.running_started.plock() = Some((caffeine_obs::trace::unix_ns(), Instant::now()));
    }

    /// Materializes one progress interval's engine-phase breakdown as
    /// child spans of `running`, laid back-to-back ending now (the
    /// breakdown only reports durations, not offsets).
    fn record_phases(&self, phases: &PhaseBreakdown) {
        let parts = [
            ("basis_eval", phases.basis_eval),
            ("linear_solve", phases.linear_solve),
            ("eval_other", phases.eval_other),
            ("selection", phases.selection),
            ("migration", phases.migration),
        ];
        let total_ns: u64 = parts
            .iter()
            .map(|(_, secs)| (secs.max(0.0) * 1e9) as u64)
            .sum();
        let mut start = caffeine_obs::trace::unix_ns().saturating_sub(total_ns);
        for (name, secs) in parts {
            if secs <= 0.0 {
                continue;
            }
            let dur = Duration::from_secs_f64(secs);
            self.record(
                name,
                fresh_span_id(),
                Some(self.running_ctx.span_id),
                start,
                dur,
                vec![("generation".into(), phases.generation.to_string())],
            );
            start = start.saturating_add((secs * 1e9) as u64);
        }
    }

    /// Records one checkpoint write as a child of `running`.
    fn record_checkpoint(&self, generation: usize, duration_secs: f64) {
        let dur = Duration::from_secs_f64(duration_secs.max(0.0));
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        self.record(
            "checkpoint",
            fresh_span_id(),
            Some(self.running_ctx.span_id),
            caffeine_obs::trace::unix_ns().saturating_sub(dur_ns),
            dur,
            vec![("generation".into(), generation.to_string())],
        );
    }

    /// Records the registry-publication span as a child of `job`.
    fn record_publish(&self, took: Duration, model_id: &str, version: &str, n_models: usize) {
        let dur_ns = u64::try_from(took.as_nanos()).unwrap_or(u64::MAX);
        self.record(
            "publish",
            fresh_span_id(),
            Some(self.ctx.span_id),
            caffeine_obs::trace::unix_ns().saturating_sub(dur_ns),
            took,
            vec![
                ("model.id".into(), model_id.to_string()),
                ("model.version".into(), version.to_string()),
                ("n_models".into(), n_models.to_string()),
            ],
        );
    }

    /// Records the `running` span (when the job ever ran) and the root
    /// `job` span, then completes the trace — the tail-sampling point.
    /// Idempotent: only the first caller emits anything.
    fn finish(&self, state: &'static str, error: Option<String>) {
        if self
            .finished
            .swap(true, std::sync::atomic::Ordering::SeqCst)
        {
            return;
        }
        if let Some((unix, started)) = *self.running_started.plock() {
            self.record(
                "running",
                self.running_ctx.span_id,
                Some(self.ctx.span_id),
                unix,
                started.elapsed(),
                Vec::new(),
            );
        }
        self.store.record(SpanRecord {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_span_id: self.parent_span_id,
            name: "job".to_string(),
            kind: SpanKind::Internal,
            start_unix_ns: self.start_unix_ns,
            duration_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            attrs: vec![
                ("job.id".into(), self.job_id.to_string()),
                ("job.state".into(), state.to_string()),
            ],
            error,
        });
        // Rendezvous with the submitting request: a job fast enough to
        // outrun its own submit response must not complete the trace
        // before the request's root span lands in it. Orphans (re-adopted
        // after a restart) have no request to wait for.
        if self.parent_span_id.is_some() {
            self.store.finish_held(self.ctx.trace_id);
        } else {
            self.store.finish(self.ctx.trace_id);
        }
    }

    /// The job never took over the trace (submission failed after the
    /// hold): give the trace back to the request path and flush any
    /// stray spans already recorded. An empty pending trace simply
    /// evaporates; the request's root span (when there is one) then
    /// completes as its own trace on the normal request path.
    fn abandon(&self) {
        self.store.release(self.ctx.trace_id);
        self.store.finish(self.ctx.trace_id);
    }
}

/// Maps a terminal outcome to the (`job.state` attribute, error) pair
/// its trace records.
fn trace_terminal(outcome: &JobOutcome) -> (&'static str, Option<String>) {
    match outcome {
        JobOutcome::Pending => ("pending", None),
        JobOutcome::Published { .. } => ("finished", None),
        JobOutcome::Cancelled => ("cancelled", None),
        JobOutcome::Failed { message } => ("failed", Some(message.clone())),
    }
}

/// One job's shared record.
#[derive(Debug)]
pub struct JobEntry {
    /// Job id.
    pub id: u64,
    /// Registry id the front publishes under.
    pub model_id: String,
    /// Pause/cancel/progress handle.
    pub controller: RunController,
    /// `true` when the job was re-adopted from a checkpoint at startup.
    pub resumed: bool,
    /// The job's SSE event stream.
    pub events: Arc<EventHub>,
    /// Terminal outcome (behind a lock; `Pending` until the thread ends).
    outcome: Mutex<JobOutcome>,
    handle: Mutex<Option<JoinHandle<()>>>,
    /// Set by the draining shutdown: the cancellation is an interruption,
    /// not a user decision, so the spec + checkpoint must survive for the
    /// next daemon to re-adopt.
    preserve_files: std::sync::atomic::AtomicBool,
    /// 1-based position in the admission queue; 0 once admitted (or when
    /// the job never had to wait). Maintained by the scheduler.
    queue_position: AtomicUsize,
    /// Lifecycle-span emitter, set once at submission/adoption when the
    /// daemon has a trace store (absent in bare test managers).
    tracer: OnceLock<Arc<JobTracer>>,
}

impl JobEntry {
    fn new(id: u64, model_id: String, resumed: bool) -> Arc<JobEntry> {
        Arc::new(JobEntry {
            id,
            model_id,
            controller: RunController::new(),
            resumed,
            events: Arc::new(EventHub::default()),
            outcome: Mutex::new(JobOutcome::Pending),
            handle: Mutex::new(None),
            preserve_files: std::sync::atomic::AtomicBool::new(false),
            queue_position: AtomicUsize::new(0),
            tracer: OnceLock::new(),
        })
    }

    /// The job's 32-char hex trace id, when the daemon traces jobs.
    pub fn trace_id(&self) -> Option<String> {
        self.tracer.get().map(|t| t.trace_id_hex())
    }

    /// A bare entry (live hub, pending outcome) for crate-internal tests.
    #[cfg(test)]
    pub(crate) fn test_entry(id: u64, model_id: String) -> Arc<JobEntry> {
        JobEntry::new(id, model_id, false)
    }

    /// The job's 1-based admission-queue position, or `None` once it has
    /// been admitted to a running slot (or reached a terminal state).
    pub fn queue_position(&self) -> Option<usize> {
        match self.queue_position.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// The current outcome.
    pub fn outcome(&self) -> JobOutcome {
        self.outcome.plock().clone()
    }

    /// Blocks until the job's thread exits (tests and shutdown).
    pub fn join(&self) {
        if let Some(h) = self.handle.plock().take() {
            let _ = h.join();
        }
    }

    /// The state label for one consistent (outcome, phase, queued)
    /// observation.
    fn state_label(
        outcome: &JobOutcome,
        phase: caffeine_runtime::RunPhase,
        queued: bool,
    ) -> &'static str {
        match outcome {
            // A job waiting for a running slot has no driver yet; its
            // controller still says `running` (the initial phase), so the
            // queue flag must win while the outcome is open.
            JobOutcome::Pending if queued => "queued",
            JobOutcome::Pending => match phase {
                // The engine finished its generations but the harvest /
                // registry publication has not landed yet: clients that
                // see `finished` must be able to read `result`, so hold
                // the label back until the outcome is recorded.
                caffeine_runtime::RunPhase::Finished => "running",
                phase => phase.as_str(),
            },
            JobOutcome::Published { .. } => "finished",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::Cancelled => "cancelled",
        }
    }

    /// The lowercase state label: `queued` until admission, then the
    /// controller phase until a terminal outcome overrides it.
    pub fn state(&self) -> &'static str {
        JobEntry::state_label(
            &self.outcome(),
            self.controller.snapshot().phase,
            self.queue_position().is_some(),
        )
    }

    /// Renders the job as its status JSON value. Outcome and progress are
    /// observed once each, so the document's `state`, `progress`, and
    /// `result`/`error` fields are mutually consistent.
    pub fn status_json(&self) -> serde_json::Value {
        let snapshot = self.controller.snapshot();
        let outcome = self.outcome();
        let queue_position = self.queue_position();
        let mut body = serde_json::json!({
            "id": self.id,
            "model_id": self.model_id.clone(),
            "resumed": self.resumed,
            "state": JobEntry::state_label(&outcome, snapshot.phase, queue_position.is_some()),
            "progress": serde_json::to_value(&snapshot),
        });
        if let (Some(trace_id), serde_json::Value::Object(m)) = (self.trace_id(), &mut body) {
            m.insert("trace_id".into(), serde_json::Value::String(trace_id));
        }
        // Only a still-pending job is truly queued; a just-settled cancel
        // may not have cleared its position yet.
        if matches!(outcome, JobOutcome::Pending) {
            if let (Some(pos), serde_json::Value::Object(m)) = (queue_position, &mut body) {
                m.insert("queue_position".into(), serde_json::json!(pos));
            }
        }
        match outcome {
            JobOutcome::Pending | JobOutcome::Cancelled => {}
            JobOutcome::Published {
                model_id,
                version,
                n_models,
            } => {
                if let serde_json::Value::Object(m) = &mut body {
                    m.insert(
                        "result".into(),
                        serde_json::json!({
                            "model_id": model_id,
                            "version": version,
                            "n_models": n_models,
                        }),
                    );
                }
            }
            JobOutcome::Failed { message } => {
                if let serde_json::Value::Object(m) = &mut body {
                    m.insert("error".into(), serde_json::Value::String(message));
                }
            }
        }
        body
    }
}

/// Why one orphaned job could not be re-adopted: `Unusable` files are
/// surfaced as a failed record and cleaned up; `Transient` failures (a
/// full store, a thread that would not spawn) keep the files on disk so
/// a later restart can still resume the job.
#[derive(Debug)]
enum AdoptFailure {
    Unusable(String),
    Transient(String),
}

/// Removes a checkpoint together with its atomic-write staging file —
/// a daemon killed mid-write leaves `<name>.partial` behind.
fn remove_checkpoint_files(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut staged = path.as_os_str().to_owned();
    staged.push(".partial");
    let _ = std::fs::remove_file(PathBuf::from(staged));
}

/// Everything a queued job needs to run once a slot frees: the prepared
/// (validated) runner, its data, and where to publish/persist. Held by
/// the scheduler while the job waits so admission commits no resources
/// beyond memory.
struct PreparedRun {
    runner: IslandRunner,
    data: Dataset,
    var_names: Vec<String>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    spec_path: Option<PathBuf>,
    ckpt_path: Option<PathBuf>,
}

/// One admission-queue element.
struct QueuedJob {
    entry: Arc<JobEntry>,
    run: PreparedRun,
    queued_at: Instant,
}

struct SchedState {
    queue: VecDeque<QueuedJob>,
    /// Jobs admitted to a running slot whose driver has not yet reached
    /// a terminal outcome.
    running: usize,
}

/// FIFO admission over a bounded set of running slots. Submissions (and
/// re-adopted orphans) enqueue; a slot frees when a driver reaches a
/// terminal outcome, which immediately admits the head of the queue.
/// Shared with every driver thread so slot release needs no manager.
struct Scheduler {
    state: Mutex<SchedState>,
    max_running: usize,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.plock();
        f.debug_struct("Scheduler")
            .field("max_running", &self.max_running)
            .field("running", &st.running)
            .field("queued", &st.queue.len())
            .finish()
    }
}

impl Scheduler {
    fn new(max_running: usize) -> Arc<Scheduler> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                running: 0,
            }),
            max_running: max_running.max(1),
        })
    }

    /// The current queue depth.
    fn depth(&self) -> usize {
        self.state.plock().queue.len()
    }

    /// Admits the job into a running slot immediately when one is free
    /// (and nothing is already waiting — FIFO), otherwise queues it.
    ///
    /// # Errors
    ///
    /// Propagates a thread-spawn failure for an immediately-admitted job;
    /// queued jobs cannot fail here.
    fn enqueue(self: &Arc<Scheduler>, job: QueuedJob) -> Result<(), ApiError> {
        let mut st = self.state.plock();
        if st.running < self.max_running && st.queue.is_empty() {
            st.running += 1;
            let metrics = Arc::clone(&job.run.metrics);
            let outcome = spawn_admitted(self, &job.entry, job.run, job.queued_at.elapsed());
            if outcome.is_err() {
                st.running -= 1;
            }
            metrics.set_jobs_queued(st.queue.len());
            return outcome;
        }
        job.entry
            .queue_position
            .store(st.queue.len() + 1, Ordering::Relaxed);
        let metrics = Arc::clone(&job.run.metrics);
        st.queue.push_back(job);
        metrics.set_jobs_queued(st.queue.len());
        Ok(())
    }

    /// Frees one running slot (a driver reached a terminal outcome) and
    /// admits queued jobs while slots remain.
    fn release_slot(self: &Arc<Scheduler>) {
        let mut st = self.state.plock();
        st.running = st.running.saturating_sub(1);
        while st.running < self.max_running {
            let Some(job) = st.queue.pop_front() else {
                break;
            };
            job.entry.queue_position.store(0, Ordering::Relaxed);
            let waited = job.queued_at.elapsed();
            job.run.metrics.observe_queue_wait(waited);
            job.run.metrics.set_jobs_queued(st.queue.len());
            st.running += 1;
            let entry = Arc::clone(&job.entry);
            let metrics = Arc::clone(&job.run.metrics);
            if let Err(e) = spawn_admitted(self, &entry, job.run, waited) {
                // The slot the job would have used frees again; surface
                // the job as failed rather than losing it silently.
                st.running -= 1;
                let outcome = JobOutcome::Failed { message: e.message };
                let (state, error) = trace_terminal(&outcome);
                *entry.outcome.plock() = outcome;
                entry.events.publish(frame("done", entry.status_json()));
                entry.events.close();
                if let Some(tracer) = entry.tracer.get() {
                    tracer.finish(state, error);
                }
                metrics.observe_job_finished();
            }
        }
        Scheduler::renumber(&st);
    }

    /// Removes a not-yet-admitted job from the queue (cancellation),
    /// returning it for the caller to settle. `None` when the job was
    /// already admitted (or never queued).
    fn remove_queued(&self, id: u64) -> Option<QueuedJob> {
        let mut st = self.state.plock();
        let idx = st.queue.iter().position(|j| j.entry.id == id)?;
        let job = st.queue.remove(idx)?;
        Scheduler::renumber(&st);
        job.run.metrics.set_jobs_queued(st.queue.len());
        Some(job)
    }

    /// Empties the whole queue (draining shutdown), returning the jobs
    /// for the caller to settle as interrupted.
    fn take_all_queued(&self) -> Vec<QueuedJob> {
        let mut st = self.state.plock();
        let jobs: Vec<QueuedJob> = st.queue.drain(..).collect();
        if let Some(job) = jobs.first() {
            job.run.metrics.set_jobs_queued(0);
        }
        jobs
    }

    /// Rewrites every queued entry's 1-based position after a mutation.
    fn renumber(st: &SchedState) {
        for (i, job) in st.queue.iter().enumerate() {
            job.entry.queue_position.store(i + 1, Ordering::Relaxed);
        }
    }
}

/// Spawns an admitted job's driver thread (stepping the runner to
/// completion and publishing the result) and pump thread (fanning run
/// events out to the job's SSE hub). The driver releases its scheduler
/// slot on exit, which admits the next queued job.
fn spawn_admitted(
    scheduler: &Arc<Scheduler>,
    entry: &Arc<JobEntry>,
    run: PreparedRun,
    waited: Duration,
) -> Result<(), ApiError> {
    let PreparedRun {
        mut runner,
        data,
        var_names,
        registry,
        metrics,
        spec_path,
        ckpt_path,
    } = run;
    if let Some(tracer) = entry.tracer.get() {
        tracer.record_queued(waited);
        tracer.mark_running();
    }
    let (tx, rx) = std::sync::mpsc::channel();
    runner.set_events(tx);
    let pump_entry = Arc::clone(entry);
    let pump_metrics = Arc::clone(&metrics);
    let pump_tracer = entry.tracer.get().cloned();
    std::thread::Builder::new()
        .name(format!("serve-job-{}-events", entry.id))
        .spawn(move || {
            for event in rx {
                match &event {
                    RunEvent::Progress { island, phases, .. } => {
                        pump_metrics.observe_engine_phases(phases);
                        // One breakdown is shared by every island's
                        // Progress in a generation; island 0's copy
                        // becomes the trace's phase spans.
                        if *island == 0 {
                            if let Some(tracer) = &pump_tracer {
                                tracer.record_phases(phases);
                            }
                        }
                    }
                    RunEvent::Checkpointed {
                        generation,
                        duration_secs,
                    } => {
                        if let Some(tracer) = &pump_tracer {
                            tracer.record_checkpoint(*generation, *duration_secs);
                        }
                    }
                    _ => {}
                }
                pump_entry.events.publish(frame_for(&event));
            }
            // The channel closes when the runner is dropped, which the
            // driver does only after recording the terminal outcome —
            // so this final frame always carries the final state.
            pump_entry
                .events
                .publish(frame("done", pump_entry.status_json()));
            pump_entry.events.close();
            // Same ordering makes this the one safe place to complete
            // the job's trace: every span (the driver's publish span
            // included) has been recorded by now.
            if let Some(tracer) = &pump_tracer {
                let (state, error) = trace_terminal(&pump_entry.outcome());
                tracer.finish(state, error);
            }
        })
        .map_err(|e| ApiError::internal(format!("cannot spawn event pump: {e}")))?;

    let id = entry.id;
    let model_id = entry.model_id.clone();
    let controller = entry.controller.clone();
    let thread_entry = Arc::clone(entry);
    let scheduler = Arc::clone(scheduler);
    let handle = std::thread::Builder::new()
        .name(format!("serve-job-{id}"))
        .spawn(move || {
            let outcome = match controller.drive(&mut runner, &data) {
                Ok(Some(result)) => {
                    let n_models = result.models.len();
                    let publish_started = Instant::now();
                    match ModelArtifact::new(var_names, result.models)
                        .map_err(ApiError::from)
                        .and_then(|artifact| registry.publish(&model_id, artifact))
                    {
                        Ok((version, _created)) => {
                            if let Some(tracer) = thread_entry.tracer.get() {
                                tracer.record_publish(
                                    publish_started.elapsed(),
                                    &model_id,
                                    &version,
                                    n_models,
                                );
                            }
                            JobOutcome::Published {
                                model_id,
                                version,
                                n_models,
                            }
                        }
                        Err(e) => JobOutcome::Failed { message: e.message },
                    }
                }
                Ok(None) => JobOutcome::Cancelled,
                Err(e) => JobOutcome::Failed {
                    message: e.to_string(),
                },
            };
            let interrupted = matches!(outcome, JobOutcome::Cancelled)
                && thread_entry
                    .preserve_files
                    .load(std::sync::atomic::Ordering::Relaxed);
            *thread_entry.outcome.plock() = outcome;
            // Terminal: the spec/checkpoint pair has served its
            // purpose (publication happened or was deliberately
            // abandoned); removing it keeps restarts from re-running
            // finished work. The one exception is a drain-cancelled
            // job — that interruption must stay re-adoptable.
            if !interrupted {
                if let Some(path) = spec_path {
                    let _ = std::fs::remove_file(path);
                }
                if let Some(path) = ckpt_path {
                    remove_checkpoint_files(&path);
                }
            }
            // The pump (not this thread) completes the trace: it drains
            // the event channel strictly after this thread drops the
            // runner, so every phase/checkpoint span lands first.
            metrics.observe_job_finished();
            // This job's slot frees; the queue head (if any) starts now.
            scheduler.release_slot();
            drop(runner); // last event sender: ends the pump thread
        })
        .map_err(|e| ApiError::internal(format!("cannot spawn job thread: {e}")))?;
    *entry.handle.plock() = Some(handle);
    Ok(())
}

/// Spawns, tracks, evicts, and re-adopts jobs. The store is bounded:
/// submissions beyond `max_jobs` first evict terminal records
/// (oldest-first) and are rejected with 429 when every slot holds a live
/// job. Within the store, a FIFO admission scheduler bounds how many jobs
/// *run* concurrently; the rest wait in the `queued` state.
#[derive(Debug)]
pub struct JobManager {
    jobs: Mutex<BTreeMap<u64, Arc<JobEntry>>>,
    next_id: AtomicU64,
    /// Directory for job checkpoints + specs, when persistence is
    /// configured.
    checkpoint_dir: Option<PathBuf>,
    max_jobs: usize,
    scheduler: Arc<Scheduler>,
    /// Job-lifecycle spans record here when the daemon traces requests;
    /// bare managers (tests) leave it unset and jobs run untraced.
    traces: Option<Arc<TraceStore>>,
}

impl JobManager {
    /// A manager persisting job state under `checkpoint_dir` (when
    /// given), holding at most `max_jobs` records with at most
    /// `max_running` of them running concurrently (both clamped to ≥ 1).
    pub fn new(checkpoint_dir: Option<PathBuf>, max_jobs: usize, max_running: usize) -> JobManager {
        JobManager {
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            checkpoint_dir,
            max_jobs: max_jobs.max(1),
            scheduler: Scheduler::new(max_running),
            traces: None,
        }
    }

    /// Attaches the trace store job-lifecycle spans record into.
    #[must_use]
    pub fn with_traces(mut self, traces: Arc<TraceStore>) -> JobManager {
        self.traces = Some(traces);
        self
    }

    /// The configured record capacity.
    pub fn capacity(&self) -> usize {
        self.max_jobs
    }

    /// The configured bound on concurrently running jobs.
    pub fn max_running(&self) -> usize {
        self.scheduler.max_running
    }

    /// The current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.depth()
    }

    fn spec_path(&self, id: u64) -> Option<PathBuf> {
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("job-{id}.spec.json")))
    }

    fn ckpt_path(&self, id: u64) -> Option<PathBuf> {
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("job-{id}.ckpt")))
    }

    /// Validates a spec and hands the prepared run to the admission
    /// scheduler: it starts immediately when a running slot is free,
    /// otherwise the returned entry is in the `queued` state.
    ///
    /// # Errors
    ///
    /// 400/422 for specs the engine's own validation rejects, 429 (with
    /// a queue-depth-derived `Retry-After`) when the job store is full
    /// of live jobs.
    pub fn submit(
        &self,
        spec: JobSpec,
        registry: Arc<ModelRegistry>,
        metrics: Arc<Metrics>,
    ) -> Result<Arc<JobEntry>, ApiError> {
        self.submit_traced(spec, registry, metrics, None)
    }

    /// [`JobManager::submit`] with the submitting request's trace
    /// context: the job adopts that trace (same trace id, the request's
    /// root span as the `job` span's parent), so the whole lifecycle
    /// reads as one tree. `None` runs the job untraced (or, for adopted
    /// orphans, on a freshly minted trace via [`JobManager::adopt_orphans`]).
    pub fn submit_traced(
        &self,
        spec: JobSpec,
        registry: Arc<ModelRegistry>,
        metrics: Arc<Metrics>,
        parent: Option<TraceContext>,
    ) -> Result<Arc<JobEntry>, ApiError> {
        let data = spec.dataset()?;
        let settings = spec.settings();
        let grammar = spec.grammar_config(data.n_vars());
        let mut runner = IslandRunner::new(settings, grammar, spec.runtime_config(), &data)
            .map_err(ApiError::from)?;

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let model_id = spec.name.clone().unwrap_or_else(|| format!("job-{id}"));
        if let Some(dir) = &self.checkpoint_dir {
            if std::fs::create_dir_all(dir).is_ok() {
                if let Some(path) = self.spec_path(id) {
                    // Specs always serialize; a job without a persisted
                    // spec is merely not adoptable after restart, which
                    // beats failing the submission.
                    if let Ok(body) = serde_json::to_string(&spec.to_json()) {
                        let _ = std::fs::write(path, body);
                    }
                }
                runner.set_checkpoint_path(dir.join(format!("job-{id}.ckpt")));
            }
        }

        let entry = JobEntry::new(id, model_id, false);
        if let Some(traces) = &self.traces {
            let _ = entry.tracer.set(JobTracer::new(traces, parent, id));
        }
        self.insert_bounded(Arc::clone(&entry), &metrics)
            .inspect_err(|_| {
                self.remove_job_files(id);
                if let Some(tracer) = entry.tracer.get() {
                    tracer.abandon();
                }
            })?;
        let run = PreparedRun {
            runner,
            data,
            var_names: spec.var_names.clone(),
            registry,
            metrics,
            spec_path: self.spec_path(id),
            ckpt_path: self.ckpt_path(id),
        };
        self.scheduler
            .enqueue(QueuedJob {
                entry: Arc::clone(&entry),
                run,
                queued_at: Instant::now(),
            })
            .inspect_err(|_| {
                self.jobs.plock().remove(&id);
                self.remove_job_files(id);
                if let Some(tracer) = entry.tracer.get() {
                    tracer.abandon();
                }
            })?;
        Ok(entry)
    }

    /// Inserts a record, evicting terminal ones (oldest-first) to stay
    /// within capacity.
    ///
    /// # Errors
    ///
    /// 429 when every slot holds a live (non-terminal) job.
    fn insert_bounded(&self, entry: Arc<JobEntry>, metrics: &Metrics) -> Result<(), ApiError> {
        let mut jobs = self.jobs.plock();
        if jobs.len() >= self.max_jobs {
            let terminal: Vec<u64> = jobs
                .iter()
                .filter(|(_, e)| e.outcome().is_terminal())
                .map(|(&id, _)| id)
                .collect();
            for id in terminal {
                if jobs.len() < self.max_jobs {
                    break;
                }
                if let Some(evicted) = jobs.remove(&id) {
                    evicted.join(); // the thread has finished; reap it
                    metrics.observe_job_evicted();
                }
            }
        }
        if jobs.len() >= self.max_jobs {
            // Retry-After scales with how much work is already waiting:
            // a deep queue means a freed record is further away.
            return Err(ApiError::too_many_jobs(format!(
                "job store is full ({} live jobs, capacity {}); retry when one finishes or \
                 cancel one",
                jobs.len(),
                self.max_jobs
            ))
            .with_retry_after(1 + self.scheduler.depth() as u64));
        }
        jobs.insert(entry.id, entry);
        Ok(())
    }

    fn remove_job_files(&self, id: u64) {
        if let Some(path) = self.spec_path(id) {
            let _ = std::fs::remove_file(path);
        }
        if let Some(path) = self.ckpt_path(id) {
            remove_checkpoint_files(&path);
        }
    }

    /// Settles a job that never got a driver thread (cancelled while
    /// queued, or drained): records the outcome, emits the terminal
    /// `done` frame, and cleans up files unless the interruption must
    /// stay re-adoptable.
    fn settle_unstarted(&self, job: QueuedJob, outcome: JobOutcome) {
        let entry = job.entry;
        let interrupted = matches!(outcome, JobOutcome::Cancelled)
            && entry
                .preserve_files
                .load(std::sync::atomic::Ordering::Relaxed);
        let (trace_state, trace_error) = trace_terminal(&outcome);
        *entry.outcome.plock() = outcome;
        entry.queue_position.store(0, Ordering::Relaxed);
        if !interrupted {
            self.remove_job_files(entry.id);
        }
        entry.events.publish(frame("done", entry.status_json()));
        entry.events.close();
        // No driver or pump ever existed; the settle path completes the
        // trace (queued wait included) itself.
        if let Some(tracer) = entry.tracer.get() {
            tracer.record_queued(job.queued_at.elapsed());
            tracer.finish(trace_state, trace_error);
        }
        job.run.metrics.observe_job_finished();
    }

    /// Scans the checkpoint directory for jobs a previous daemon left
    /// behind and re-adopts them: resumed from their checkpoint when one
    /// exists, restarted from scratch when the interruption predated the
    /// first checkpoint write, surfaced as failed records when the files
    /// are unusable. Returns the number of records brought back (visible
    /// in `GET /v1/jobs`); jobs that do not fit the bounded store keep
    /// their files on disk and are skipped, not destroyed.
    pub fn adopt_orphans(&self, registry: &Arc<ModelRegistry>, metrics: &Arc<Metrics>) -> usize {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return 0;
        };
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return 0;
        };
        let mut ids: Vec<u64> = entries
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                name.strip_prefix("job-")?
                    .strip_suffix(".spec.json")?
                    .parse()
                    .ok()
            })
            .collect();
        ids.sort_unstable();
        let mut adopted = 0;
        for id in ids {
            self.next_id.fetch_max(id + 1, Ordering::Relaxed);
            match self.adopt_one(id, registry, metrics) {
                Ok(()) => {
                    adopted += 1;
                    metrics.observe_job_adopted();
                }
                Err(AdoptFailure::Transient(message)) => {
                    // No room (or no thread) for this job right now; its
                    // files are intact, so a later restart — or a larger
                    // --max-jobs — can still resume it.
                    eprintln!("caffeine-serve: job {id} not re-adopted ({message}); its spec/checkpoint were kept");
                }
                Err(AdoptFailure::Unusable(message)) => {
                    // Surface the wreckage as a failed job instead of
                    // orphaning (or endlessly re-surfacing) it. The files
                    // are only removed once the record is actually
                    // visible; a full store keeps them for the next try.
                    let entry = JobEntry::new(id, format!("job-{id}"), true);
                    *entry.outcome.plock() = JobOutcome::Failed { message };
                    entry.events.publish(frame("done", entry.status_json()));
                    entry.events.close();
                    if self.insert_bounded(entry, metrics).is_ok() {
                        self.remove_job_files(id);
                        adopted += 1;
                    }
                }
            }
        }
        adopted
    }

    fn adopt_one(
        &self,
        id: u64,
        registry: &Arc<ModelRegistry>,
        metrics: &Arc<Metrics>,
    ) -> Result<(), AdoptFailure> {
        let unusable = AdoptFailure::Unusable;
        // Adoption is only attempted when a checkpoint dir is configured,
        // so these are always `Some`; report instead of asserting.
        let (Some(spec_path), Some(ckpt_path)) = (self.spec_path(id), self.ckpt_path(id)) else {
            return Err(unusable("no checkpoint dir configured".to_string()));
        };
        let body = std::fs::read(&spec_path)
            .map_err(|e| unusable(format!("cannot read {}: {e}", spec_path.display())))?;
        let spec = JobSpec::from_json(&body).map_err(|e| {
            unusable(format!(
                "spec {} unusable: {}",
                spec_path.display(),
                e.message
            ))
        })?;
        let data = spec.dataset().map_err(|e| unusable(e.message))?;
        let mut runner = if ckpt_path.exists() {
            let checkpoint =
                RuntimeCheckpoint::load(&ckpt_path).map_err(|e| unusable(e.to_string()))?;
            IslandRunner::from_checkpoint(checkpoint, &data).map_err(|e| unusable(e.to_string()))?
        } else {
            // Interrupted before the first checkpoint write: restart.
            IslandRunner::new(
                spec.settings(),
                spec.grammar_config(data.n_vars()),
                spec.runtime_config(),
                &data,
            )
            .map_err(|e| unusable(e.to_string()))?
        };
        runner.set_checkpoint_path(&ckpt_path);
        let model_id = spec.name.clone().unwrap_or_else(|| format!("job-{id}"));
        let entry = JobEntry::new(id, model_id, true);
        // An orphan has no originating request to inherit a trace from;
        // it gets a freshly minted one.
        if let Some(traces) = &self.traces {
            let _ = entry.tracer.set(JobTracer::new(traces, None, id));
        }
        self.insert_bounded(Arc::clone(&entry), metrics)
            .map_err(|e| {
                if let Some(tracer) = entry.tracer.get() {
                    tracer.abandon();
                }
                AdoptFailure::Transient(e.message)
            })?;
        // Orphans take the same admission path as fresh submissions: a
        // restart with more interrupted jobs than running slots resumes
        // them a few at a time instead of stampeding.
        let run = PreparedRun {
            runner,
            data,
            var_names: spec.var_names.clone(),
            registry: Arc::clone(registry),
            metrics: Arc::clone(metrics),
            spec_path: Some(spec_path),
            ckpt_path: Some(ckpt_path),
        };
        self.scheduler
            .enqueue(QueuedJob {
                entry: Arc::clone(&entry),
                run,
                queued_at: Instant::now(),
            })
            .map_err(|e| {
                self.jobs.plock().remove(&id);
                if let Some(tracer) = entry.tracer.get() {
                    tracer.abandon();
                }
                AdoptFailure::Transient(e.message)
            })
    }

    /// Looks up a job.
    pub fn get(&self, id: u64) -> Option<Arc<JobEntry>> {
        self.jobs.plock().get(&id).cloned()
    }

    /// Requests cancellation; `false` when the job does not exist. A job
    /// still waiting in the admission queue settles synchronously (it
    /// has no driver thread to ask); a running job's cancel lands
    /// between generations as before.
    pub fn cancel(&self, id: u64) -> bool {
        match self.get(id) {
            Some(entry) => {
                if let Some(job) = self.scheduler.remove_queued(id) {
                    self.settle_unstarted(job, JobOutcome::Cancelled);
                    return true;
                }
                entry.controller.cancel();
                true
            }
            None => false,
        }
    }

    /// Status JSON for every job in id order, optionally filtered to one
    /// state label (`queued`, `running`, `paused`, `finished`, `failed`,
    /// `cancelled`).
    pub fn list_json(&self, state: Option<&str>) -> Vec<serde_json::Value> {
        let jobs: Vec<Arc<JobEntry>> = self.jobs.plock().values().cloned().collect();
        jobs.iter()
            .map(|j| j.status_json())
            // Filter on the rendered document so the state tested is the
            // state returned (a second observation could differ).
            .filter(|doc| state.is_none_or(|s| doc["state"].as_str() == Some(s)))
            .collect()
    }

    /// Cancels every job and joins their threads (graceful shutdown).
    /// Unlike a client's `DELETE`, draining is an interruption: each
    /// cancelled job — queued or running — keeps its on-disk spec (+
    /// checkpoint) so the next daemon on this model dir re-adopts and
    /// finishes it.
    pub fn drain(&self) {
        let jobs: Vec<Arc<JobEntry>> = self.jobs.plock().values().cloned().collect();
        for job in &jobs {
            job.preserve_files
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
        // Empty the queue first so finishing drivers cannot admit new
        // runs mid-drain; queued jobs settle as interrupted (files kept).
        for queued in self.scheduler.take_all_queued() {
            self.settle_unstarted(queued, JobOutcome::Cancelled);
        }
        for job in &jobs {
            job.controller.cancel();
        }
        for job in &jobs {
            job.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> serde_json::Value {
        let points: Vec<Vec<f64>> = (1..=16).map(|i| vec![f64::from(i) * 0.5]).collect();
        let targets: Vec<f64> = points.iter().map(|p| 3.0 / p[0]).collect();
        serde_json::json!({
            "name": "tiny",
            "var_names": ["x0"],
            "points": points,
            "targets": targets,
            "population": 16,
            "generations": 4,
            "max_bases": 4,
            "grammar": "rational",
        })
    }

    fn body(v: &serde_json::Value) -> Vec<u8> {
        serde_json::to_string(v).unwrap().into_bytes()
    }

    fn manager() -> (JobManager, Arc<ModelRegistry>, Arc<Metrics>) {
        (
            JobManager::new(None, 64, 8),
            Arc::new(ModelRegistry::in_memory()),
            Arc::new(Metrics::new()),
        )
    }

    #[test]
    fn spec_parses_with_defaults_and_rejects_garbage() {
        let spec = JobSpec::from_json(&body(&tiny_spec())).unwrap();
        assert_eq!(spec.population, 16);
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.islands, 1);
        assert_eq!(spec.checkpoint_every, 10);
        assert!(JobSpec::from_json(b"not json").is_err());
        assert!(JobSpec::from_json(b"{}").is_err());
        let mut missing_targets = tiny_spec();
        if let serde_json::Value::Object(m) = &mut missing_targets {
            m.insert("targets".into(), serde_json::Value::Null);
        }
        let err = JobSpec::from_json(&body(&missing_targets)).unwrap_err();
        assert!(err.message.contains("targets"), "{}", err.message);
        let mut bad_name = tiny_spec();
        if let serde_json::Value::Object(m) = &mut bad_name {
            m.insert("name".into(), serde_json::Value::String("../x".into()));
        }
        assert_eq!(
            JobSpec::from_json(&body(&bad_name)).unwrap_err().status,
            400
        );
    }

    #[test]
    fn spec_round_trips_through_its_persisted_form() {
        let spec = JobSpec::from_json(&body(&tiny_spec())).unwrap();
        let persisted = serde_json::to_string(&spec.to_json()).unwrap();
        let reread = JobSpec::from_json(persisted.as_bytes()).unwrap();
        assert_eq!(spec, reread);
        // Anonymous jobs round-trip the absent name too.
        let mut anon = tiny_spec();
        if let serde_json::Value::Object(m) = &mut anon {
            m.remove("name");
        }
        let spec = JobSpec::from_json(&body(&anon)).unwrap();
        let persisted = serde_json::to_string(&spec.to_json()).unwrap();
        assert_eq!(spec, JobSpec::from_json(persisted.as_bytes()).unwrap());
    }

    #[test]
    fn job_runs_to_publication() {
        let (manager, registry, metrics) = manager();
        let spec = JobSpec::from_json(&body(&tiny_spec())).unwrap();
        let entry = manager
            .submit(spec, Arc::clone(&registry), Arc::clone(&metrics))
            .unwrap();
        entry.join();
        match entry.outcome() {
            JobOutcome::Published {
                model_id, version, ..
            } => {
                assert_eq!(model_id, "tiny");
                assert_eq!(registry.get("tiny", None).unwrap().version, version);
            }
            other => panic!("expected publication, got {other:?}"),
        }
        let status = entry.status_json();
        assert_eq!(status["state"], "finished");
        assert_eq!(status["resumed"], false);
        assert!(status["result"]["n_models"].as_u64().unwrap() > 0);
    }

    #[test]
    fn mismatched_shapes_are_rejected_up_front() {
        let (manager, registry, metrics) = manager();
        let mut bad = tiny_spec();
        if let serde_json::Value::Object(m) = &mut bad {
            m.insert("targets".into(), serde_json::json!([1.0, 2.0]));
        }
        let spec = JobSpec::from_json(&body(&bad)).unwrap();
        let err = manager.submit(spec, registry, metrics).unwrap_err();
        assert_eq!(err.status, 400, "{}", err.message);
    }

    #[test]
    fn cancellation_is_observable() {
        let (manager, registry, metrics) = manager();
        let mut long = tiny_spec();
        if let serde_json::Value::Object(m) = &mut long {
            m.insert("generations".into(), serde_json::json!(100_000));
        }
        let spec = JobSpec::from_json(&body(&long)).unwrap();
        let entry = manager.submit(spec, registry, metrics).unwrap();
        assert!(manager.cancel(entry.id));
        entry.join();
        assert_eq!(entry.outcome(), JobOutcome::Cancelled);
        assert_eq!(entry.status_json()["state"], "cancelled");
        assert!(!manager.cancel(9999));
    }

    #[test]
    fn event_hub_replays_history_and_closes() {
        let hub = EventHub::default();
        hub.publish(frame("progress", serde_json::json!({"generation": 1})));
        hub.publish(frame("progress", serde_json::json!({"generation": 2})));
        let (history, live) = hub.subscribe();
        assert_eq!(history.len(), 2);
        assert!(live.is_some());
        let rx = live.unwrap();
        hub.publish(frame("done", serde_json::json!({})));
        assert_eq!(rx.recv().unwrap().event, "done");
        hub.close();
        assert!(rx.recv().is_err(), "closed hub ends the stream");
        let (history, live) = hub.subscribe();
        assert_eq!(history.len(), 3);
        assert!(live.is_none(), "closed hub yields history only");
    }

    #[test]
    fn event_hub_history_is_bounded() {
        let hub = EventHub::default();
        for i in 0..(HUB_HISTORY_CAP + 10) {
            hub.publish(frame("progress", serde_json::json!({ "generation": i })));
        }
        let (history, _) = hub.subscribe();
        assert_eq!(history.len(), HUB_HISTORY_CAP);
        assert!(
            history[0].data.contains("\"generation\":10"),
            "{}",
            history[0].data
        );
        // Sequences are stamped at publish and survive the history trim:
        // frames 1..=cap+10 were published, the oldest 10 were evicted,
        // so the retained window is exactly 11..=cap+10 in order.
        assert_eq!(history[0].seq, 11);
        assert_eq!(history.last().unwrap().seq, (HUB_HISTORY_CAP + 10) as u64);
        for pair in history.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1, "gap in sequence");
        }
    }

    #[test]
    fn finished_jobs_emit_a_done_event_and_close_their_stream() {
        let (manager, registry, metrics) = manager();
        let spec = JobSpec::from_json(&body(&tiny_spec())).unwrap();
        let entry = manager.submit(spec, registry, metrics).unwrap();
        entry.join();
        // The pump publishes `done` after the driver exits; wait for it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let history = loop {
            let (history, live) = entry.events.subscribe();
            if live.is_none() {
                break history;
            }
            assert!(std::time::Instant::now() < deadline, "hub never closed");
            std::thread::yield_now();
        };
        let done = history.last().expect("at least the done event");
        assert_eq!(done.event, "done");
        assert!(
            done.data.contains("\"state\":\"finished\""),
            "{}",
            done.data
        );
        assert!(
            history.iter().any(|f| f.event == "progress"),
            "expected at least one progress frame: {history:?}"
        );
        let rendered = done.render();
        assert!(done.seq > 0, "published frames carry a sequence");
        assert!(
            rendered.starts_with(&format!("id: {}\nevent: done\ndata: {{", done.seq)),
            "{rendered}"
        );
        assert!(rendered.ends_with("\n\n"), "{rendered:?}");
    }

    #[test]
    fn full_store_evicts_terminal_jobs_then_answers_429() {
        let manager = JobManager::new(None, 2, 2);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let submit = |generations: u64| {
            let mut spec = tiny_spec();
            if let serde_json::Value::Object(m) = &mut spec {
                m.remove("name");
                m.insert("generations".into(), serde_json::json!(generations));
            }
            manager.submit(
                JobSpec::from_json(&body(&spec)).unwrap(),
                Arc::clone(&registry),
                Arc::clone(&metrics),
            )
        };
        // Fill the store with one quick job (runs to terminal) and one
        // long-lived job.
        let quick = submit(2).unwrap();
        quick.join();
        let long_a = submit(1_000_000).unwrap();
        // Full, but the quick job is terminal: submitting evicts it.
        let long_b = submit(1_000_000).unwrap();
        assert!(manager.get(quick.id).is_none(), "terminal job evicted");
        // Now both slots hold live jobs: 429.
        let err = submit(1_000_000).unwrap_err();
        assert_eq!(err.status, 429, "{}", err.message);
        assert_eq!(err.code, "too_many_jobs");
        // Cancelling frees a slot for the next submission.
        manager.cancel(long_a.id);
        long_a.join();
        let long_c = submit(1_000_000).unwrap();
        assert!(manager.get(long_c.id).is_some());
        manager.drain();
        let _ = long_b;
    }

    #[test]
    fn list_json_filters_by_state() {
        let (manager, registry, metrics) = manager();
        let quick = manager
            .submit(
                JobSpec::from_json(&body(&tiny_spec())).unwrap(),
                Arc::clone(&registry),
                Arc::clone(&metrics),
            )
            .unwrap();
        quick.join();
        let mut long = tiny_spec();
        if let serde_json::Value::Object(m) = &mut long {
            m.remove("name");
            m.insert("generations".into(), serde_json::json!(1_000_000));
        }
        let long_entry = manager
            .submit(JobSpec::from_json(&body(&long)).unwrap(), registry, metrics)
            .unwrap();
        assert_eq!(manager.list_json(None).len(), 2);
        let finished = manager.list_json(Some("finished"));
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0]["id"].as_u64(), Some(quick.id));
        let running = manager.list_json(Some("running"));
        assert_eq!(running.len(), 1);
        assert_eq!(running[0]["id"].as_u64(), Some(long_entry.id));
        assert!(manager.list_json(Some("failed")).is_empty());
        manager.drain();
    }

    /// Satellite regression test: a burst of submissions beyond the
    /// running limit must queue FIFO — never spawn more than
    /// `max_running` concurrent runs, keep monotone queue positions, and
    /// complete in submission order.
    #[test]
    fn burst_submissions_queue_fifo_and_never_exceed_running_slots() {
        let manager = JobManager::new(None, 64, 2);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let submit = |i: usize, generations: usize| {
            let mut spec = tiny_spec();
            if let serde_json::Value::Object(m) = &mut spec {
                m.insert("name".into(), serde_json::json!(format!("burst-{i}")));
                m.insert("generations".into(), serde_json::json!(generations));
            }
            manager.submit(
                JobSpec::from_json(&body(&spec)).unwrap(),
                Arc::clone(&registry),
                Arc::clone(&metrics),
            )
        };

        // Phase 1: long-lived jobs make the queue shape observable.
        let held: Vec<Arc<JobEntry>> = (0..8).map(|i| submit(i, 1_000_000).unwrap()).collect();
        let states: Vec<&str> = held.iter().map(|e| e.state()).collect();
        assert_eq!(
            states,
            vec!["running", "running", "queued", "queued", "queued", "queued", "queued", "queued"],
            "burst must yield max_running running + the rest queued"
        );
        let positions: Vec<Option<usize>> = held.iter().map(|e| e.queue_position()).collect();
        assert_eq!(
            positions[2..],
            [Some(1), Some(2), Some(3), Some(4), Some(5), Some(6)],
            "queue positions are monotone in submission order"
        );
        assert_eq!(manager.queue_depth(), 6);
        assert_eq!(metrics.jobs_queued(), 6);
        let doc = held[4].status_json();
        assert_eq!(doc["state"], "queued");
        assert_eq!(doc["queue_position"].as_u64(), Some(3));

        // Cancelling a queued job settles it instantly (no driver ever
        // existed) and renumbers the jobs behind it.
        assert!(manager.cancel(held[4].id));
        assert_eq!(held[4].outcome(), JobOutcome::Cancelled);
        assert_eq!(held[4].state(), "cancelled");
        assert_eq!(
            held[5].queue_position(),
            Some(3),
            "renumbered after removal"
        );
        // ...and its hub closed with a terminal done frame.
        let (history, live) = held[4].events.subscribe();
        assert!(live.is_none());
        assert_eq!(history.last().unwrap().event, "done");

        // Cancelling a *running* job frees its slot for the queue head.
        assert!(manager.cancel(held[0].id));
        held[0].join();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while held[2].queue_position().is_some() {
            assert!(Instant::now() < deadline, "queue head never admitted");
            std::thread::yield_now();
        }
        assert_eq!(manager.queue_depth(), 4);
        manager.drain();

        // Phase 2: FIFO completion. Later jobs are strictly longer, so
        // submission order is completion order with a wide margin; the
        // sampler asserts the concurrency bound and the FIFO shape.
        let manager = JobManager::new(None, 64, 2);
        let jobs: Vec<Arc<JobEntry>> = (0..6)
            .map(|i| {
                let mut spec = tiny_spec();
                if let serde_json::Value::Object(m) = &mut spec {
                    m.insert("name".into(), serde_json::json!(format!("fifo-{i}")));
                    m.insert("generations".into(), serde_json::json!(10 * (i + 1)));
                }
                manager
                    .submit(
                        JobSpec::from_json(&body(&spec)).unwrap(),
                        Arc::clone(&registry),
                        Arc::clone(&metrics),
                    )
                    .unwrap()
            })
            .collect();
        let mut completion_order: Vec<usize> = Vec::new();
        let deadline = Instant::now() + std::time::Duration::from_secs(120);
        while completion_order.len() < jobs.len() {
            assert!(Instant::now() < deadline, "burst never completed");
            let states: Vec<&str> = jobs.iter().map(|e| e.state()).collect();
            assert!(
                states.iter().filter(|s| **s == "running").count() <= 2,
                "more than max_running concurrent runs: {states:?}"
            );
            // FIFO: the queued jobs are always a suffix of submission
            // order (admission can never leapfrog).
            if let Some(first_queued) = states.iter().position(|s| *s == "queued") {
                assert!(
                    states[first_queued..].iter().all(|s| *s == "queued"),
                    "queue admitted out of order: {states:?}"
                );
            }
            for (i, state) in states.iter().enumerate() {
                if *state == "finished" && !completion_order.contains(&i) {
                    completion_order.push(i);
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(
            completion_order,
            (0..jobs.len()).collect::<Vec<_>>(),
            "jobs must finish in submission order"
        );
        for job in &jobs {
            assert!(matches!(job.outcome(), JobOutcome::Published { .. }));
        }
    }

    /// Drained queued jobs keep their spec files and re-adopt through
    /// the same admission queue on the next start.
    #[test]
    fn drain_preserves_queued_jobs_and_readoption_requeues() {
        let dir = std::env::temp_dir().join(format!(
            "caffeine-queue-drain-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let manager = JobManager::new(Some(dir.clone()), 8, 1);
        let submit = |mgr: &JobManager| {
            let mut spec = tiny_spec();
            if let serde_json::Value::Object(m) = &mut spec {
                m.remove("name");
                m.insert("generations".into(), serde_json::json!(1_000_000));
                m.insert("checkpoint_every".into(), serde_json::json!(1));
            }
            mgr.submit(
                JobSpec::from_json(&body(&spec)).unwrap(),
                Arc::clone(&registry),
                Arc::clone(&metrics),
            )
            .unwrap()
        };
        let running = submit(&manager);
        let queued = submit(&manager);
        assert_eq!(running.state(), "running");
        assert_eq!(queued.state(), "queued");
        manager.drain();
        assert_eq!(running.outcome(), JobOutcome::Cancelled);
        assert_eq!(queued.outcome(), JobOutcome::Cancelled);
        for id in [running.id, queued.id] {
            assert!(
                dir.join(format!("job-{id}.spec.json")).exists(),
                "drain must preserve job {id}'s spec (queued or running)"
            );
        }

        // The next daemon re-adopts both through the admission queue:
        // one running slot, so one resumes and one queues.
        let manager2 = JobManager::new(Some(dir.clone()), 8, 1);
        assert_eq!(manager2.adopt_orphans(&registry, &metrics), 2);
        let readopted_running = manager2.get(running.id).unwrap();
        let readopted_queued = manager2.get(queued.id).unwrap();
        assert!(readopted_running.resumed && readopted_queued.resumed);
        assert_eq!(readopted_running.state(), "running");
        assert_eq!(readopted_queued.state(), "queued");
        assert_eq!(readopted_queued.queue_position(), Some(1));
        manager2.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_store_429_carries_a_queue_derived_retry_after() {
        let manager = JobManager::new(None, 2, 1);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let submit = || {
            let mut spec = tiny_spec();
            if let serde_json::Value::Object(m) = &mut spec {
                m.remove("name");
                m.insert("generations".into(), serde_json::json!(1_000_000));
            }
            manager.submit(
                JobSpec::from_json(&body(&spec)).unwrap(),
                Arc::clone(&registry),
                Arc::clone(&metrics),
            )
        };
        let _running = submit().unwrap();
        let _queued = submit().unwrap();
        let err = submit().unwrap_err();
        assert_eq!(err.status, 429);
        // One job waits in the queue → Retry-After = 1 + depth = 2.
        assert_eq!(err.retry_after, Some(2));
        manager.drain();
    }

    #[test]
    fn orphaned_specs_are_adopted_and_run_to_publication() {
        let dir = std::env::temp_dir().join(format!(
            "caffeine-adopt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A previous daemon's wreckage: a spec without a checkpoint
        // (killed before the first write) and one corrupt spec.
        let spec = JobSpec::from_json(&body(&tiny_spec())).unwrap();
        std::fs::write(
            dir.join("job-7.spec.json"),
            serde_json::to_string(&spec.to_json()).unwrap(),
        )
        .unwrap();
        std::fs::write(dir.join("job-9.spec.json"), "{ not json").unwrap();

        let manager = JobManager::new(Some(dir.clone()), 8, 8);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let adopted = manager.adopt_orphans(&registry, &metrics);
        assert_eq!(adopted, 2);

        let good = manager.get(7).expect("job 7 adopted");
        assert!(good.resumed);
        good.join();
        assert!(matches!(good.outcome(), JobOutcome::Published { .. }));
        assert!(registry.get("tiny", None).is_some());

        let bad = manager.get(9).expect("job 9 surfaced");
        assert!(bad.resumed);
        assert!(matches!(bad.outcome(), JobOutcome::Failed { .. }));
        assert_eq!(bad.status_json()["state"], "failed");
        assert!(
            !dir.join("job-9.spec.json").exists(),
            "unusable spec cleaned up"
        );

        // Fresh ids never collide with adopted ones.
        let fresh = manager
            .submit(
                JobSpec::from_json(&body(&tiny_spec())).unwrap(),
                registry,
                metrics,
            )
            .unwrap();
        assert!(fresh.id > 9, "id {} collides with adopted ids", fresh.id);
        manager.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_preserves_interrupted_jobs_but_client_cancel_does_not() {
        let dir = std::env::temp_dir().join(format!(
            "caffeine-drain-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let mut long = tiny_spec();
        if let serde_json::Value::Object(m) = &mut long {
            m.insert("generations".into(), serde_json::json!(1_000_000));
            m.insert("checkpoint_every".into(), serde_json::json!(1));
        }

        // Drain (graceful shutdown) cancels the job but must keep its
        // spec + checkpoint so the next daemon re-adopts it.
        let manager = JobManager::new(Some(dir.clone()), 8, 8);
        let entry = manager
            .submit(
                JobSpec::from_json(&body(&long)).unwrap(),
                Arc::clone(&registry),
                Arc::clone(&metrics),
            )
            .unwrap();
        let id = entry.id;
        manager.drain();
        assert_eq!(entry.outcome(), JobOutcome::Cancelled);
        assert!(
            dir.join(format!("job-{id}.spec.json")).exists(),
            "drain must preserve the spec"
        );

        // The next manager re-adopts the interrupted job...
        let manager2 = JobManager::new(Some(dir.clone()), 8, 8);
        assert_eq!(manager2.adopt_orphans(&registry, &metrics), 1);
        let readopted = manager2.get(id).expect("job re-adopted after drain");
        assert!(readopted.resumed);

        // ...and a *client* cancel of the re-adopted job is a decision,
        // not an interruption: the files go away.
        assert!(manager2.cancel(id));
        readopted.join();
        assert_eq!(readopted.outcome(), JobOutcome::Cancelled);
        assert!(
            !dir.join(format!("job-{id}.spec.json")).exists(),
            "client cancel must remove the spec"
        );
        assert!(!dir.join(format!("job-{id}.ckpt")).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adoption_beyond_capacity_skips_jobs_but_keeps_their_files() {
        let dir = std::env::temp_dir().join(format!(
            "caffeine-adopt-cap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Three healthy orphaned specs, all long-running (stay live).
        for id in [1u64, 2, 3] {
            let mut spec = tiny_spec();
            if let serde_json::Value::Object(m) = &mut spec {
                m.remove("name");
                m.insert("generations".into(), serde_json::json!(1_000_000));
            }
            std::fs::write(
                dir.join(format!("job-{id}.spec.json")),
                serde_json::to_string(&spec).unwrap(),
            )
            .unwrap();
        }
        let manager = JobManager::new(Some(dir.clone()), 2, 2);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let adopted = manager.adopt_orphans(&registry, &metrics);
        assert_eq!(adopted, 2, "capacity 2 admits two of the three");
        assert!(manager.get(1).is_some());
        assert!(manager.get(2).is_some());
        assert!(manager.get(3).is_none(), "third job skipped, not adopted");
        assert!(
            dir.join("job-3.spec.json").exists(),
            "the skipped job's spec must survive for a later restart"
        );
        manager.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn terminal_jobs_clean_up_their_disk_state() {
        let dir = std::env::temp_dir().join(format!(
            "caffeine-jobfiles-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let manager = JobManager::new(Some(dir.clone()), 8, 8);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let mut spec = tiny_spec();
        if let serde_json::Value::Object(m) = &mut spec {
            m.insert("checkpoint_every".into(), serde_json::json!(1));
        }
        let entry = manager
            .submit(JobSpec::from_json(&body(&spec)).unwrap(), registry, metrics)
            .unwrap();
        entry.join();
        assert!(matches!(entry.outcome(), JobOutcome::Published { .. }));
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.starts_with(&format!("job-{}", entry.id)))
            .collect();
        assert!(leftovers.is_empty(), "leftover job files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
