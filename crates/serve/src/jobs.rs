//! Async modeling jobs: GP runs on background threads with live
//! progress, cancellation, checkpointing, and automatic publication of
//! the finished front into the registry.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use serde::Deserialize;

use caffeine_core::{CaffeineSettings, GrammarConfig, ModelArtifact};
use caffeine_doe::Dataset;
use caffeine_runtime::{IslandRunner, RunController, RuntimeConfig};

use crate::error::ApiError;
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use crate::router::valid_model_id;

/// A parsed job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Registry id the finished front publishes under (default
    /// `job-{id}`).
    pub name: Option<String>,
    /// Design-variable names (defines input dimensionality).
    pub var_names: Vec<String>,
    /// Row-major training points.
    pub points: Vec<Vec<f64>>,
    /// Training targets, one per point.
    pub targets: Vec<f64>,
    /// Population size (default 60).
    pub population: usize,
    /// Generations (default 40).
    pub generations: usize,
    /// Max basis functions per model (default 6).
    pub max_bases: usize,
    /// RNG seed (default 0).
    pub seed: u64,
    /// Islands (default 1).
    pub islands: usize,
    /// Evaluation threads (default 1).
    pub threads: usize,
    /// Grammar: `"full"` (default) or `"rational"`.
    pub grammar: String,
}

/// Extracts an optional field, treating `null` and absence identically.
fn opt_field<T: Deserialize>(v: &serde_json::Value, name: &str) -> Result<Option<T>, ApiError> {
    match v.as_object().and_then(|m| m.get(name)) {
        None | Some(serde_json::Value::Null) => Ok(None),
        Some(f) => T::from_value(f)
            .map(Some)
            .map_err(|e| ApiError::bad_request(format!("field `{name}`: {e}"))),
    }
}

fn req_field<T: Deserialize>(v: &serde_json::Value, name: &str) -> Result<T, ApiError> {
    opt_field(v, name)?
        .ok_or_else(|| ApiError::bad_request(format!("missing required field `{name}`")))
}

impl JobSpec {
    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// 400 for malformed JSON, missing/mistyped fields, shape mismatches,
    /// an invalid `name`, or a grammar this server does not know.
    pub fn from_json(body: &[u8]) -> Result<JobSpec, ApiError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ApiError::bad_request("job body is not UTF-8"))?;
        let v: serde_json::Value = serde_json::from_str(text)
            .map_err(|e| ApiError::bad_request(format!("job body is not JSON: {e}")))?;
        let spec = JobSpec {
            name: opt_field(&v, "name")?,
            var_names: req_field(&v, "var_names")?,
            points: req_field(&v, "points")?,
            targets: req_field(&v, "targets")?,
            population: opt_field(&v, "population")?.unwrap_or(60),
            generations: opt_field(&v, "generations")?.unwrap_or(40),
            max_bases: opt_field(&v, "max_bases")?.unwrap_or(6),
            seed: opt_field(&v, "seed")?.unwrap_or(0),
            islands: opt_field(&v, "islands")?.unwrap_or(1),
            threads: opt_field(&v, "threads")?.unwrap_or(1),
            grammar: opt_field(&v, "grammar")?.unwrap_or_else(|| "full".to_string()),
        };
        if let Some(name) = &spec.name {
            if !valid_model_id(name) {
                return Err(ApiError::bad_request(format!(
                    "job name `{name}` is not a valid model id"
                )));
            }
        }
        if spec.grammar != "full" && spec.grammar != "rational" {
            return Err(ApiError::bad_request(format!(
                "grammar `{}` unknown (use `full` or `rational`)",
                spec.grammar
            )));
        }
        if spec.points.is_empty() {
            return Err(ApiError::bad_request("job has no training points"));
        }
        Ok(spec)
    }

    fn settings(&self) -> CaffeineSettings {
        let mut s = CaffeineSettings::paper();
        s.population = self.population;
        s.generations = self.generations;
        s.max_bases = self.max_bases;
        s.seed = self.seed;
        s.stats_every = (self.generations / 10).max(1);
        s
    }

    fn grammar_config(&self, n_vars: usize) -> GrammarConfig {
        match self.grammar.as_str() {
            "rational" => GrammarConfig::rational(n_vars),
            _ => GrammarConfig::paper_full(n_vars),
        }
    }
}

/// Terminal result of a job (alongside the controller's phase).
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Still queued/running/paused.
    Pending,
    /// Finished; the front is in the registry.
    Published {
        /// Registry id.
        model_id: String,
        /// Content-hash version.
        version: String,
        /// Front size.
        n_models: usize,
    },
    /// The run failed.
    Failed {
        /// The failure.
        message: String,
    },
    /// The run was cancelled before finishing.
    Cancelled,
}

/// One job's shared record.
#[derive(Debug)]
pub struct JobEntry {
    /// Job id.
    pub id: u64,
    /// Registry id the front publishes under.
    pub model_id: String,
    /// Pause/cancel/progress handle.
    pub controller: RunController,
    /// Terminal outcome (behind a lock; `Pending` until the thread ends).
    outcome: Mutex<JobOutcome>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl JobEntry {
    /// The current outcome.
    pub fn outcome(&self) -> JobOutcome {
        self.outcome.lock().expect("job lock").clone()
    }

    /// Blocks until the job's thread exits (tests and shutdown).
    pub fn join(&self) {
        if let Some(h) = self.handle.lock().expect("job lock").take() {
            let _ = h.join();
        }
    }

    /// Renders the job as its status JSON value.
    pub fn status_json(&self) -> serde_json::Value {
        let snapshot = self.controller.snapshot();
        let mut phase = snapshot.phase.as_str();
        let mut body = serde_json::json!({
            "id": self.id,
            "model_id": self.model_id.clone(),
            "progress": serde_json::to_value(&snapshot),
        });
        match self.outcome() {
            JobOutcome::Pending => {}
            JobOutcome::Published {
                model_id,
                version,
                n_models,
            } => {
                if let serde_json::Value::Object(m) = &mut body {
                    m.insert(
                        "result".into(),
                        serde_json::json!({
                            "model_id": model_id,
                            "version": version,
                            "n_models": n_models,
                        }),
                    );
                }
            }
            JobOutcome::Failed { message } => {
                phase = "failed";
                if let serde_json::Value::Object(m) = &mut body {
                    m.insert("error".into(), serde_json::Value::String(message));
                }
            }
            JobOutcome::Cancelled => phase = "cancelled",
        }
        if let serde_json::Value::Object(m) = &mut body {
            m.insert("state".into(), serde_json::Value::String(phase.into()));
        }
        body
    }
}

/// Spawns, tracks, and cancels jobs.
#[derive(Debug)]
pub struct JobManager {
    jobs: Mutex<BTreeMap<u64, Arc<JobEntry>>>,
    next_id: AtomicU64,
    /// Directory for job checkpoints, when persistence is configured.
    checkpoint_dir: Option<PathBuf>,
}

impl JobManager {
    /// A manager writing job checkpoints under `checkpoint_dir` (when
    /// given).
    pub fn new(checkpoint_dir: Option<PathBuf>) -> JobManager {
        JobManager {
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            checkpoint_dir,
        }
    }

    /// Validates a spec, spawns its background run, and returns the job
    /// id.
    ///
    /// # Errors
    ///
    /// 400/422 for specs the engine's own validation rejects.
    pub fn submit(
        &self,
        spec: JobSpec,
        registry: Arc<ModelRegistry>,
        metrics: Arc<Metrics>,
    ) -> Result<Arc<JobEntry>, ApiError> {
        let data = Dataset::new(
            spec.var_names.clone(),
            spec.points.clone(),
            spec.targets.clone(),
        )
        .map_err(ApiError::from)?;
        let settings = spec.settings();
        let grammar = spec.grammar_config(data.n_vars());
        let config = RuntimeConfig {
            threads: spec.threads.max(1),
            islands: spec.islands.max(1),
            ..RuntimeConfig::default()
        };
        let mut runner =
            IslandRunner::new(settings, grammar, config, &data).map_err(ApiError::from)?;

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let model_id = spec.name.clone().unwrap_or_else(|| format!("job-{id}"));
        if let Some(dir) = &self.checkpoint_dir {
            if std::fs::create_dir_all(dir).is_ok() {
                runner.set_checkpoint_path(dir.join(format!("job-{id}.ckpt")));
            }
        }

        let controller = RunController::new();
        let entry = Arc::new(JobEntry {
            id,
            model_id: model_id.clone(),
            controller: controller.clone(),
            outcome: Mutex::new(JobOutcome::Pending),
            handle: Mutex::new(None),
        });
        let var_names = spec.var_names.clone();
        let thread_entry = Arc::clone(&entry);
        let handle = std::thread::Builder::new()
            .name(format!("serve-job-{id}"))
            .spawn(move || {
                let outcome = match controller.drive(&mut runner, &data) {
                    Ok(Some(result)) => {
                        let n_models = result.models.len();
                        match ModelArtifact::new(var_names, result.models)
                            .map_err(ApiError::from)
                            .and_then(|artifact| registry.publish(&model_id, artifact))
                        {
                            Ok((version, _created)) => JobOutcome::Published {
                                model_id,
                                version,
                                n_models,
                            },
                            Err(e) => JobOutcome::Failed { message: e.message },
                        }
                    }
                    Ok(None) => JobOutcome::Cancelled,
                    Err(e) => JobOutcome::Failed {
                        message: e.to_string(),
                    },
                };
                *thread_entry.outcome.lock().expect("job lock") = outcome;
                metrics.observe_job_finished();
            })
            .map_err(|e| ApiError::internal(format!("cannot spawn job thread: {e}")))?;
        *entry.handle.lock().expect("job lock") = Some(handle);
        self.jobs
            .lock()
            .expect("jobs lock")
            .insert(id, Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a job.
    pub fn get(&self, id: u64) -> Option<Arc<JobEntry>> {
        self.jobs.lock().expect("jobs lock").get(&id).cloned()
    }

    /// Requests cancellation; `false` when the job does not exist.
    pub fn cancel(&self, id: u64) -> bool {
        match self.get(id) {
            Some(entry) => {
                entry.controller.cancel();
                true
            }
            None => false,
        }
    }

    /// Status JSON for every job, in id order.
    pub fn list_json(&self) -> Vec<serde_json::Value> {
        let jobs: Vec<Arc<JobEntry>> = self
            .jobs
            .lock()
            .expect("jobs lock")
            .values()
            .cloned()
            .collect();
        jobs.iter().map(|j| j.status_json()).collect()
    }

    /// Cancels every job and joins their threads (graceful shutdown).
    pub fn drain(&self) {
        let jobs: Vec<Arc<JobEntry>> = self
            .jobs
            .lock()
            .expect("jobs lock")
            .values()
            .cloned()
            .collect();
        for job in &jobs {
            job.controller.cancel();
        }
        for job in &jobs {
            job.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> serde_json::Value {
        let points: Vec<Vec<f64>> = (1..=16).map(|i| vec![f64::from(i) * 0.5]).collect();
        let targets: Vec<f64> = points.iter().map(|p| 3.0 / p[0]).collect();
        serde_json::json!({
            "name": "tiny",
            "var_names": ["x0"],
            "points": points,
            "targets": targets,
            "population": 16,
            "generations": 4,
            "max_bases": 4,
            "grammar": "rational",
        })
    }

    fn body(v: &serde_json::Value) -> Vec<u8> {
        serde_json::to_string(v).unwrap().into_bytes()
    }

    #[test]
    fn spec_parses_with_defaults_and_rejects_garbage() {
        let spec = JobSpec::from_json(&body(&tiny_spec())).unwrap();
        assert_eq!(spec.population, 16);
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.islands, 1);
        assert!(JobSpec::from_json(b"not json").is_err());
        assert!(JobSpec::from_json(b"{}").is_err());
        let mut missing_targets = tiny_spec();
        if let serde_json::Value::Object(m) = &mut missing_targets {
            m.insert("targets".into(), serde_json::Value::Null);
        }
        let err = JobSpec::from_json(&body(&missing_targets)).unwrap_err();
        assert!(err.message.contains("targets"), "{}", err.message);
        let mut bad_name = tiny_spec();
        if let serde_json::Value::Object(m) = &mut bad_name {
            m.insert("name".into(), serde_json::Value::String("../x".into()));
        }
        assert_eq!(
            JobSpec::from_json(&body(&bad_name)).unwrap_err().status,
            400
        );
    }

    #[test]
    fn job_runs_to_publication() {
        let manager = JobManager::new(None);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let spec = JobSpec::from_json(&body(&tiny_spec())).unwrap();
        let entry = manager
            .submit(spec, Arc::clone(&registry), Arc::clone(&metrics))
            .unwrap();
        entry.join();
        match entry.outcome() {
            JobOutcome::Published {
                model_id, version, ..
            } => {
                assert_eq!(model_id, "tiny");
                assert_eq!(registry.get("tiny", None).unwrap().version, version);
            }
            other => panic!("expected publication, got {other:?}"),
        }
        let status = entry.status_json();
        assert_eq!(status["state"], "finished");
        assert!(status["result"]["n_models"].as_u64().unwrap() > 0);
    }

    #[test]
    fn mismatched_shapes_are_rejected_up_front() {
        let manager = JobManager::new(None);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let mut bad = tiny_spec();
        if let serde_json::Value::Object(m) = &mut bad {
            m.insert("targets".into(), serde_json::json!([1.0, 2.0]));
        }
        let spec = JobSpec::from_json(&body(&bad)).unwrap();
        let err = manager.submit(spec, registry, metrics).unwrap_err();
        assert_eq!(err.status, 400, "{}", err.message);
    }

    #[test]
    fn cancellation_is_observable() {
        let manager = JobManager::new(None);
        let registry = Arc::new(ModelRegistry::in_memory());
        let metrics = Arc::new(Metrics::new());
        let mut long = tiny_spec();
        if let serde_json::Value::Object(m) = &mut long {
            m.insert("generations".into(), serde_json::json!(100_000));
        }
        let spec = JobSpec::from_json(&body(&long)).unwrap();
        let entry = manager.submit(spec, registry, metrics).unwrap();
        assert!(manager.cancel(entry.id));
        entry.join();
        assert_eq!(entry.outcome(), JobOutcome::Cancelled);
        assert_eq!(entry.status_json()["state"], "cancelled");
        assert!(!manager.cancel(9999));
    }
}
