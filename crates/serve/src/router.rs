//! Path → route resolution for the versioned API surface.

use crate::error::ApiError;

/// Everything the daemon can be asked to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz` — liveness.
    Health,
    /// `GET /readyz` — readiness (503 while draining or before ready).
    Ready,
    /// `GET /metrics` — Prometheus-style counters and histograms.
    Metrics,
    /// `GET /dashboard` — the embedded live-jobs HTML dashboard.
    Dashboard,
    /// `GET /v1/models` — list registry contents.
    ListModels,
    /// `POST|PUT /v1/models/{id}` — publish an artifact under an id.
    PublishModel(String),
    /// `GET /v1/models/{id}[?version=...]` — fetch an artifact.
    GetModel(String),
    /// `POST /v1/models/{id}/predict[?version=...]` — batched prediction.
    Predict(String),
    /// `GET /v1/jobs` — list jobs.
    ListJobs,
    /// `POST /v1/jobs` — submit an async modeling job.
    SubmitJob,
    /// `GET /v1/jobs/{id}` — job status/progress.
    GetJob(u64),
    /// `GET /v1/jobs/{id}/events` — live job events as an SSE stream.
    JobEvents(u64),
    /// `DELETE /v1/jobs/{id}` or `POST /v1/jobs/{id}/cancel` — cancel.
    CancelJob(u64),
    /// `GET /v1/traces` — list retained traces (tail-sampled).
    ListTraces,
    /// `GET /v1/traces/{trace_id}` — one trace's full span tree.
    GetTrace(String),
    /// `POST /v1/admin/shutdown` — graceful drain and exit.
    Shutdown,
}

/// Model ids become registry directory names, so they are restricted to a
/// conservative token alphabet (also forecloses path traversal).
pub fn valid_model_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        && !id.starts_with('.')
}

fn job_id(segment: &str) -> Result<u64, ApiError> {
    segment
        .parse::<u64>()
        .map_err(|_| ApiError::not_found(format!("job id `{segment}` is not a number")))
}

fn model_id(segment: &str) -> Result<String, ApiError> {
    if valid_model_id(segment) {
        Ok(segment.to_string())
    } else {
        Err(ApiError::bad_request(format!(
            "model id `{segment}` is invalid (1-64 chars of [A-Za-z0-9._-], no leading dot)"
        )))
    }
}

/// Resolves a method + path to a [`Route`].
///
/// # Errors
///
/// 404 for unknown paths, 405 for known paths under the wrong method,
/// 400 for syntactically invalid ids.
pub fn route(method: &str, path: &str) -> Result<Route, ApiError> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let not_allowed = |allowed: &str| Err(ApiError::method_not_allowed(format!("use {allowed}")));
    match segments.as_slice() {
        ["healthz"] => match method {
            "GET" => Ok(Route::Health),
            _ => not_allowed("GET"),
        },
        ["readyz"] => match method {
            "GET" => Ok(Route::Ready),
            _ => not_allowed("GET"),
        },
        ["metrics"] => match method {
            "GET" => Ok(Route::Metrics),
            _ => not_allowed("GET"),
        },
        ["dashboard"] => match method {
            "GET" => Ok(Route::Dashboard),
            _ => not_allowed("GET"),
        },
        ["v1", "models"] => match method {
            "GET" => Ok(Route::ListModels),
            _ => not_allowed("GET"),
        },
        ["v1", "models", id] => match method {
            "GET" => Ok(Route::GetModel(model_id(id)?)),
            "POST" | "PUT" => Ok(Route::PublishModel(model_id(id)?)),
            _ => not_allowed("GET, POST, or PUT"),
        },
        ["v1", "models", id, "predict"] => match method {
            "POST" => Ok(Route::Predict(model_id(id)?)),
            _ => not_allowed("POST"),
        },
        ["v1", "jobs"] => match method {
            "GET" => Ok(Route::ListJobs),
            "POST" => Ok(Route::SubmitJob),
            _ => not_allowed("GET or POST"),
        },
        ["v1", "jobs", id] => match method {
            "GET" => Ok(Route::GetJob(job_id(id)?)),
            "DELETE" => Ok(Route::CancelJob(job_id(id)?)),
            _ => not_allowed("GET or DELETE"),
        },
        ["v1", "jobs", id, "cancel"] => match method {
            "POST" => Ok(Route::CancelJob(job_id(id)?)),
            _ => not_allowed("POST"),
        },
        ["v1", "jobs", id, "events"] => match method {
            "GET" => Ok(Route::JobEvents(job_id(id)?)),
            _ => not_allowed("GET"),
        },
        ["v1", "traces"] => match method {
            "GET" => Ok(Route::ListTraces),
            _ => not_allowed("GET"),
        },
        ["v1", "traces", id] => match method {
            "GET" => Ok(Route::GetTrace((*id).to_string())),
            _ => not_allowed("GET"),
        },
        ["v1", "admin", "shutdown"] => match method {
            "POST" => Ok(Route::Shutdown),
            _ => not_allowed("POST"),
        },
        _ => Err(ApiError::not_found(format!("no route for {path}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_the_full_surface() {
        assert_eq!(route("GET", "/healthz").unwrap(), Route::Health);
        assert_eq!(route("GET", "/readyz").unwrap(), Route::Ready);
        assert_eq!(route("POST", "/readyz").unwrap_err().status, 405);
        assert_eq!(route("GET", "/metrics").unwrap(), Route::Metrics);
        assert_eq!(route("GET", "/dashboard").unwrap(), Route::Dashboard);
        assert_eq!(route("POST", "/dashboard").unwrap_err().status, 405);
        assert_eq!(route("GET", "/v1/models").unwrap(), Route::ListModels);
        assert_eq!(
            route("POST", "/v1/models/ota-gain").unwrap(),
            Route::PublishModel("ota-gain".into())
        );
        assert_eq!(
            route("PUT", "/v1/models/ota-gain").unwrap(),
            Route::PublishModel("ota-gain".into())
        );
        assert_eq!(
            route("GET", "/v1/models/ota-gain").unwrap(),
            Route::GetModel("ota-gain".into())
        );
        assert_eq!(
            route("POST", "/v1/models/ota-gain/predict").unwrap(),
            Route::Predict("ota-gain".into())
        );
        assert_eq!(route("GET", "/v1/jobs").unwrap(), Route::ListJobs);
        assert_eq!(route("POST", "/v1/jobs").unwrap(), Route::SubmitJob);
        assert_eq!(route("GET", "/v1/jobs/7").unwrap(), Route::GetJob(7));
        assert_eq!(route("DELETE", "/v1/jobs/7").unwrap(), Route::CancelJob(7));
        assert_eq!(
            route("POST", "/v1/jobs/7/cancel").unwrap(),
            Route::CancelJob(7)
        );
        assert_eq!(
            route("GET", "/v1/jobs/7/events").unwrap(),
            Route::JobEvents(7)
        );
        assert_eq!(route("POST", "/v1/jobs/7/events").unwrap_err().status, 405);
        assert_eq!(
            route("POST", "/v1/admin/shutdown").unwrap(),
            Route::Shutdown
        );
        assert_eq!(route("GET", "/v1/traces").unwrap(), Route::ListTraces);
        assert_eq!(route("POST", "/v1/traces").unwrap_err().status, 405);
        assert_eq!(
            route("GET", "/v1/traces/0af7651916cd43dd8448eb211c80319c").unwrap(),
            Route::GetTrace("0af7651916cd43dd8448eb211c80319c".into())
        );
        assert_eq!(route("DELETE", "/v1/traces/abc").unwrap_err().status, 405);
    }

    #[test]
    fn unknown_paths_404_and_wrong_methods_405() {
        assert_eq!(route("GET", "/nope").unwrap_err().status, 404);
        assert_eq!(route("GET", "/v1").unwrap_err().status, 404);
        assert_eq!(route("DELETE", "/v1/models").unwrap_err().status, 405);
        assert_eq!(route("GET", "/v1/admin/shutdown").unwrap_err().status, 405);
        assert_eq!(
            route("GET", "/v1/models/x/predict").unwrap_err().status,
            405
        );
    }

    #[test]
    fn model_ids_are_validated() {
        assert!(valid_model_id("ota-gain_v2.1"));
        assert!(!valid_model_id(""));
        assert!(!valid_model_id(".hidden"));
        assert!(!valid_model_id("a/b"));
        assert!(!valid_model_id("a b"));
        assert!(!valid_model_id(&"x".repeat(65)));
        assert_eq!(route("GET", "/v1/models/..").unwrap_err().status, 400);
        assert_eq!(route("GET", "/v1/jobs/abc").unwrap_err().status, 404);
    }
}
