//! The versioned model registry: fitted fronts as content-hash-addressed
//! JSON artifacts, in memory and optionally mirrored to disk.
//!
//! Layout on disk (when a model directory is configured):
//!
//! ```text
//! <dir>/<id>/<hash>.json   one artifact per content hash
//! <dir>/<id>/latest        the hash the id currently points at
//! ```
//!
//! Publishing is idempotent: re-publishing byte-identical content under
//! the same id is a no-op that returns the existing version (and counts
//! as a registry cache hit). The in-memory map is the source of truth for
//! reads, so serving never touches the filesystem on the hot path.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use caffeine_core::ModelArtifact;

use crate::error::ApiError;
use crate::router::valid_model_id;
use crate::sync::PoisonlessRwLock;

/// One stored artifact version.
#[derive(Debug, Clone)]
pub struct StoredVersion {
    /// Content hash (the version id).
    pub version: String,
    /// The artifact (shared, cheap to hand to prediction workers).
    pub artifact: Arc<ModelArtifact>,
}

#[derive(Debug, Default)]
struct Shelf {
    /// Versions in publish order; the last one is `latest`.
    versions: Vec<StoredVersion>,
}

/// The registry.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: Option<PathBuf>,
    inner: RwLock<BTreeMap<String, Shelf>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelRegistry {
    /// A purely in-memory registry (tests, benches, ephemeral servers).
    pub fn in_memory() -> ModelRegistry {
        ModelRegistry {
            dir: None,
            inner: RwLock::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) a disk-backed registry and loads every
    /// persisted artifact into memory.
    ///
    /// Unreadable or schema-incompatible artifact files are skipped with
    /// a note on stderr rather than failing startup — one bad file must
    /// not take the whole registry down.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ModelRegistry> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut map: BTreeMap<String, Shelf> = BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let id = entry.file_name().to_string_lossy().to_string();
            if !valid_model_id(&id) {
                continue;
            }
            if let Some(shelf) = load_shelf(&entry.path()) {
                map.insert(id, shelf);
            }
        }
        Ok(ModelRegistry {
            dir: Some(dir),
            inner: RwLock::new(map),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Publishes an artifact under `id`; returns `(version, created)`
    /// where `created` is `false` when byte-identical content was already
    /// present (idempotent re-publish).
    ///
    /// # Errors
    ///
    /// 400 for an invalid id, 500 for persistence failures.
    pub fn publish(&self, id: &str, artifact: ModelArtifact) -> Result<(String, bool), ApiError> {
        if !valid_model_id(id) {
            return Err(ApiError::bad_request(format!("model id `{id}` is invalid")));
        }
        let version = artifact.content_hash();

        // The fsync'd artifact write happens *before* taking the write
        // lock, so concurrent predict/get traffic (read locks) never
        // stalls behind disk. The filename is the content hash, so a
        // racing identical publish rewrites the same bytes — harmless —
        // and a racing different publish touches a different file.
        let already_present = {
            let map = self.inner.pread();
            map.get(id)
                .is_some_and(|s| s.versions.iter().any(|v| v.version == version))
        };
        if let (false, Some(dir)) = (already_present, &self.dir) {
            persist_version(&dir.join(id), &version, &artifact)
                .map_err(|e| ApiError::internal(format!("cannot persist artifact: {e}")))?;
        }

        let mut map = self.inner.pwrite();
        let shelf = map.entry(id.to_string()).or_default();
        let created = match shelf.versions.iter().position(|v| v.version == version) {
            Some(existing) => {
                // Idempotent: move the existing version to the latest
                // slot (covers both re-publishes and the race where
                // another thread inserted between our two lock scopes).
                let v = shelf.versions.remove(existing);
                shelf.versions.push(v);
                self.hits.fetch_add(1, Ordering::Relaxed);
                false
            }
            None => {
                shelf.versions.push(StoredVersion {
                    version: version.clone(),
                    artifact: Arc::new(artifact),
                });
                true
            }
        };
        drop(map);

        // The latest pointer is advisory (load_shelf falls back to a
        // deterministic order without it), so it is written outside the
        // lock too; last-writer-wins matches the in-memory ordering
        // closely enough for crash recovery.
        if let Some(dir) = &self.dir {
            persist_latest(&dir.join(id), &version)
                .map_err(|e| ApiError::internal(format!("cannot update latest: {e}")))?;
        }
        Ok((version, created))
    }

    /// Fetches an artifact by id, at a specific version or the latest.
    pub fn get(&self, id: &str, version: Option<&str>) -> Option<StoredVersion> {
        let map = self.inner.pread();
        let found = map.get(id).and_then(|shelf| match version {
            None => shelf.versions.last(),
            Some(v) => shelf.versions.iter().find(|s| s.version == v),
        });
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Lists `(id, versions)` pairs, versions in publish order (latest
    /// last).
    pub fn list(&self) -> Vec<(String, Vec<String>)> {
        let map = self.inner.pread();
        map.iter()
            .map(|(id, shelf)| {
                (
                    id.clone(),
                    shelf.versions.iter().map(|v| v.version.clone()).collect(),
                )
            })
            .collect()
    }

    /// Total artifacts across all ids.
    pub fn total_versions(&self) -> usize {
        let map = self.inner.pread();
        map.values().map(|s| s.versions.len()).sum()
    }

    /// Lookup/publish hits so far (found ids, idempotent re-publishes).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The disk directory, when this registry persists.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

/// Loads every artifact of one id directory; returns `None` when nothing
/// loadable exists.
fn load_shelf(id_dir: &Path) -> Option<Shelf> {
    let mut versions = Vec::new();
    let entries = std::fs::read_dir(id_dir).ok()?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Some(stem) = path
            .file_stem()
            .and_then(|s| s.to_str())
            .map(str::to_string)
        else {
            continue;
        };
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| ModelArtifact::from_json(&text).map_err(|e| e.to_string()))
        {
            Ok(artifact) => versions.push(StoredVersion {
                version: stem,
                artifact: Arc::new(artifact),
            }),
            Err(e) => eprintln!("registry: skipping {}: {e}", path.display()),
        }
    }
    if versions.is_empty() {
        return None;
    }
    // Publish order is lost on disk; order deterministically by hash,
    // then move the recorded latest (when readable) to the back.
    versions.sort_by(|a, b| a.version.cmp(&b.version));
    if let Ok(latest) = std::fs::read_to_string(id_dir.join("latest")) {
        let latest = latest.trim();
        if let Some(i) = versions.iter().position(|v| v.version == latest) {
            let v = versions.remove(i);
            versions.push(v);
        }
    }
    Some(Shelf { versions })
}

fn persist_version(id_dir: &Path, version: &str, artifact: &ModelArtifact) -> std::io::Result<()> {
    std::fs::create_dir_all(id_dir)?;
    let path = id_dir.join(format!("{version}.json"));
    write_atomic(&path, artifact.to_json().as_bytes())?;
    persist_latest(id_dir, version)
}

fn persist_latest(id_dir: &Path, version: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(id_dir)?;
    write_atomic(&id_dir.join("latest"), version.as_bytes())
}

/// Temp-file + rename write, so a crash mid-write never corrupts an
/// existing artifact.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut staged = path.as_os_str().to_owned();
    staged.push(".partial");
    let tmp = PathBuf::from(staged);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caffeine_core::expr::{BasisFunction, VarCombo, WeightConfig};
    use caffeine_core::Model;

    fn artifact(coefficient: f64) -> ModelArtifact {
        ModelArtifact::new(
            vec!["x".into()],
            vec![Model::new(
                vec![BasisFunction::from_vc(VarCombo::single(1, 0, -1))],
                vec![1.0, coefficient],
                WeightConfig::default(),
            )],
        )
        .unwrap()
    }

    #[test]
    fn publish_get_list_round_trip_in_memory() {
        let reg = ModelRegistry::in_memory();
        let (v1, created) = reg.publish("demo", artifact(2.0)).unwrap();
        assert!(created);
        let (v2, created) = reg.publish("demo", artifact(3.0)).unwrap();
        assert!(created);
        assert_ne!(v1, v2);
        // Latest is the most recent publish.
        assert_eq!(reg.get("demo", None).unwrap().version, v2);
        assert_eq!(reg.get("demo", Some(&v1)).unwrap().version, v1);
        assert!(reg.get("demo", Some("0000000000000000")).is_none());
        assert!(reg.get("ghost", None).is_none());
        assert_eq!(reg.list(), vec![("demo".into(), vec![v1, v2])]);
        assert_eq!(reg.total_versions(), 2);
        assert_eq!(reg.misses(), 2);
    }

    #[test]
    fn republish_is_idempotent_and_counts_as_hit() {
        let reg = ModelRegistry::in_memory();
        let (v1, _) = reg.publish("demo", artifact(2.0)).unwrap();
        let hits_before = reg.hits();
        let (v2, created) = reg.publish("demo", artifact(2.0)).unwrap();
        assert_eq!(v1, v2);
        assert!(!created);
        assert_eq!(reg.total_versions(), 1);
        assert!(reg.hits() > hits_before);
    }

    #[test]
    fn republish_retargets_latest() {
        let reg = ModelRegistry::in_memory();
        let (v1, _) = reg.publish("demo", artifact(2.0)).unwrap();
        let (v2, _) = reg.publish("demo", artifact(3.0)).unwrap();
        // Publishing the v1 content again makes it latest once more.
        let (again, created) = reg.publish("demo", artifact(2.0)).unwrap();
        assert_eq!(again, v1);
        assert!(!created);
        assert_eq!(reg.get("demo", None).unwrap().version, v1);
        assert_eq!(reg.get("demo", Some(&v2)).unwrap().version, v2);
    }

    #[test]
    fn invalid_ids_are_rejected() {
        let reg = ModelRegistry::in_memory();
        assert_eq!(reg.publish("", artifact(1.0)).unwrap_err().status, 400);
        assert_eq!(
            reg.publish("../sneaky", artifact(1.0)).unwrap_err().status,
            400
        );
    }

    #[test]
    fn disk_round_trip_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "caffeine-registry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        {
            let reg = ModelRegistry::open(&dir).unwrap();
            reg.publish("ota-gain", artifact(2.0)).unwrap();
            reg.publish("ota-gain", artifact(3.0)).unwrap();
            reg.publish("ota-pm", artifact(4.0)).unwrap();
        }
        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.total_versions(), 3);
        let latest = reg.get("ota-gain", None).unwrap();
        assert_eq!(latest.artifact, Arc::new(artifact(3.0)));
        // A corrupt file is skipped, not fatal.
        std::fs::write(dir.join("ota-pm").join("garbage.json"), "{nope").unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.total_versions(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
