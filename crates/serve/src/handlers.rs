//! Route dispatch: one function per endpoint, all pure request →
//! response over the shared server state.

use std::sync::Arc;
use std::time::Duration;

use serde::Deserialize;

use caffeine_core::ModelArtifact;
use caffeine_obs::{CompletedTrace, TraceSpan, TraceSummary};

use crate::error::ApiError;
use crate::http::{Request, Response};
use crate::jobs::{JobEntry, JobSpec};
use crate::router::{route, Route};
use crate::server::Shared;

/// A short label for metrics (bounded cardinality: route shape, not raw
/// path).
pub fn route_label(r: &Route) -> &'static str {
    match r {
        Route::Health => "healthz",
        Route::Ready => "readyz",
        Route::Metrics => "metrics",
        Route::Dashboard => "dashboard",
        Route::ListModels => "models.list",
        Route::PublishModel(_) => "models.publish",
        Route::GetModel(_) => "models.get",
        Route::Predict(_) => "models.predict",
        Route::ListJobs => "jobs.list",
        Route::SubmitJob => "jobs.submit",
        Route::GetJob(_) => "jobs.get",
        Route::JobEvents(_) => "jobs.events",
        Route::CancelJob(_) => "jobs.cancel",
        Route::ListTraces => "traces.list",
        Route::GetTrace(_) => "traces.get",
        Route::Shutdown => "admin.shutdown",
    }
}

/// What a handled request turns into: almost always a buffered
/// [`Response`], except for the SSE endpoint, which hands the connection
/// over to a streaming writer in the server loop.
#[derive(Debug)]
pub enum Outcome {
    /// A complete response, written with `Content-Length` framing.
    Response(Response),
    /// Stream this job's events as `text/event-stream` until it ends.
    StreamJobEvents(Arc<JobEntry>),
}

/// Resolves and executes a request. Returns the outcome plus the metric
/// label it should be recorded under. `request_id` is the correlation id
/// the server resolved for this request; handlers thread it into their
/// debug logs so handler-level lines correlate with the access log.
/// `root` is the request's root server span — job submission links the
/// job's trace to it, so a job's whole lifecycle shares the submitting
/// request's trace id.
pub fn handle(
    shared: &Arc<Shared>,
    request: &Request,
    request_id: &str,
    root: &mut TraceSpan,
) -> (Outcome, &'static str) {
    match route(&request.method, &request.path) {
        Err(e) => (Outcome::Response(e.into_response()), "unrouted"),
        Ok(r) => {
            let label = route_label(&r);
            let outcome = dispatch(shared, &r, request, request_id, root)
                .unwrap_or_else(|e| Outcome::Response(e.into_response()));
            (outcome, label)
        }
    }
}

/// Replaces non-finite floats with `null`, recursively. The vendored
/// JSON writer emits bare `Infinity` / `NaN` tokens (a deliberate
/// extension for checkpoint fidelity), which strict JSON clients cannot
/// parse — API responses (and SSE frames, see [`crate::jobs`]) must stay
/// standard.
pub(crate) fn sanitize(v: serde_json::Value) -> serde_json::Value {
    match v {
        serde_json::Value::Float(f) if !f.is_finite() => serde_json::Value::Null,
        serde_json::Value::Array(items) => {
            serde_json::Value::Array(items.into_iter().map(sanitize).collect())
        }
        serde_json::Value::Object(m) => serde_json::Value::Object(
            m.iter()
                .map(|(k, val)| (k.to_string(), sanitize(val.clone())))
                .collect(),
        ),
        other => other,
    }
}

fn json_response(status: u16, value: serde_json::Value) -> Response {
    // Sanitized `Value`s always serialize; degrade to a well-formed JSON
    // error body rather than panicking mid-request if that ever breaks.
    let body = serde_json::to_string(&sanitize(value)).unwrap_or_else(|_| {
        r#"{"error":{"code":"internal","message":"response rendering failed"}}"#.to_string()
    });
    Response::json(status, body)
}

fn ok_json(value: serde_json::Value) -> Response {
    json_response(200, value)
}

/// The allowed values of the jobs `?state=` filter.
const JOB_STATES: [&str; 6] = [
    "queued",
    "running",
    "paused",
    "finished",
    "failed",
    "cancelled",
];

fn dispatch(
    shared: &Arc<Shared>,
    route: &Route,
    request: &Request,
    request_id: &str,
    root: &mut TraceSpan,
) -> Result<Outcome, ApiError> {
    if let Route::JobEvents(id) = route {
        let entry = shared
            .jobs
            .get(*id)
            .ok_or_else(|| ApiError::not_found(format!("no job {id}")))?;
        shared.metrics.observe_sse_stream();
        return Ok(Outcome::StreamJobEvents(entry));
    }
    dispatch_response(shared, route, request, request_id, root).map(Outcome::Response)
}

fn dispatch_response(
    shared: &Arc<Shared>,
    route: &Route,
    request: &Request,
    request_id: &str,
    root: &mut TraceSpan,
) -> Result<Response, ApiError> {
    match route {
        Route::Health => Ok(ok_json(serde_json::json!({"status": "ok"}))),
        Route::Ready => match shared.readiness() {
            Ok(()) => Ok(ok_json(serde_json::json!({"status": "ready"}))),
            Err(reason) => Ok(json_response(
                503,
                serde_json::json!({"status": "unavailable", "reason": reason}),
            )),
        },
        Route::Metrics => {
            let text = shared.metrics.render(
                shared.registry.hits(),
                shared.registry.misses(),
                &shared.traces.stats(),
            );
            Ok(Response::text(200, text))
        }
        Route::Dashboard => Ok(Response::html(200, crate::dashboard::HTML.to_string())),
        Route::ListModels => {
            let models: Vec<serde_json::Value> = shared
                .registry
                .list()
                .into_iter()
                .map(|(id, versions)| {
                    serde_json::json!({
                        "id": id,
                        "latest": versions.last().cloned(),
                        "versions": versions,
                    })
                })
                .collect();
            Ok(ok_json(serde_json::json!({ "models": models })))
        }
        Route::PublishModel(id) => {
            let text = std::str::from_utf8(&request.body)
                .map_err(|_| ApiError::bad_request("artifact body is not UTF-8"))?;
            let artifact = ModelArtifact::from_json(text).map_err(ApiError::from)?;
            let (version, created) = shared.registry.publish(id, artifact)?;
            shared.logger().debug(
                "registry.publish",
                &[
                    ("request_id", request_id.into()),
                    ("model_id", id.as_str().into()),
                    ("version", version.as_str().into()),
                    ("created", created.into()),
                ],
            );
            let status = if created { 201 } else { 200 };
            Ok(json_response(
                status,
                serde_json::json!({
                    "id": id.clone(),
                    "version": version,
                    "created": created,
                }),
            ))
        }
        Route::GetModel(id) => {
            let stored = shared
                .registry
                .get(id, request.query_param("version"))
                .ok_or_else(|| no_such_model(id, request))?;
            Ok(Response::json(200, stored.artifact.to_json())
                .with_header("x-model-version", stored.version))
        }
        Route::Predict(id) => {
            let stored = shared
                .registry
                .get(id, request.query_param("version"))
                .ok_or_else(|| no_such_model(id, request))?;
            let body = parse_predict_body(&request.body)?;
            let predictions = stored
                .artifact
                .predict(body.model_index, &body.points)
                .map_err(ApiError::from)?;
            shared.logger().debug(
                "registry.predict",
                &[
                    ("request_id", request_id.into()),
                    ("model_id", id.as_str().into()),
                    ("version", stored.version.as_str().into()),
                    ("n_points", body.points.len().into()),
                ],
            );
            // Non-finite predictions (poles, overflow) arrive at the
            // client as `null` via sanitize().
            Ok(ok_json(serde_json::json!({
                "model_id": id.clone(),
                "version": stored.version,
                "n_points": body.points.len(),
                "predictions": predictions,
            }))
            .with_header("x-model-version", stored.version.clone()))
        }
        Route::ListJobs => {
            let state = request.query_param("state");
            if let Some(s) = state {
                if !JOB_STATES.contains(&s) {
                    return Err(ApiError::bad_request(format!(
                        "unknown state `{s}` (use one of {})",
                        JOB_STATES.join(", ")
                    )));
                }
            }
            Ok(ok_json(
                serde_json::json!({ "jobs": shared.jobs.list_json(state) }),
            ))
        }
        Route::SubmitJob => {
            let spec = JobSpec::from_json(&request.body)?;
            // Link the job's long-lived trace to this request: the job
            // trace reuses the request's trace id, so the whole lifecycle
            // (HTTP accept → queued → running → publish) is one tree.
            let parent = root.is_recording().then(|| root.context());
            let entry = shared.jobs.submit_traced(
                spec,
                Arc::clone(&shared.registry),
                Arc::clone(&shared.metrics),
                parent,
            )?;
            shared.metrics.observe_job_submitted();
            if let Some(trace) = entry.trace_id() {
                root.attr("job.trace_id", trace);
            }
            Ok(json_response(201, entry.status_json()))
        }
        Route::GetJob(id) => {
            let entry = shared
                .jobs
                .get(*id)
                .ok_or_else(|| ApiError::not_found(format!("no job {id}")))?;
            Ok(ok_json(entry.status_json()))
        }
        Route::CancelJob(id) => {
            let entry = shared
                .jobs
                .get(*id)
                .ok_or_else(|| ApiError::not_found(format!("no job {id}")))?;
            // A job that already reached a terminal state has nothing to
            // cancel: answer 409 carrying that state, so clients can tell
            // "cancel accepted" from "too late" (a live cancel is 202).
            let outcome = entry.outcome();
            if outcome.is_terminal() {
                let state = entry.state();
                return Ok(json_response(
                    409,
                    serde_json::json!({
                        "error": {
                            "code": "already_terminal",
                            "message": format!(
                                "job {id} already reached terminal state `{state}`"
                            ),
                        },
                        "state": state,
                    }),
                ));
            }
            // Via the manager, not the controller: a job still waiting in
            // the admission queue has no driver thread and must settle
            // synchronously.
            shared.jobs.cancel(*id);
            Ok(json_response(202, entry.status_json()))
        }
        Route::ListTraces => {
            let min_duration = match request.query_param("min_duration_ms") {
                None => Duration::ZERO,
                Some(raw) => Duration::from_millis(raw.parse::<u64>().map_err(|_| {
                    ApiError::bad_request("`min_duration_ms` must be a nonnegative integer")
                })?),
            };
            let error_only = match request.query_param("error") {
                None | Some("false") => false,
                Some("true") => true,
                Some(other) => {
                    return Err(ApiError::bad_request(format!(
                        "`error` must be `true` or `false`, not `{other}`"
                    )))
                }
            };
            let job = request.query_param("job");
            let attr = job.map(|id| ("job.id", id));
            let summaries = shared.traces.list(min_duration, error_only, attr);
            let traces: Vec<serde_json::Value> = summaries.iter().map(summary_json).collect();
            Ok(ok_json(serde_json::json!({ "traces": traces })))
        }
        Route::GetTrace(id) => {
            let trace_id = parse_trace_id(id)
                .ok_or_else(|| ApiError::not_found(format!("no trace `{id}`")))?;
            let trace = shared.traces.get(trace_id).ok_or_else(|| {
                ApiError::not_found(format!(
                    "no trace `{id}` (not yet finished, not sampled, or evicted)"
                ))
            })?;
            Ok(ok_json(trace_json(&trace)))
        }
        // Dispatched before this match (it hijacks the connection for
        // streaming); reaching here is a routing bug, reported as a 500
        // instead of tearing down the worker.
        Route::JobEvents(_) => Err(ApiError::internal("job-events route missed dispatch")),
        Route::Shutdown => {
            shared.begin_shutdown();
            Ok(json_response(202, serde_json::json!({"draining": true})))
        }
    }
}

/// Parses a canonical 32-hex-digit trace id. Strict: exact length, hex
/// digits only (no signs, whitespace, or `0x`).
fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

fn summary_json(s: &TraceSummary) -> serde_json::Value {
    serde_json::json!({
        "trace_id": format!("{:032x}", s.trace_id),
        "root": s.root_name,
        "start_unix_ns": s.start_unix_ns,
        "duration_ms": s.duration_ns as f64 / 1e6,
        "n_spans": s.n_spans,
        "error": s.error,
    })
}

fn trace_json(t: &CompletedTrace) -> serde_json::Value {
    let spans: Vec<serde_json::Value> = t
        .spans
        .iter()
        .map(|s| {
            let attrs: serde_json::Value = serde_json::Value::Object(
                s.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), serde_json::Value::String(v.clone())))
                    .collect(),
            );
            serde_json::json!({
                "span_id": format!("{:016x}", s.span_id),
                "parent_span_id": s.parent_span_id.map(|p| format!("{p:016x}")),
                "name": s.name,
                "kind": s.kind.as_str(),
                "start_unix_ns": s.start_unix_ns,
                // Offset from the trace's first span: small enough to stay
                // exact in JS (raw unix ns exceeds f64 precision).
                "offset_ns": s.start_unix_ns.saturating_sub(t.start_unix_ns),
                "duration_ns": s.duration_ns,
                "attrs": attrs,
                "error": s.error,
            })
        })
        .collect();
    serde_json::json!({
        "trace_id": format!("{:032x}", t.trace_id),
        "root": t.root_name,
        "start_unix_ns": t.start_unix_ns,
        "duration_ms": t.duration_ns as f64 / 1e6,
        "error": t.error,
        "n_spans": t.spans.len(),
        "spans": spans,
    })
}

fn no_such_model(id: &str, request: &Request) -> ApiError {
    match request.query_param("version") {
        Some(v) => ApiError::not_found(format!("no version `{v}` of model `{id}`")),
        None => ApiError::not_found(format!("no model `{id}`")),
    }
}

/// A predict body: `{"points": [[...], ...], "model": optional index}`.
#[derive(Debug)]
struct PredictBody {
    points: Vec<Vec<f64>>,
    model_index: Option<usize>,
}

fn parse_predict_body(body: &[u8]) -> Result<PredictBody, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("predict body is not UTF-8"))?;
    let v: serde_json::Value = serde_json::from_str(text)
        .map_err(|e| ApiError::bad_request(format!("predict body is not JSON: {e}")))?;
    let points_value = v
        .as_object()
        .and_then(|m| m.get("points"))
        .ok_or_else(|| ApiError::bad_request("predict body needs a `points` array"))?;
    let points: Vec<Vec<f64>> = Deserialize::from_value(points_value)
        .map_err(|e: serde::Error| ApiError::bad_request(format!("field `points`: {e}")))?;
    let model_index =
        match v.as_object().and_then(|m| m.get("model")) {
            None | Some(serde_json::Value::Null) => None,
            Some(mv) => Some(mv.as_u64().ok_or_else(|| {
                ApiError::bad_request("field `model` must be a nonnegative integer")
            })? as usize),
        };
    Ok(PredictBody {
        points,
        model_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    fn bare_request(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
        }
    }

    /// Satellite regression test: `DELETE` on a job that already reached
    /// a terminal state answers 409 with that state in the body, while a
    /// live cancel stays 202 — the two used to be indistinguishable.
    #[test]
    fn delete_on_a_terminal_job_is_409_with_the_state() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        })
        .unwrap();
        let shared = std::sync::Arc::clone(server.handle().shared());
        let points: Vec<Vec<f64>> = (1..=16).map(|i| vec![f64::from(i) * 0.5]).collect();
        let targets: Vec<f64> = points.iter().map(|p| 3.0 / p[0]).collect();
        let spec = JobSpec::from_json(
            serde_json::to_string(&serde_json::json!({
                "var_names": ["x0"],
                "points": points,
                "targets": targets,
                "population": 16,
                "generations": 2,
                "grammar": "rational",
            }))
            .unwrap()
            .as_bytes(),
        )
        .unwrap();
        let entry = shared
            .jobs
            .submit(
                spec,
                std::sync::Arc::clone(&shared.registry),
                std::sync::Arc::clone(&shared.metrics),
            )
            .unwrap();
        entry.join(); // terminal (finished)

        let request = bare_request("DELETE", &format!("/v1/jobs/{}", entry.id));
        let (outcome, label) = handle(&shared, &request, "t-rid", &mut TraceSpan::noop());
        assert_eq!(label, "jobs.cancel");
        let Outcome::Response(response) = outcome else {
            panic!("cancel must not stream");
        };
        assert_eq!(response.status, 409);
        let body: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(body["state"].as_str(), Some("finished"));
        assert_eq!(body["error"]["code"].as_str(), Some("already_terminal"));
        assert!(
            body["error"]["message"]
                .as_str()
                .unwrap()
                .contains("terminal state `finished`"),
            "{body:?}"
        );

        // A live job still cancels with 202.
        let long = JobSpec::from_json(
            serde_json::to_string(&serde_json::json!({
                "var_names": ["x0"],
                "points": points,
                "targets": targets,
                "population": 16,
                "generations": 1_000_000,
                "grammar": "rational",
            }))
            .unwrap()
            .as_bytes(),
        )
        .unwrap();
        let live = shared
            .jobs
            .submit(
                long,
                std::sync::Arc::clone(&shared.registry),
                std::sync::Arc::clone(&shared.metrics),
            )
            .unwrap();
        let request = bare_request("DELETE", &format!("/v1/jobs/{}", live.id));
        let (outcome, _) = handle(&shared, &request, "t-rid", &mut TraceSpan::noop());
        let Outcome::Response(response) = outcome else {
            panic!("cancel must not stream");
        };
        assert_eq!(response.status, 202);
        live.join();

        // Unknown job: still a plain 404.
        let (outcome, _) = handle(
            &shared,
            &bare_request("DELETE", "/v1/jobs/424242"),
            "t-rid",
            &mut TraceSpan::noop(),
        );
        let Outcome::Response(response) = outcome else {
            panic!("cancel must not stream");
        };
        assert_eq!(response.status, 404);
    }

    #[test]
    fn responses_never_carry_nonstandard_json_tokens() {
        let r = json_response(
            200,
            serde_json::json!({
                "ys": [1.5, f64::INFINITY, f64::NAN, -2.0],
                "nested": { "e": f64::NEG_INFINITY },
            }),
        );
        let body = String::from_utf8(r.body).unwrap();
        assert!(!body.contains("Infinity"), "{body}");
        assert!(!body.contains("NaN"), "{body}");
        assert!(body.contains("[1.5,null,null,-2"), "{body}");
        assert!(body.contains("\"e\":null"), "{body}");
    }

    #[test]
    fn predict_body_parses_points_and_model_index() {
        let b = parse_predict_body(br#"{"points": [[1.0, 2.0]], "model": 3}"#).unwrap();
        assert_eq!(b.points, vec![vec![1.0, 2.0]]);
        assert_eq!(b.model_index, Some(3));
        let b = parse_predict_body(br#"{"points": []}"#).unwrap();
        assert!(b.points.is_empty());
        assert_eq!(b.model_index, None);
    }

    #[test]
    fn predict_body_rejects_malformed_inputs() {
        assert_eq!(parse_predict_body(b"{").unwrap_err().status, 400);
        assert_eq!(parse_predict_body(b"{}").unwrap_err().status, 400);
        assert_eq!(
            parse_predict_body(br#"{"points": "nope"}"#)
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse_predict_body(br#"{"points": [[1]], "model": -2}"#)
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(parse_predict_body(&[0xff, 0xfe]).unwrap_err().status, 400);
    }
}
