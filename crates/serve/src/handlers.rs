//! Route dispatch: one function per endpoint, all pure request →
//! response over the shared server state.

use std::sync::Arc;

use serde::Deserialize;

use caffeine_core::ModelArtifact;

use crate::error::ApiError;
use crate::http::{Request, Response};
use crate::jobs::JobSpec;
use crate::router::{route, Route};
use crate::server::Shared;

/// A short label for metrics (bounded cardinality: route shape, not raw
/// path).
pub fn route_label(r: &Route) -> &'static str {
    match r {
        Route::Health => "healthz",
        Route::Metrics => "metrics",
        Route::ListModels => "models.list",
        Route::PublishModel(_) => "models.publish",
        Route::GetModel(_) => "models.get",
        Route::Predict(_) => "models.predict",
        Route::ListJobs => "jobs.list",
        Route::SubmitJob => "jobs.submit",
        Route::GetJob(_) => "jobs.get",
        Route::CancelJob(_) => "jobs.cancel",
        Route::Shutdown => "admin.shutdown",
    }
}

/// Resolves and executes a request. Returns the response plus the metric
/// label it should be recorded under.
pub fn handle(shared: &Arc<Shared>, request: &Request) -> (Response, &'static str) {
    match route(&request.method, &request.path) {
        Err(e) => (e.into_response(), "unrouted"),
        Ok(r) => {
            let label = route_label(&r);
            let response = dispatch(shared, &r, request).unwrap_or_else(ApiError::into_response);
            (response, label)
        }
    }
}

/// Replaces non-finite floats with `null`, recursively. The vendored
/// JSON writer emits bare `Infinity` / `NaN` tokens (a deliberate
/// extension for checkpoint fidelity), which strict JSON clients cannot
/// parse — API responses must stay standard.
fn sanitize(v: serde_json::Value) -> serde_json::Value {
    match v {
        serde_json::Value::Float(f) if !f.is_finite() => serde_json::Value::Null,
        serde_json::Value::Array(items) => {
            serde_json::Value::Array(items.into_iter().map(sanitize).collect())
        }
        serde_json::Value::Object(m) => serde_json::Value::Object(
            m.iter()
                .map(|(k, val)| (k.to_string(), sanitize(val.clone())))
                .collect(),
        ),
        other => other,
    }
}

fn json_response(status: u16, value: serde_json::Value) -> Response {
    Response::json(
        status,
        serde_json::to_string(&sanitize(value)).expect("value renders"),
    )
}

fn ok_json(value: serde_json::Value) -> Response {
    json_response(200, value)
}

fn dispatch(shared: &Arc<Shared>, route: &Route, request: &Request) -> Result<Response, ApiError> {
    match route {
        Route::Health => Ok(ok_json(serde_json::json!({"status": "ok"}))),
        Route::Metrics => {
            let text = shared
                .metrics
                .render(shared.registry.hits(), shared.registry.misses());
            Ok(Response::text(200, text))
        }
        Route::ListModels => {
            let models: Vec<serde_json::Value> = shared
                .registry
                .list()
                .into_iter()
                .map(|(id, versions)| {
                    serde_json::json!({
                        "id": id,
                        "latest": versions.last().cloned(),
                        "versions": versions,
                    })
                })
                .collect();
            Ok(ok_json(serde_json::json!({ "models": models })))
        }
        Route::PublishModel(id) => {
            let text = std::str::from_utf8(&request.body)
                .map_err(|_| ApiError::bad_request("artifact body is not UTF-8"))?;
            let artifact = ModelArtifact::from_json(text).map_err(ApiError::from)?;
            let (version, created) = shared.registry.publish(id, artifact)?;
            let status = if created { 201 } else { 200 };
            Ok(json_response(
                status,
                serde_json::json!({
                    "id": id.clone(),
                    "version": version,
                    "created": created,
                }),
            ))
        }
        Route::GetModel(id) => {
            let stored = shared
                .registry
                .get(id, request.query_param("version"))
                .ok_or_else(|| no_such_model(id, request))?;
            Ok(Response::json(200, stored.artifact.to_json())
                .with_header("x-model-version", stored.version))
        }
        Route::Predict(id) => {
            let stored = shared
                .registry
                .get(id, request.query_param("version"))
                .ok_or_else(|| no_such_model(id, request))?;
            let body = parse_predict_body(&request.body)?;
            let predictions = stored
                .artifact
                .predict(body.model_index, &body.points)
                .map_err(ApiError::from)?;
            // Non-finite predictions (poles, overflow) arrive at the
            // client as `null` via sanitize().
            Ok(ok_json(serde_json::json!({
                "model_id": id.clone(),
                "version": stored.version,
                "n_points": body.points.len(),
                "predictions": predictions,
            }))
            .with_header("x-model-version", stored.version.clone()))
        }
        Route::ListJobs => Ok(ok_json(
            serde_json::json!({ "jobs": shared.jobs.list_json() }),
        )),
        Route::SubmitJob => {
            let spec = JobSpec::from_json(&request.body)?;
            let entry = shared.jobs.submit(
                spec,
                Arc::clone(&shared.registry),
                Arc::clone(&shared.metrics),
            )?;
            shared.metrics.observe_job_submitted();
            Ok(json_response(201, entry.status_json()))
        }
        Route::GetJob(id) => {
            let entry = shared
                .jobs
                .get(*id)
                .ok_or_else(|| ApiError::not_found(format!("no job {id}")))?;
            Ok(ok_json(entry.status_json()))
        }
        Route::CancelJob(id) => {
            if !shared.jobs.cancel(*id) {
                return Err(ApiError::not_found(format!("no job {id}")));
            }
            let entry = shared.jobs.get(*id).expect("job exists after cancel");
            Ok(json_response(202, entry.status_json()))
        }
        Route::Shutdown => {
            shared.begin_shutdown();
            Ok(json_response(202, serde_json::json!({"draining": true})))
        }
    }
}

fn no_such_model(id: &str, request: &Request) -> ApiError {
    match request.query_param("version") {
        Some(v) => ApiError::not_found(format!("no version `{v}` of model `{id}`")),
        None => ApiError::not_found(format!("no model `{id}`")),
    }
}

/// A predict body: `{"points": [[...], ...], "model": optional index}`.
#[derive(Debug)]
struct PredictBody {
    points: Vec<Vec<f64>>,
    model_index: Option<usize>,
}

fn parse_predict_body(body: &[u8]) -> Result<PredictBody, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("predict body is not UTF-8"))?;
    let v: serde_json::Value = serde_json::from_str(text)
        .map_err(|e| ApiError::bad_request(format!("predict body is not JSON: {e}")))?;
    let points_value = v
        .as_object()
        .and_then(|m| m.get("points"))
        .ok_or_else(|| ApiError::bad_request("predict body needs a `points` array"))?;
    let points: Vec<Vec<f64>> = Deserialize::from_value(points_value)
        .map_err(|e: serde::Error| ApiError::bad_request(format!("field `points`: {e}")))?;
    let model_index =
        match v.as_object().and_then(|m| m.get("model")) {
            None | Some(serde_json::Value::Null) => None,
            Some(mv) => Some(mv.as_u64().ok_or_else(|| {
                ApiError::bad_request("field `model` must be a nonnegative integer")
            })? as usize),
        };
    Ok(PredictBody {
        points,
        model_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_never_carry_nonstandard_json_tokens() {
        let r = json_response(
            200,
            serde_json::json!({
                "ys": [1.5, f64::INFINITY, f64::NAN, -2.0],
                "nested": { "e": f64::NEG_INFINITY },
            }),
        );
        let body = String::from_utf8(r.body).unwrap();
        assert!(!body.contains("Infinity"), "{body}");
        assert!(!body.contains("NaN"), "{body}");
        assert!(body.contains("[1.5,null,null,-2"), "{body}");
        assert!(body.contains("\"e\":null"), "{body}");
    }

    #[test]
    fn predict_body_parses_points_and_model_index() {
        let b = parse_predict_body(br#"{"points": [[1.0, 2.0]], "model": 3}"#).unwrap();
        assert_eq!(b.points, vec![vec![1.0, 2.0]]);
        assert_eq!(b.model_index, Some(3));
        let b = parse_predict_body(br#"{"points": []}"#).unwrap();
        assert!(b.points.is_empty());
        assert_eq!(b.model_index, None);
    }

    #[test]
    fn predict_body_rejects_malformed_inputs() {
        assert_eq!(parse_predict_body(b"{").unwrap_err().status, 400);
        assert_eq!(parse_predict_body(b"{}").unwrap_err().status, 400);
        assert_eq!(
            parse_predict_body(br#"{"points": "nope"}"#)
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse_predict_body(br#"{"points": [[1]], "model": -2}"#)
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(parse_predict_body(&[0xff, 0xfe]).unwrap_err().status, 400);
    }
}
