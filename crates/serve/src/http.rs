//! A strict, bounded HTTP/1.x subset: request parsing and response
//! writing over any `Read`/`Write` pair.
//!
//! The parser is deliberately small and paranoid rather than featureful:
//! requests are `METHOD SP TARGET SP HTTP/1.x`, headers are
//! `Name: value`, bodies require `Content-Length`. Everything is
//! bounded — head bytes, header count, body bytes — and every failure is
//! a typed [`HttpError`] mapping to a definite status code, so malformed,
//! truncated, or oversized input can never panic the worker or hold it
//! hostage (callers set socket read timeouts; a timeout surfaces as
//! [`HttpError::Io`]).
//!
//! [`parse_head`] is a pure function over bytes, which is what the
//! property tests hammer; [`read_request`] layers the socket loop on top.

use std::io::{Read, Write};

/// Hard cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on the number of headers.
pub const MAX_HEADERS: usize = 100;
/// Default cap on the body, in bytes (callers can lower it).
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parse/transport failure with a definite HTTP status.
#[derive(Debug)]
pub enum HttpError {
    /// 400 — the bytes are not a well-formed request.
    Malformed(String),
    /// 413 — head or declared body exceeds the configured bound.
    TooLarge(String),
    /// 501 — well-formed but using a feature this server does not
    /// implement (e.g. chunked transfer encoding).
    Unsupported(String),
    /// The connection died or timed out mid-request.
    Io(std::io::Error),
    /// The peer closed before sending anything (not an error worth a
    /// response).
    Closed,
    /// A read timed out before the first byte of a request arrived: a
    /// kept-alive connection went idle (close quietly, no response).
    Idle,
}

impl HttpError {
    /// The status code a response for this failure should carry (`Io` and
    /// `Closed` get none — the socket is gone or silent).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Malformed(_) => Some(400),
            HttpError::TooLarge(_) => Some(413),
            HttpError::Unsupported(_) => Some(501),
            HttpError::Io(_) | HttpError::Closed | HttpError::Idle => None,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::Malformed(m) | HttpError::TooLarge(m) | HttpError::Unsupported(m) => {
                m.clone()
            }
            HttpError::Io(e) => e.to_string(),
            HttpError::Closed => "connection closed".into(),
            HttpError::Idle => "connection idle".into(),
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component (no query string).
    pub path: String,
    /// The raw query string after `?`, when present.
    pub query: Option<String>,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// `true` when the request line said `HTTP/1.0` (affects the
    /// keep-alive default).
    pub http10: bool,
}

impl Request {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a `key=value` query parameter, when present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Whether the client is willing to reuse the connection: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close` is sent; HTTP/1.0
    /// defaults to close unless `Connection: keep-alive` is sent. The
    /// `Connection` header is treated as a comma-separated token list.
    pub fn wants_keep_alive(&self) -> bool {
        let token = |t: &str| {
            self.header("connection")
                .is_some_and(|v| v.split(',').any(|tok| tok.trim().eq_ignore_ascii_case(t)))
        };
        if token("close") {
            false
        } else if self.http10 {
            token("keep-alive")
        } else {
            true
        }
    }
}

/// The head of a request: everything but the body, plus how many bytes of
/// the input the head consumed and the declared body length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// The request minus its body.
    pub request: Request,
    /// Bytes of input consumed by the head (through the blank line).
    pub consumed: usize,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
}

fn is_token_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parses a request head from a byte buffer that contains at least the
/// full head (through `\r\n\r\n`).
///
/// Returns `Ok(None)` when the buffer does not yet contain a complete
/// head (the caller should read more, up to [`MAX_HEAD_BYTES`]).
///
/// # Errors
///
/// [`HttpError::Malformed`] for syntactic violations,
/// [`HttpError::TooLarge`] for too many headers, [`HttpError::Unsupported`]
/// for chunked transfer encoding or non-1.x versions.
pub fn parse_head(buf: &[u8]) -> Result<Option<Head>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        return Ok(None);
    };
    let head = &buf[..head_end];
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(
                "request line is not `METHOD TARGET VERSION`".into(),
            ))
        }
    };
    if !method.bytes().all(is_token_char) {
        return Err(HttpError::Malformed("method is not a token".into()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Unsupported(format!(
            "version `{version}` (this server speaks HTTP/1.x)"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(
            "request target must be an absolute path".into(),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without colon: `{line}`")))?;
        if name.is_empty() || !name.bytes().all(is_token_char) {
            return Err(HttpError::Malformed(format!(
                "header name `{name}` is not a token"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
        http10: version == "HTTP/1.0",
    };
    if let Some(te) = request.header("transfer-encoding") {
        return Err(HttpError::Unsupported(format!(
            "transfer-encoding `{te}` (send Content-Length)"
        )));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("Content-Length `{v}` is not a number")))?,
    };
    Ok(Some(Head {
        request,
        consumed: head_end,
        content_length,
    }))
}

/// Index just past the `\r\n\r\n` terminator, when present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Reads one full request from a stream, enforcing all bounds.
///
/// # Errors
///
/// Every [`HttpError`] variant: malformed/oversized/unsupported input,
/// transport failures (including read timeouts), and [`HttpError::Closed`]
/// when the peer disconnects before sending a byte.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    let mut carry = Vec::with_capacity(1024);
    let request = read_request_buffered(&mut carry, stream, max_body)?;
    if !carry.is_empty() {
        // One-shot semantics: this connection serves a single request, so
        // trailing bytes can only be body overrun.
        return Err(HttpError::Malformed(
            "more body bytes than Content-Length declares".into(),
        ));
    }
    Ok(request)
}

/// [`read_request`] for a kept-alive connection: consumes exactly one
/// request from `carry` + the stream, leaving any bytes beyond it — a
/// pipelined successor request — in `carry` for the next call.
///
/// # Errors
///
/// As [`read_request`], plus [`HttpError::Idle`] when a read times out
/// before the first byte of a request arrives.
pub fn read_request_buffered(
    carry: &mut Vec<u8>,
    stream: &mut impl Read,
    max_body: usize,
) -> Result<Request, HttpError> {
    let mut chunk = [0u8; 4096];
    let head = loop {
        if let Some(head) = parse_head(carry)? {
            break head;
        }
        if carry.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            // A timeout before any byte arrived is not a protocol error:
            // the peer is just holding an idle (kept-alive) connection
            // open. Mid-request timeouts stay transport errors.
            Err(e)
                if carry.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(HttpError::Idle)
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            if carry.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed(
                "connection closed mid-request-head".into(),
            ));
        }
        carry.extend_from_slice(&chunk[..n]);
    };

    if head.content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "declared body of {} bytes exceeds the {max_body}-byte limit",
            head.content_length
        )));
    }
    let total = head.consumed + head.content_length;
    while carry.len() < total {
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed mid-request-body".into(),
            ));
        }
        carry.extend_from_slice(&chunk[..n]);
    }
    let mut request = head.request;
    request.body = carry[head.consumed..total].to_vec();
    carry.drain(..total);
    Ok(request)
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (Content-Type/Length and Connection are automatic).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response from an already-rendered body.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// An HTML response (the embedded dashboard page).
    pub fn html(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/html; charset=utf-8",
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response (HTTP/1.1). `keep_alive` decides the
    /// `Connection` header: the caller negotiated it from the request
    /// version, the client's `Connection` header, and its own
    /// per-connection request budget.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        write!(w, "content-type: {}\r\n", self.content_type)?;
        write!(w, "content-length: {}\r\n", self.body.len())?;
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(w, "connection: {connection}\r\n")?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Writes only the head of this response with
    /// `Transfer-Encoding: chunked` instead of a `Content-Length`, for
    /// endpoints that stream an open-ended body (the SSE job-event
    /// stream). The body field is ignored; stream chunks through the
    /// returned [`ChunkedWriter`]. Streamed responses always close the
    /// connection when done.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_chunked_head<'a, W: Write>(
        &self,
        w: &'a mut W,
    ) -> std::io::Result<ChunkedWriter<'a, W>> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        write!(w, "content-type: {}\r\n", self.content_type)?;
        write!(w, "transfer-encoding: chunked\r\n")?;
        write!(w, "connection: close\r\n")?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }
}

/// The terminating zero-length chunk ending a chunked body — what
/// [`ChunkedWriter::finish`] writes, as bytes for buffer-building
/// callers (the SSE streamer's outbox).
pub const CHUNKED_BODY_END: &[u8] = b"0\r\n\r\n";

/// Appends one `<hex len>\r\n<bytes>\r\n` chunk frame to a byte buffer —
/// the buffered twin of [`ChunkedWriter::chunk`], for writers that build
/// an outbox and flush it nonblockingly. Empty input is skipped (a
/// zero-length chunk would terminate the body).
pub fn encode_chunk(out: &mut Vec<u8>, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Writes an HTTP/1.1 chunked body: each [`ChunkedWriter::chunk`] call
/// becomes one `<hex len>\r\n<bytes>\r\n` frame, and
/// [`ChunkedWriter::finish`] sends the terminating zero-length chunk.
#[derive(Debug)]
pub struct ChunkedWriter<'a, W: Write> {
    w: &'a mut W,
}

impl<W: Write> ChunkedWriter<'_, W> {
    /// Sends one non-empty chunk and flushes it (streaming consumers must
    /// see frames as they happen, not when a buffer fills). Empty input is
    /// skipped — a zero-length chunk would terminate the body.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (the peer hanging up mid-stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminates the chunked body.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn finish(self) -> std::io::Result<()> {
        self.w.write_all(CHUNKED_BODY_END)?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_str(s: &str) -> Result<Request, HttpError> {
        read_request(
            &mut Cursor::new(s.as_bytes().to_vec()),
            DEFAULT_MAX_BODY_BYTES,
        )
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let r =
            parse_str("GET /v1/models/demo?version=abc HTTP/1.1\r\nHost: x\r\nX-Trace: 7\r\n\r\n")
                .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/models/demo");
        assert_eq!(r.query_param("version"), Some("abc"));
        assert_eq!(r.header("x-trace"), Some("7"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse_str("POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "G T / HTTP/1.1\r\n\r\n",
        ] {
            let e = parse_str(bad).unwrap_err();
            assert_eq!(e.status(), Some(400), "{bad:?} → {e:?}");
        }
    }

    #[test]
    fn rejects_unsupported_features_with_501() {
        let e = parse_str("GET / HTTP/2\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(501));
        let e = parse_str("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(501));
    }

    #[test]
    fn bounds_are_enforced_with_413() {
        let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        let e = parse_str(&huge_head).unwrap_err();
        assert_eq!(e.status(), Some(413));
        let e = read_request(
            &mut Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n".to_vec()),
            10,
        )
        .unwrap_err();
        assert_eq!(e.status(), Some(413));
    }

    #[test]
    fn truncation_is_malformed_not_a_panic() {
        let e = parse_str("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(e.status(), Some(400));
        let e = parse_str("GET / HTTP/1.1\r\nHost").unwrap_err();
        assert_eq!(e.status(), Some(400));
        assert!(matches!(parse_str("").unwrap_err(), HttpError::Closed));
    }

    #[test]
    fn pipelined_requests_are_consumed_one_at_a_time() {
        // Two requests sent back to back (the second with a body), as a
        // pipelining client would: each read must consume exactly one,
        // leaving the rest in the carry buffer.
        let wire = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = Cursor::new(wire.as_bytes().to_vec());
        let mut carry = Vec::new();
        let first = read_request_buffered(&mut carry, &mut cursor, 1024).unwrap();
        assert_eq!(first.path, "/a");
        assert!(first.body.is_empty());
        let second = read_request_buffered(&mut carry, &mut cursor, 1024).unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"hi");
        assert!(carry.is_empty());
        assert!(matches!(
            read_request_buffered(&mut carry, &mut cursor, 1024).unwrap_err(),
            HttpError::Closed
        ));
        // The one-shot reader still rejects trailing bytes outright.
        let e = parse_str(wire).unwrap_err();
        assert_eq!(e.status(), Some(400));
    }

    #[test]
    fn bad_content_length_is_malformed() {
        let e = parse_str("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(400));
        let e = parse_str("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(400));
    }

    #[test]
    fn responses_render_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("x-model-version", "abc")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.contains("x-model-version: abc"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }

    #[test]
    fn responses_can_advertise_keep_alive() {
        let mut out = Vec::new();
        Response::json(200, "{}".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive"), "{text}");
        assert!(!text.contains("connection: close"), "{text}");
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_connection_header() {
        let r = parse_str("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive(), "1.1 defaults to keep-alive");
        let r = parse_str("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive());
        let r = parse_str("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "header value is case-insensitive");
        let r = parse_str("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "1.0 defaults to close");
        let r = parse_str("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive());
        let r = parse_str("GET / HTTP/1.1\r\nConnection: x, close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "token list is scanned");
    }

    #[test]
    fn idle_timeout_before_first_byte_is_distinguished() {
        struct TimesOut;
        impl Read for TimesOut {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        let e = read_request(&mut TimesOut, 1024).unwrap_err();
        assert!(matches!(e, HttpError::Idle), "{e:?}");
        assert_eq!(e.status(), None);

        // Same timeout after bytes arrived: a stalled request, a real
        // transport error (the caller answers 408).
        struct PartialThenTimeout(bool);
        impl Read for PartialThenTimeout {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 {
                    return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                }
                self.0 = true;
                buf[..4].copy_from_slice(b"GET ");
                Ok(4)
            }
        }
        let e = read_request(&mut PartialThenTimeout(false), 1024).unwrap_err();
        assert!(matches!(e, HttpError::Io(_)), "{e:?}");
    }

    #[test]
    fn encode_chunk_matches_the_streaming_writer() {
        // The buffered encoder and ChunkedWriter must stay wire-identical:
        // the SSE streamer builds outboxes with one, tests and the
        // blocking path use the other.
        let mut streamed = Vec::new();
        {
            let mut w = ChunkedWriter { w: &mut streamed };
            w.chunk(b"event: x\n\n").unwrap();
            w.chunk(b"").unwrap();
            w.chunk(b"hi").unwrap();
        }
        streamed.extend_from_slice(CHUNKED_BODY_END);
        let mut buffered = Vec::new();
        encode_chunk(&mut buffered, b"event: x\n\n");
        encode_chunk(&mut buffered, b"");
        encode_chunk(&mut buffered, b"hi");
        buffered.extend_from_slice(CHUNKED_BODY_END);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn chunked_bodies_frame_and_terminate() {
        let mut out = Vec::new();
        let mut sse = Response {
            status: 200,
            headers: Vec::new(),
            body: Vec::new(),
            content_type: "text/event-stream",
        };
        sse.headers
            .push(("cache-control".into(), "no-cache".into()));
        let mut w = sse.write_chunked_head(&mut out).unwrap();
        w.chunk(b"event: progress\ndata: {}\n\n").unwrap();
        w.chunk(b"").unwrap(); // skipped, must not terminate the stream
        w.chunk(b"xy").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked"), "{text}");
        assert!(text.contains("cache-control: no-cache"), "{text}");
        assert!(!text.contains("content-length"), "{text}");
        let (_, body) = text.split_once("\r\n\r\n").unwrap();
        assert_eq!(
            body,
            "1a\r\nevent: progress\ndata: {}\n\n\r\n2\r\nxy\r\n0\r\n\r\n"
        );
    }
}
