//! A strict, bounded HTTP/1.x subset: request parsing and response
//! writing over any `Read`/`Write` pair.
//!
//! The parser is deliberately small and paranoid rather than featureful:
//! requests are `METHOD SP TARGET SP HTTP/1.x`, headers are
//! `Name: value`, bodies require `Content-Length`. Everything is
//! bounded — head bytes, header count, body bytes — and every failure is
//! a typed [`HttpError`] mapping to a definite status code, so malformed,
//! truncated, or oversized input can never panic the worker or hold it
//! hostage (callers set socket read timeouts; a timeout surfaces as
//! [`HttpError::Io`]).
//!
//! [`parse_head`] is a pure function over bytes, which is what the
//! property tests hammer; [`read_request`] layers the socket loop on top.

use std::io::{Read, Write};

/// Hard cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on the number of headers.
pub const MAX_HEADERS: usize = 100;
/// Default cap on the body, in bytes (callers can lower it).
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parse/transport failure with a definite HTTP status.
#[derive(Debug)]
pub enum HttpError {
    /// 400 — the bytes are not a well-formed request.
    Malformed(String),
    /// 413 — head or declared body exceeds the configured bound.
    TooLarge(String),
    /// 501 — well-formed but using a feature this server does not
    /// implement (e.g. chunked transfer encoding).
    Unsupported(String),
    /// The connection died or timed out mid-request.
    Io(std::io::Error),
    /// The peer closed before sending anything (not an error worth a
    /// response).
    Closed,
}

impl HttpError {
    /// The status code a response for this failure should carry (`Io` and
    /// `Closed` get none — the socket is gone or silent).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Malformed(_) => Some(400),
            HttpError::TooLarge(_) => Some(413),
            HttpError::Unsupported(_) => Some(501),
            HttpError::Io(_) | HttpError::Closed => None,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::Malformed(m) | HttpError::TooLarge(m) | HttpError::Unsupported(m) => {
                m.clone()
            }
            HttpError::Io(e) => e.to_string(),
            HttpError::Closed => "connection closed".into(),
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component (no query string).
    pub path: String,
    /// The raw query string after `?`, when present.
    pub query: Option<String>,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a `key=value` query parameter, when present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// The head of a request: everything but the body, plus how many bytes of
/// the input the head consumed and the declared body length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// The request minus its body.
    pub request: Request,
    /// Bytes of input consumed by the head (through the blank line).
    pub consumed: usize,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
}

fn is_token_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parses a request head from a byte buffer that contains at least the
/// full head (through `\r\n\r\n`).
///
/// Returns `Ok(None)` when the buffer does not yet contain a complete
/// head (the caller should read more, up to [`MAX_HEAD_BYTES`]).
///
/// # Errors
///
/// [`HttpError::Malformed`] for syntactic violations,
/// [`HttpError::TooLarge`] for too many headers, [`HttpError::Unsupported`]
/// for chunked transfer encoding or non-1.x versions.
pub fn parse_head(buf: &[u8]) -> Result<Option<Head>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        return Ok(None);
    };
    let head = &buf[..head_end];
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(
                "request line is not `METHOD TARGET VERSION`".into(),
            ))
        }
    };
    if !method.bytes().all(is_token_char) {
        return Err(HttpError::Malformed("method is not a token".into()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Unsupported(format!(
            "version `{version}` (this server speaks HTTP/1.x)"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(
            "request target must be an absolute path".into(),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without colon: `{line}`")))?;
        if name.is_empty() || !name.bytes().all(is_token_char) {
            return Err(HttpError::Malformed(format!(
                "header name `{name}` is not a token"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(te) = request.header("transfer-encoding") {
        return Err(HttpError::Unsupported(format!(
            "transfer-encoding `{te}` (send Content-Length)"
        )));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("Content-Length `{v}` is not a number")))?,
    };
    Ok(Some(Head {
        request,
        consumed: head_end,
        content_length,
    }))
}

/// Index just past the `\r\n\r\n` terminator, when present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Reads one full request from a stream, enforcing all bounds.
///
/// # Errors
///
/// Every [`HttpError`] variant: malformed/oversized/unsupported input,
/// transport failures (including read timeouts), and [`HttpError::Closed`]
/// when the peer disconnects before sending a byte.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head = loop {
        if let Some(head) = parse_head(&buf)? {
            break head;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed(
                "connection closed mid-request-head".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    if head.content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "declared body of {} bytes exceeds the {max_body}-byte limit",
            head.content_length
        )));
    }
    let mut request = head.request;
    let mut body: Vec<u8> = buf[head.consumed..].to_vec();
    if body.len() > head.content_length {
        return Err(HttpError::Malformed(
            "more body bytes than Content-Length declares".into(),
        ));
    }
    while body.len() < head.content_length {
        let want = (head.content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed mid-request-body".into(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    request.body = body;
    Ok(request)
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (Content-Type/Length and Connection are automatic).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response from an already-rendered body.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response (HTTP/1.1, `Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        write!(w, "content-type: {}\r\n", self.content_type)?;
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(w, "connection: close\r\n")?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_str(s: &str) -> Result<Request, HttpError> {
        read_request(
            &mut Cursor::new(s.as_bytes().to_vec()),
            DEFAULT_MAX_BODY_BYTES,
        )
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let r =
            parse_str("GET /v1/models/demo?version=abc HTTP/1.1\r\nHost: x\r\nX-Trace: 7\r\n\r\n")
                .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/models/demo");
        assert_eq!(r.query_param("version"), Some("abc"));
        assert_eq!(r.header("x-trace"), Some("7"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse_str("POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "G T / HTTP/1.1\r\n\r\n",
        ] {
            let e = parse_str(bad).unwrap_err();
            assert_eq!(e.status(), Some(400), "{bad:?} → {e:?}");
        }
    }

    #[test]
    fn rejects_unsupported_features_with_501() {
        let e = parse_str("GET / HTTP/2\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(501));
        let e = parse_str("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(501));
    }

    #[test]
    fn bounds_are_enforced_with_413() {
        let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        let e = parse_str(&huge_head).unwrap_err();
        assert_eq!(e.status(), Some(413));
        let e = read_request(
            &mut Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n".to_vec()),
            10,
        )
        .unwrap_err();
        assert_eq!(e.status(), Some(413));
    }

    #[test]
    fn truncation_is_malformed_not_a_panic() {
        let e = parse_str("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(e.status(), Some(400));
        let e = parse_str("GET / HTTP/1.1\r\nHost").unwrap_err();
        assert_eq!(e.status(), Some(400));
        assert!(matches!(parse_str("").unwrap_err(), HttpError::Closed));
    }

    #[test]
    fn bad_content_length_is_malformed() {
        let e = parse_str("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(400));
        let e = parse_str("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some(400));
    }

    #[test]
    fn responses_render_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("x-model-version", "abc")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.contains("x-model-version: abc"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }
}
