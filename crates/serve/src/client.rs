//! A minimal blocking HTTP/1.1 client for the daemon's own API — used by
//! `caffeine-cli predict --remote`, the load generator, and the
//! integration tests. One request per connection, matching the server's
//! `Connection: close` policy.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).to_string()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// A message when the body is not JSON.
    pub fn json(&self) -> Result<serde_json::Value, String> {
        serde_json::from_str(&self.text()).map_err(|e| e.to_string())
    }
}

/// Splits `http://host:port[/base]` into `(host:port, base_path)`.
///
/// # Errors
///
/// A message for non-`http://` schemes or a missing authority.
pub fn parse_base_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("`{url}`: only http:// URLs are supported"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].trim_end_matches('/')),
        None => (rest, ""),
    };
    if authority.is_empty() {
        return Err(format!("`{url}`: missing host"));
    }
    Ok((authority.to_string(), path.to_string()))
}

/// Performs one request against `addr` (a `host:port` string).
///
/// # Errors
///
/// Transport failures and unparseable responses as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;

    let body = body.unwrap_or(&[]);
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("response has no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("response head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(&format!("bad status line `{status_line}`")))?;
    Ok(ClientResponse {
        status,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_urls_parse() {
        assert_eq!(
            parse_base_url("http://127.0.0.1:7878").unwrap(),
            ("127.0.0.1:7878".into(), String::new())
        );
        assert_eq!(
            parse_base_url("http://example.com:80/api/").unwrap(),
            ("example.com:80".into(), "/api".into())
        );
        assert!(parse_base_url("https://x").is_err());
        assert!(parse_base_url("http://").is_err());
    }

    #[test]
    fn responses_parse() {
        let r = parse_response(b"HTTP/1.1 404 Not Found\r\na: b\r\n\r\n{\"e\":1}").unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.text(), "{\"e\":1}");
        assert!(parse_response(b"garbage").is_err());
    }
}
