//! A minimal blocking HTTP/1.1 client for the daemon's own API — used by
//! `caffeine-cli predict --remote` / `jobs`, the load generator, and the
//! integration tests.
//!
//! [`Connection`] keeps one TCP connection open and reuses it across
//! requests (matching the server's keep-alive support), framing each
//! response by its `Content-Length` and reconnecting transparently when
//! the server closes (request cap reached, idle timeout, old server).
//! [`request`] is the one-shot convenience built on top. [`sse_tail`]
//! consumes a chunked `text/event-stream` response event by event, and
//! [`watch_job`] wraps it with reconnect-and-resume over the server's
//! replay history. [`Connection::request_with_retry`] layers a
//! [`RetryPolicy`] — capped exponential backoff with deterministic
//! jitter, `Retry-After` honoring, per-request deadlines — over the
//! basic request path.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use caffeine_obs::TraceContext;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).to_string()
    }

    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header in seconds, when present and numeric —
    /// overload responses (429/503) carry it.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// A message when the body is not JSON.
    pub fn json(&self) -> Result<serde_json::Value, String> {
        serde_json::from_str(&self.text()).map_err(|e| e.to_string())
    }
}

/// Splits `http://host:port[/base]` into `(host:port, base_path)`.
///
/// # Errors
///
/// A message for non-`http://` schemes or a missing authority.
pub fn parse_base_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("`{url}`: only http:// URLs are supported"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].trim_end_matches('/')),
        None => (rest, ""),
    };
    if authority.is_empty() {
        return Err(format!("`{url}`: missing host"));
    }
    Ok((authority.to_string(), path.to_string()))
}

/// A persistent keep-alive connection to one server.
#[derive(Debug)]
pub struct Connection {
    addr: String,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Connection {
    /// Creates a (lazily connected) connection to `addr` (`host:port`).
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Connection {
        Connection {
            addr: addr.into(),
            timeout,
            stream: None,
        }
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Performs one request, reusing the open connection when possible.
    ///
    /// When the reused socket turns out to be dead (the server closed it
    /// after its request cap or idle timeout), the request is retried
    /// once on a fresh connection — but only when that is provably safe:
    /// always when the *write* failed (the server never saw the full
    /// request), and on a dead read only for idempotent methods. A `POST`
    /// whose response never arrived is NOT retried, since the server may
    /// have executed it (e.g. spawned a job) before dying.
    ///
    /// # Errors
    ///
    /// Transport failures and unparseable responses as `io::Error`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        self.request_traced(method, path, body, TraceContext::mint())
    }

    /// Like [`Connection::request`], but propagating the caller's trace
    /// context instead of minting one. A context with `sampled` set asks
    /// the server to retain the trace regardless of its sampling policy.
    ///
    /// # Errors
    ///
    /// Transport failures and unparseable responses as `io::Error`.
    pub fn request_traced(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        ctx: TraceContext,
    ) -> std::io::Result<ClientResponse> {
        let reused = self.stream.is_some();
        match self.try_request(method, path, body, ctx) {
            Ok(r) => Ok(r),
            Err((phase, e)) if reused && is_stale_socket(&e) && phase.retry_safe(method) => {
                self.stream = None;
                self.try_request(method, path, body, ctx)
                    .map_err(|(_, e)| e)
            }
            Err((_, e)) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Like [`Connection::request`], but under a [`RetryPolicy`]:
    /// transport failures back off and retry when a repeat is provably
    /// safe, and overload answers (429/503) are retried after honoring
    /// the server's `Retry-After` (capped at the policy's
    /// `max_backoff`) or, absent one, the computed backoff.
    ///
    /// Retrying after a *received* 429/503 is safe for any method —
    /// including POST — because a response in hand proves the server
    /// refused the request without executing it. Transport failures
    /// keep the phase rule: a write-phase failure retries any method, a
    /// read-phase failure only idempotent ones (or any, when the policy
    /// opts into `assume_idempotent`).
    ///
    /// # Errors
    ///
    /// The final attempt's transport failure once attempts or the
    /// deadline run out, or immediately when a retry would be unsafe.
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        policy: &RetryPolicy,
    ) -> std::io::Result<ClientResponse> {
        self.request_traced_with_retry(method, path, body, TraceContext::mint(), policy)
    }

    /// [`Connection::request_with_retry`] propagating the caller's trace
    /// context. Every attempt reuses the same context, so the server's
    /// trace shows the retries as siblings of one client span.
    ///
    /// # Errors
    ///
    /// As [`Connection::request_with_retry`].
    pub fn request_traced_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        ctx: TraceContext,
        policy: &RetryPolicy,
    ) -> std::io::Result<ClientResponse> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.try_request(method, path, body, ctx) {
                Ok(r) if matches!(r.status, 429 | 503) && attempt < policy.max_attempts => {
                    let wait = r
                        .retry_after()
                        .map(Duration::from_secs)
                        .unwrap_or_else(|| policy.backoff(attempt))
                        .min(policy.max_backoff);
                    if start.elapsed() + wait >= policy.deadline {
                        return Ok(r); // surface the overload answer
                    }
                    std::thread::sleep(wait);
                }
                Ok(r) => return Ok(r),
                Err((phase, e)) => {
                    self.stream = None;
                    let safe = phase.retry_safe(method) || policy.assume_idempotent;
                    if !safe || attempt >= policy.max_attempts {
                        return Err(e);
                    }
                    let wait = policy.backoff(attempt);
                    if start.elapsed() + wait >= policy.deadline {
                        return Err(e);
                    }
                    std::thread::sleep(wait);
                }
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        ctx: TraceContext,
    ) -> Result<ClientResponse, (RequestPhase, std::io::Error)> {
        let addr = self.addr.clone();
        let writing = |e| (RequestPhase::Write, e);
        let stream = self.connect().map_err(writing)?;
        let body = body.unwrap_or(&[]);
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ntraceparent: {}\r\ncontent-length: {}\r\n\r\n",
            ctx.traceparent(),
            body.len()
        )
        .map_err(writing)?;
        stream.write_all(body).map_err(writing)?;
        stream.flush().map_err(writing)?;
        let (response, server_keeps) =
            read_framed_response(stream).map_err(|e| (RequestPhase::Read, e))?;
        if !server_keeps {
            self.stream = None;
        }
        Ok(response)
    }
}

/// How a client request retries: capped exponential backoff with
/// deterministic jitter, bounded by an attempt count and a per-request
/// wall-clock deadline.
///
/// The jitter stream is a pure function of `(seed, attempt)`, so a test
/// (or an incident replay) that fixes the seed reproduces the exact
/// same backoff schedule every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff, including server `Retry-After`.
    pub max_backoff: Duration,
    /// Wall-clock budget for the whole request, sleeps included. When
    /// the next backoff would cross it, the last result is returned
    /// instead of sleeping.
    pub deadline: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
    /// Callers who *know* their POST is safe to repeat (e.g. a pure
    /// prediction) may opt into read-phase retries for it. Off by
    /// default: the "never silently double-execute a POST" rule.
    pub assume_idempotent: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            deadline: Duration::from_secs(60),
            seed: 0,
            assume_idempotent: false,
        }
    }
}

impl RetryPolicy {
    /// The backoff slept after attempt `attempt` (1-based) fails:
    /// `base · 2^(attempt-1)`, capped at `max_backoff`, scaled by a
    /// deterministic jitter factor in `[0.5, 1.0)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        let exp = self.base_backoff.saturating_mul(1u32 << doublings);
        exp.min(self.max_backoff).mul_f64(self.jitter(attempt))
    }

    /// Jitter factor in `[0.5, 1.0)` for `attempt` — splitmix64 over
    /// `(seed, attempt)`, so the schedule replays exactly per seed.
    fn jitter(&self, attempt: u32) -> f64 {
        let bits = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        0.5 + 0.5 * ((bits >> 11) as f64 / (1u64 << 53) as f64)
    }
}

/// Splitmix64 finalizer: the client's only randomness, and it is not
/// random at all — a fixed permutation of its input, used to derive the
/// reproducible jitter stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Where a request attempt failed, which decides whether a retry on a
/// fresh connection can double-execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestPhase {
    /// The request never fully left: retrying is safe for any method.
    Write,
    /// The request was sent but the response never arrived: retrying is
    /// only safe for idempotent methods.
    Read,
}

impl RequestPhase {
    fn retry_safe(self, method: &str) -> bool {
        match self {
            RequestPhase::Write => true,
            RequestPhase::Read => matches!(method, "GET" | "HEAD" | "PUT" | "DELETE"),
        }
    }
}

/// Performs one request against `addr` (a `host:port` string) on a fresh
/// connection that is closed afterwards.
///
/// # Errors
///
/// Transport failures and unparseable responses as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request_traced(addr, method, path, body, timeout, TraceContext::mint())
}

/// Like [`request`], but propagating the caller's trace context. A
/// context with `sampled` set asks the server to retain the trace
/// regardless of its sampling policy.
///
/// # Errors
///
/// Transport failures and unparseable responses as `io::Error`.
pub fn request_traced(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
    ctx: TraceContext,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;

    let body = body.unwrap_or(&[]);
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ntraceparent: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        ctx.traceparent(),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;

    let (response, _keeps) = read_framed_response(&mut stream)?;
    Ok(response)
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// `true` for failures that mean the reused socket was already dead —
/// the only failures [`Connection::request`] may transparently retry.
fn is_stale_socket(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
    ) || (e.kind() == std::io::ErrorKind::InvalidData
        && e.to_string().contains("before a full response head"))
}

/// `true` for failures that mean the SSE stream was severed mid-flight
/// — the failures [`watch_job`] heals by reconnecting. Broader than
/// [`is_stale_socket`]: a cut can land mid-chunk (`InvalidData` from
/// the dechunker), and a proxy or daemon restart can refuse the dial.
fn is_cut_stream(e: &std::io::Error) -> bool {
    is_stale_socket(e)
        || matches!(
            e.kind(),
            std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::NotConnected
        )
        || (e.kind() == std::io::ErrorKind::InvalidData
            && e.to_string().contains("connection closed mid-"))
}

/// Reads `head bytes + \r\n\r\n` from the stream, then exactly the
/// declared `Content-Length` body bytes. Returns the response and whether
/// the server will keep the connection open.
fn read_framed_response(stream: &mut TcpStream) -> std::io::Result<(ClientResponse, bool)> {
    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed before a full response head"));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("response head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line `{status_line}`")))?;
    let headers: Vec<(String, String)> = head
        .lines()
        .skip(1)
        .filter_map(|l| {
            let (n, v) = l.split_once(':')?;
            Some((n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    let header = |name: &str| -> Option<&str> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let keeps = header("connection").is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
    let content_length: usize = match header("content-length") {
        Some(v) => v
            .parse()
            .map_err(|_| invalid(format!("bad content-length `{v}`")))?,
        // Streamed (chunked) or legacy close-delimited bodies: read to
        // EOF. Such responses never keep the connection alive.
        None => {
            let mut body = raw[head_end + 4..].to_vec();
            stream.read_to_end(&mut body)?;
            return Ok((
                ClientResponse {
                    status,
                    headers,
                    body,
                },
                false,
            ));
        }
    };
    let mut body = raw[head_end + 4..].to_vec();
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(invalid("connection closed mid-response-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((
        ClientResponse {
            status,
            headers,
            body,
        },
        keeps,
    ))
}

/// One server-sent event as parsed off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseEvent {
    /// The `id:` field when present and numeric — the frame's position
    /// in the job's stream, used by [`watch_job`] to discard frames it
    /// already delivered before a reconnect.
    pub id: Option<u64>,
    /// The `event:` field (empty when the frame had none).
    pub event: String,
    /// The concatenated `data:` lines.
    pub data: String,
}

/// Opens `GET path` against `addr` and feeds each SSE frame to
/// `on_event` until the callback returns `false`, the stream ends, or
/// `timeout` passes without a byte. Comment frames (`: keep-alive`) are
/// skipped.
///
/// # Errors
///
/// Transport failures as `io::Error`; a non-200 status as
/// `io::ErrorKind::InvalidData` with the status in the message.
pub fn sse_tail(
    addr: &str,
    path: &str,
    timeout: Duration,
    mut on_event: impl FnMut(&SseEvent) -> bool,
) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nhost: {addr}\r\naccept: text/event-stream\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
    )?;
    stream.flush()?;

    // Head: read until the blank line, check status + chunked encoding.
    let mut raw = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        if raw.len() > 16 * 1024 {
            return Err(invalid("response head too large"));
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed before a full response head"));
        }
        raw.push(byte[0]);
    }
    let head = std::str::from_utf8(&raw).map_err(|_| invalid("response head is not UTF-8"))?;
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    if status != 200 {
        // Drain what the server sent so the error can carry the body.
        let mut body = Vec::new();
        let _ = stream.read_to_end(&mut body);
        return Err(invalid(format!(
            "server answered {status}: {}",
            String::from_utf8_lossy(&body)
        )));
    }
    let chunked = head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked");

    let mut dechunked: Vec<u8> = Vec::new();
    let mut consumed = 0usize; // bytes of `dechunked` already parsed into frames
    let mut chunk_buf = Vec::new();
    loop {
        let ended = if chunked {
            read_one_chunk(&mut stream, &mut chunk_buf)?
        } else {
            let mut buf = [0u8; 1024];
            let n = stream.read(&mut buf)?;
            chunk_buf.clear();
            chunk_buf.extend_from_slice(&buf[..n]);
            n == 0
        };
        dechunked.extend_from_slice(&chunk_buf);
        // Frames are terminated by a blank line.
        while let Some(end) = find_frame_end(&dechunked[consumed..]) {
            let frame = &dechunked[consumed..consumed + end];
            consumed += end;
            if let Some(event) = parse_sse_frame(frame) {
                if !on_event(&event) {
                    return Ok(());
                }
            }
        }
        if consumed > 0 {
            dechunked.drain(..consumed);
            consumed = 0;
        }
        if ended {
            return Ok(());
        }
    }
}

/// Options for [`watch_job`]: the per-read timeout of each underlying
/// stream plus the policy bounding reconnect attempts and backoff.
#[derive(Debug, Clone, Copy)]
pub struct WatchOptions {
    /// Read timeout of each SSE connection — must exceed the server's
    /// 1s heartbeat cadence to tell "slow" from "dead".
    pub timeout: Duration,
    /// Bounds reconnects: `max_attempts` consecutive no-progress
    /// reconnects end the watch, with `backoff()` slept between them.
    /// The policy's `deadline` does not apply — a healthy watch may
    /// legitimately run for hours.
    pub retry: RetryPolicy,
}

impl Default for WatchOptions {
    fn default() -> WatchOptions {
        WatchOptions {
            timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
        }
    }
}

/// Tails a job's SSE stream like [`sse_tail`], but *survives cut
/// streams*: on a transport failure — or a stream the server ends while
/// the caller still wants more — it reconnects, resumes from the
/// server's replay history, and uses the frames' `id:` sequence to
/// deliver each published frame at most once. Unsequenced frames (the
/// per-subscription `snapshot`) are delivered on every connection,
/// which is exactly what a watcher wants after a gap.
///
/// The watch ends when the callback returns `false` (`Ok`), when
/// `retry.max_attempts` consecutive reconnects yield no new frames
/// (`Ok` for clean stream ends, the last error otherwise), or when the
/// server answers a reconnect with a non-200 (`Err` — e.g. the job was
/// deleted mid-watch).
///
/// # Errors
///
/// Transport failures once reconnect attempts are exhausted; a non-200
/// status as `io::ErrorKind::InvalidData` with the status in the
/// message.
pub fn watch_job(
    addr: &str,
    path: &str,
    opts: &WatchOptions,
    mut on_event: impl FnMut(&SseEvent) -> bool,
) -> std::io::Result<()> {
    let mut last_id: Option<u64> = None;
    let mut stopped = false;
    let mut no_progress = 0u32; // consecutive connections with no new frame
    loop {
        let seen_before = last_id;
        let result = sse_tail(addr, path, opts.timeout, |event| {
            if let Some(id) = event.id {
                if last_id.is_some_and(|seen| id <= seen) {
                    return true; // replayed frame already delivered
                }
                last_id = Some(id);
            }
            if !on_event(event) {
                stopped = true;
            }
            !stopped
        });
        if stopped {
            return Ok(());
        }
        let progressed = last_id != seen_before;
        no_progress = if progressed { 0 } else { no_progress + 1 };
        match result {
            // The server ended the stream but the caller wants more: a
            // dropped (lagging) watcher or a finished job's replay.
            // Reconnect while new frames keep arriving; stop once the
            // stream is evidently drained.
            Ok(()) => {
                if no_progress >= opts.retry.max_attempts {
                    return Ok(());
                }
            }
            Err(e) if is_cut_stream(&e) => {
                if no_progress >= opts.retry.max_attempts {
                    return Err(e);
                }
            }
            // Non-transport failures (4xx/5xx answers, protocol
            // violations) will not heal by reconnecting.
            Err(e) => return Err(e),
        }
        std::thread::sleep(opts.retry.backoff(no_progress.max(1)));
    }
}

/// Reads one `<hex len>\r\n<bytes>\r\n` chunk into `out` (cleared first).
/// Returns `true` on the terminating zero-length chunk.
fn read_one_chunk(stream: &mut TcpStream, out: &mut Vec<u8>) -> std::io::Result<bool> {
    out.clear();
    let mut size_line = Vec::new();
    let mut byte = [0u8; 1];
    while !size_line.ends_with(b"\r\n") {
        if size_line.len() > 32 {
            return Err(invalid("chunk size line too long"));
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed mid-chunk-size"));
        }
        size_line.push(byte[0]);
    }
    let size_text = std::str::from_utf8(&size_line[..size_line.len() - 2])
        .map_err(|_| invalid("chunk size is not UTF-8"))?;
    let size = usize::from_str_radix(size_text.trim(), 16)
        .map_err(|_| invalid(format!("bad chunk size `{size_text}`")))?;
    let mut remaining = size + 2; // data + trailing CRLF
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        let want = remaining.min(buf.len());
        let n = stream.read(&mut buf[..want])?;
        if n == 0 {
            return Err(invalid("connection closed mid-chunk"));
        }
        out.extend_from_slice(&buf[..n]);
        remaining -= n;
    }
    out.truncate(size); // drop the trailing CRLF
    Ok(size == 0)
}

/// Index just past the `\n\n` (or `\r\n\r\n`) frame terminator.
fn find_frame_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i + 1 < buf.len() {
        if buf[i] == b'\n' && buf[i + 1] == b'\n' {
            return Some(i + 2);
        }
        if i + 3 < buf.len() && &buf[i..i + 4] == b"\r\n\r\n" {
            return Some(i + 4);
        }
        i += 1;
    }
    None
}

/// Parses one SSE frame; `None` for comment-only frames.
fn parse_sse_frame(frame: &[u8]) -> Option<SseEvent> {
    let text = String::from_utf8_lossy(frame);
    let mut id = None;
    let mut event = String::new();
    let mut data_lines: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("event:") {
            event = v.trim().to_string();
        } else if let Some(v) = line.strip_prefix("data:") {
            data_lines.push(v.trim());
        } else if let Some(v) = line.strip_prefix("id:") {
            id = v.trim().parse().ok();
        }
        // Lines starting with ':' are comments; ignore everything else.
    }
    if event.is_empty() && data_lines.is_empty() {
        return None;
    }
    Some(SseEvent {
        id,
        event,
        data: data_lines.join("\n"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_urls_parse() {
        assert_eq!(
            parse_base_url("http://127.0.0.1:7878").unwrap(),
            ("127.0.0.1:7878".into(), String::new())
        );
        assert_eq!(
            parse_base_url("http://example.com:80/api/").unwrap(),
            ("example.com:80".into(), "/api".into())
        );
        assert!(parse_base_url("https://x").is_err());
        assert!(parse_base_url("http://").is_err());
    }

    #[test]
    fn response_headers_and_retry_after_parse() {
        let r = ClientResponse {
            status: 429,
            headers: vec![
                ("content-type".into(), "application/json".into()),
                ("retry-after".into(), "7".into()),
            ],
            body: Vec::new(),
        };
        assert_eq!(r.header("Retry-After"), Some("7"));
        assert_eq!(r.retry_after(), Some(7));
        let none = ClientResponse {
            status: 200,
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(none.retry_after(), None);
    }

    #[test]
    fn sse_frames_parse() {
        let e = parse_sse_frame(b"event: progress\ndata: {\"generation\":3}\n").unwrap();
        assert_eq!(e.event, "progress");
        assert_eq!(e.data, "{\"generation\":3}");
        assert_eq!(e.id, None);
        assert!(parse_sse_frame(b": keep-alive\n").is_none());
        let e = parse_sse_frame(b"data: a\ndata: b\n").unwrap();
        assert_eq!(e.event, "");
        assert_eq!(e.data, "a\nb");
        let e = parse_sse_frame(b"id: 42\nevent: progress\ndata: {}\n").unwrap();
        assert_eq!(e.id, Some(42));
        // A non-numeric id is ignored rather than failing the frame.
        let e = parse_sse_frame(b"id: abc\nevent: progress\ndata: {}\n").unwrap();
        assert_eq!(e.id, None);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            seed: 7,
            ..RetryPolicy::default()
        };
        // Same (seed, attempt) ⇒ same duration, run after run.
        for attempt in 1..10 {
            assert_eq!(policy.backoff(attempt), policy.backoff(attempt));
        }
        // Jitter keeps each backoff in [half, full) of the capped value.
        for (attempt, cap_ms) in [(1u32, 100u64), (2, 200), (3, 400), (4, 800), (5, 1000)] {
            let b = policy.backoff(attempt);
            let cap = Duration::from_millis(cap_ms);
            assert!(b >= cap / 2 && b < cap, "attempt {attempt}: {b:?}");
        }
        // Deep attempts stay at the cap (no overflow).
        assert!(policy.backoff(u32::MAX) <= Duration::from_secs(1));
        // A different seed yields a different schedule somewhere.
        let other = RetryPolicy { seed: 8, ..policy };
        assert!((1..10).any(|a| other.backoff(a) != policy.backoff(a)));
    }

    #[test]
    fn frame_ends_are_found() {
        assert_eq!(find_frame_end(b"data: x\n\nrest"), Some(9));
        assert_eq!(find_frame_end(b"data: x\r\n\r\nrest"), Some(11));
        assert_eq!(find_frame_end(b"data: x\n"), None);
    }
}
