//! A minimal blocking HTTP/1.1 client for the daemon's own API — used by
//! `caffeine-cli predict --remote` / `jobs`, the load generator, and the
//! integration tests.
//!
//! [`Connection`] keeps one TCP connection open and reuses it across
//! requests (matching the server's keep-alive support), framing each
//! response by its `Content-Length` and reconnecting transparently when
//! the server closes (request cap reached, idle timeout, old server).
//! [`request`] is the one-shot convenience built on top. [`sse_tail`]
//! consumes a chunked `text/event-stream` response event by event.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use caffeine_obs::TraceContext;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).to_string()
    }

    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header in seconds, when present and numeric —
    /// overload responses (429/503) carry it.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// A message when the body is not JSON.
    pub fn json(&self) -> Result<serde_json::Value, String> {
        serde_json::from_str(&self.text()).map_err(|e| e.to_string())
    }
}

/// Splits `http://host:port[/base]` into `(host:port, base_path)`.
///
/// # Errors
///
/// A message for non-`http://` schemes or a missing authority.
pub fn parse_base_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("`{url}`: only http:// URLs are supported"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].trim_end_matches('/')),
        None => (rest, ""),
    };
    if authority.is_empty() {
        return Err(format!("`{url}`: missing host"));
    }
    Ok((authority.to_string(), path.to_string()))
}

/// A persistent keep-alive connection to one server.
#[derive(Debug)]
pub struct Connection {
    addr: String,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Connection {
    /// Creates a (lazily connected) connection to `addr` (`host:port`).
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Connection {
        Connection {
            addr: addr.into(),
            timeout,
            stream: None,
        }
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Performs one request, reusing the open connection when possible.
    ///
    /// When the reused socket turns out to be dead (the server closed it
    /// after its request cap or idle timeout), the request is retried
    /// once on a fresh connection — but only when that is provably safe:
    /// always when the *write* failed (the server never saw the full
    /// request), and on a dead read only for idempotent methods. A `POST`
    /// whose response never arrived is NOT retried, since the server may
    /// have executed it (e.g. spawned a job) before dying.
    ///
    /// # Errors
    ///
    /// Transport failures and unparseable responses as `io::Error`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        self.request_traced(method, path, body, TraceContext::mint())
    }

    /// Like [`Connection::request`], but propagating the caller's trace
    /// context instead of minting one. A context with `sampled` set asks
    /// the server to retain the trace regardless of its sampling policy.
    ///
    /// # Errors
    ///
    /// Transport failures and unparseable responses as `io::Error`.
    pub fn request_traced(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        ctx: TraceContext,
    ) -> std::io::Result<ClientResponse> {
        let reused = self.stream.is_some();
        match self.try_request(method, path, body, ctx) {
            Ok(r) => Ok(r),
            Err((phase, e)) if reused && is_stale_socket(&e) && phase.retry_safe(method) => {
                self.stream = None;
                self.try_request(method, path, body, ctx)
                    .map_err(|(_, e)| e)
            }
            Err((_, e)) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        ctx: TraceContext,
    ) -> Result<ClientResponse, (RequestPhase, std::io::Error)> {
        let addr = self.addr.clone();
        let writing = |e| (RequestPhase::Write, e);
        let stream = self.connect().map_err(writing)?;
        let body = body.unwrap_or(&[]);
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ntraceparent: {}\r\ncontent-length: {}\r\n\r\n",
            ctx.traceparent(),
            body.len()
        )
        .map_err(writing)?;
        stream.write_all(body).map_err(writing)?;
        stream.flush().map_err(writing)?;
        let (response, server_keeps) =
            read_framed_response(stream).map_err(|e| (RequestPhase::Read, e))?;
        if !server_keeps {
            self.stream = None;
        }
        Ok(response)
    }
}

/// Where a request attempt failed, which decides whether a retry on a
/// fresh connection can double-execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestPhase {
    /// The request never fully left: retrying is safe for any method.
    Write,
    /// The request was sent but the response never arrived: retrying is
    /// only safe for idempotent methods.
    Read,
}

impl RequestPhase {
    fn retry_safe(self, method: &str) -> bool {
        match self {
            RequestPhase::Write => true,
            RequestPhase::Read => matches!(method, "GET" | "HEAD" | "PUT" | "DELETE"),
        }
    }
}

/// Performs one request against `addr` (a `host:port` string) on a fresh
/// connection that is closed afterwards.
///
/// # Errors
///
/// Transport failures and unparseable responses as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request_traced(addr, method, path, body, timeout, TraceContext::mint())
}

/// Like [`request`], but propagating the caller's trace context. A
/// context with `sampled` set asks the server to retain the trace
/// regardless of its sampling policy.
///
/// # Errors
///
/// Transport failures and unparseable responses as `io::Error`.
pub fn request_traced(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
    ctx: TraceContext,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;

    let body = body.unwrap_or(&[]);
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ntraceparent: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        ctx.traceparent(),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;

    let (response, _keeps) = read_framed_response(&mut stream)?;
    Ok(response)
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// `true` for failures that mean the reused socket was already dead —
/// the only failures [`Connection::request`] may transparently retry.
fn is_stale_socket(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
    ) || (e.kind() == std::io::ErrorKind::InvalidData
        && e.to_string().contains("before a full response head"))
}

/// Reads `head bytes + \r\n\r\n` from the stream, then exactly the
/// declared `Content-Length` body bytes. Returns the response and whether
/// the server will keep the connection open.
fn read_framed_response(stream: &mut TcpStream) -> std::io::Result<(ClientResponse, bool)> {
    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed before a full response head"));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("response head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line `{status_line}`")))?;
    let headers: Vec<(String, String)> = head
        .lines()
        .skip(1)
        .filter_map(|l| {
            let (n, v) = l.split_once(':')?;
            Some((n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    let header = |name: &str| -> Option<&str> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let keeps = header("connection").is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
    let content_length: usize = match header("content-length") {
        Some(v) => v
            .parse()
            .map_err(|_| invalid(format!("bad content-length `{v}`")))?,
        // Streamed (chunked) or legacy close-delimited bodies: read to
        // EOF. Such responses never keep the connection alive.
        None => {
            let mut body = raw[head_end + 4..].to_vec();
            stream.read_to_end(&mut body)?;
            return Ok((
                ClientResponse {
                    status,
                    headers,
                    body,
                },
                false,
            ));
        }
    };
    let mut body = raw[head_end + 4..].to_vec();
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(invalid("connection closed mid-response-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((
        ClientResponse {
            status,
            headers,
            body,
        },
        keeps,
    ))
}

/// One server-sent event as parsed off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseEvent {
    /// The `event:` field (empty when the frame had none).
    pub event: String,
    /// The concatenated `data:` lines.
    pub data: String,
}

/// Opens `GET path` against `addr` and feeds each SSE frame to
/// `on_event` until the callback returns `false`, the stream ends, or
/// `timeout` passes without a byte. Comment frames (`: keep-alive`) are
/// skipped.
///
/// # Errors
///
/// Transport failures as `io::Error`; a non-200 status as
/// `io::ErrorKind::InvalidData` with the status in the message.
pub fn sse_tail(
    addr: &str,
    path: &str,
    timeout: Duration,
    mut on_event: impl FnMut(&SseEvent) -> bool,
) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nhost: {addr}\r\naccept: text/event-stream\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
    )?;
    stream.flush()?;

    // Head: read until the blank line, check status + chunked encoding.
    let mut raw = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        if raw.len() > 16 * 1024 {
            return Err(invalid("response head too large"));
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed before a full response head"));
        }
        raw.push(byte[0]);
    }
    let head = std::str::from_utf8(&raw).map_err(|_| invalid("response head is not UTF-8"))?;
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    if status != 200 {
        // Drain what the server sent so the error can carry the body.
        let mut body = Vec::new();
        let _ = stream.read_to_end(&mut body);
        return Err(invalid(format!(
            "server answered {status}: {}",
            String::from_utf8_lossy(&body)
        )));
    }
    let chunked = head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked");

    let mut dechunked: Vec<u8> = Vec::new();
    let mut consumed = 0usize; // bytes of `dechunked` already parsed into frames
    let mut chunk_buf = Vec::new();
    loop {
        let ended = if chunked {
            read_one_chunk(&mut stream, &mut chunk_buf)?
        } else {
            let mut buf = [0u8; 1024];
            let n = stream.read(&mut buf)?;
            chunk_buf.clear();
            chunk_buf.extend_from_slice(&buf[..n]);
            n == 0
        };
        dechunked.extend_from_slice(&chunk_buf);
        // Frames are terminated by a blank line.
        while let Some(end) = find_frame_end(&dechunked[consumed..]) {
            let frame = &dechunked[consumed..consumed + end];
            consumed += end;
            if let Some(event) = parse_sse_frame(frame) {
                if !on_event(&event) {
                    return Ok(());
                }
            }
        }
        if consumed > 0 {
            dechunked.drain(..consumed);
            consumed = 0;
        }
        if ended {
            return Ok(());
        }
    }
}

/// Reads one `<hex len>\r\n<bytes>\r\n` chunk into `out` (cleared first).
/// Returns `true` on the terminating zero-length chunk.
fn read_one_chunk(stream: &mut TcpStream, out: &mut Vec<u8>) -> std::io::Result<bool> {
    out.clear();
    let mut size_line = Vec::new();
    let mut byte = [0u8; 1];
    while !size_line.ends_with(b"\r\n") {
        if size_line.len() > 32 {
            return Err(invalid("chunk size line too long"));
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed mid-chunk-size"));
        }
        size_line.push(byte[0]);
    }
    let size_text = std::str::from_utf8(&size_line[..size_line.len() - 2])
        .map_err(|_| invalid("chunk size is not UTF-8"))?;
    let size = usize::from_str_radix(size_text.trim(), 16)
        .map_err(|_| invalid(format!("bad chunk size `{size_text}`")))?;
    let mut remaining = size + 2; // data + trailing CRLF
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        let want = remaining.min(buf.len());
        let n = stream.read(&mut buf[..want])?;
        if n == 0 {
            return Err(invalid("connection closed mid-chunk"));
        }
        out.extend_from_slice(&buf[..n]);
        remaining -= n;
    }
    out.truncate(size); // drop the trailing CRLF
    Ok(size == 0)
}

/// Index just past the `\n\n` (or `\r\n\r\n`) frame terminator.
fn find_frame_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i + 1 < buf.len() {
        if buf[i] == b'\n' && buf[i + 1] == b'\n' {
            return Some(i + 2);
        }
        if i + 3 < buf.len() && &buf[i..i + 4] == b"\r\n\r\n" {
            return Some(i + 4);
        }
        i += 1;
    }
    None
}

/// Parses one SSE frame; `None` for comment-only frames.
fn parse_sse_frame(frame: &[u8]) -> Option<SseEvent> {
    let text = String::from_utf8_lossy(frame);
    let mut event = String::new();
    let mut data_lines: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("event:") {
            event = v.trim().to_string();
        } else if let Some(v) = line.strip_prefix("data:") {
            data_lines.push(v.trim());
        }
        // Lines starting with ':' are comments; ignore everything else.
    }
    if event.is_empty() && data_lines.is_empty() {
        return None;
    }
    Some(SseEvent {
        event,
        data: data_lines.join("\n"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_urls_parse() {
        assert_eq!(
            parse_base_url("http://127.0.0.1:7878").unwrap(),
            ("127.0.0.1:7878".into(), String::new())
        );
        assert_eq!(
            parse_base_url("http://example.com:80/api/").unwrap(),
            ("example.com:80".into(), "/api".into())
        );
        assert!(parse_base_url("https://x").is_err());
        assert!(parse_base_url("http://").is_err());
    }

    #[test]
    fn response_headers_and_retry_after_parse() {
        let r = ClientResponse {
            status: 429,
            headers: vec![
                ("content-type".into(), "application/json".into()),
                ("retry-after".into(), "7".into()),
            ],
            body: Vec::new(),
        };
        assert_eq!(r.header("Retry-After"), Some("7"));
        assert_eq!(r.retry_after(), Some(7));
        let none = ClientResponse {
            status: 200,
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(none.retry_after(), None);
    }

    #[test]
    fn sse_frames_parse() {
        let e = parse_sse_frame(b"event: progress\ndata: {\"generation\":3}\n").unwrap();
        assert_eq!(e.event, "progress");
        assert_eq!(e.data, "{\"generation\":3}");
        assert!(parse_sse_frame(b": keep-alive\n").is_none());
        let e = parse_sse_frame(b"data: a\ndata: b\n").unwrap();
        assert_eq!(e.event, "");
        assert_eq!(e.data, "a\nb");
    }

    #[test]
    fn frame_ends_are_found() {
        assert_eq!(find_frame_end(b"data: x\n\nrest"), Some(9));
        assert_eq!(find_frame_end(b"data: x\r\n\r\nrest"), Some(11));
        assert_eq!(find_frame_end(b"data: x\n"), None);
    }
}
