//! The dedicated SSE streamer: one event-loop thread owning every open
//! `GET /v1/jobs/{id}/events` connection.
//!
//! Before this module, each SSE stream pinned a pool worker for its
//! whole lifetime, so fan-out was bounded by `--threads`. Now a pool
//! worker only *prepares* a stream — response head, `snapshot` frame,
//! and the hub's replayed history rendered into an outbox buffer — then
//! hands the nonblocking socket to [`SseStreamer`] and returns to the
//! pool immediately. The streamer multiplexes all connections in one
//! thread: it drains each subscription's channel into the outbox,
//! flushes nonblockingly, emits `: keep-alive` heartbeats on quiet
//! streams, and reaps dead or hopelessly slow clients.
//!
//! There is no `epoll` in `std`, so the loop is a bounded poll: it
//! sleeps a few milliseconds when no connection made progress. At the
//! hundreds-of-watchers scale this daemon targets, that costs far less
//! than a pinned worker per stream.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{encode_chunk, Response, CHUNKED_BODY_END};
use crate::jobs::{JobEntry, JobEventFrame};
use crate::metrics::Metrics;
use crate::sync::PoisonlessMutex;

/// Outbox bytes a client may leave unread before it is dropped as a
/// hopelessly slow consumer (matches the hub's lag-drop philosophy).
const MAX_OUTBOX_BYTES: usize = 256 * 1024;
/// Heartbeat cadence on quiet live streams.
const HEARTBEAT: Duration = Duration::from_secs(1);
/// How long a finished stream may take to flush its tail before the
/// streamer gives up on the client.
const FINISH_GRACE: Duration = Duration::from_secs(5);
/// How long pending outbox bytes may sit without a single byte of write
/// progress before the peer is declared gone. This re-establishes the
/// write-timeout guarantee the blocking path had: a peer that vanishes
/// without FIN (its send window frozen) must not leak the connection.
const WRITE_STALL_GRACE: Duration = Duration::from_secs(15);
/// Loop sleep when no connection made progress.
const IDLE_TICK: Duration = Duration::from_millis(5);

/// One adopted connection: the nonblocking socket, the live
/// subscription (`None` once the hub closed or dropped us), and the
/// bytes queued but not yet written.
struct SseConn {
    stream: TcpStream,
    live: Option<Receiver<JobEventFrame>>,
    outbox: Vec<u8>,
    written: usize,
    last_frame: Instant,
    /// Last time a write made progress (or the outbox was empty).
    last_write_progress: Instant,
    /// Set when the terminating zero chunk has been queued.
    finishing: Option<Instant>,
}

/// What one pump pass did with a connection.
enum Pump {
    /// Wrote or queued something; poll again soon.
    Progress,
    /// Nothing to do right now.
    Idle,
    /// The stream completed (terminator flushed) — close it.
    Done,
    /// The peer is gone or unrecoverable — drop it.
    Dead,
}

impl SseConn {
    fn pump(&mut self) -> Pump {
        // A client that hung up must be noticed even while the job is
        // quiet: probe with a nonblocking read. SSE clients send nothing
        // after the request, so any bytes are ignorable junk.
        let mut probe = [0u8; 256];
        match self.stream.read(&mut probe) {
            Ok(0) => return Pump::Dead,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Pump::Dead,
        }

        let mut progressed = false;
        // Refill the outbox from the hub subscription.
        if let Some(rx) = &self.live {
            loop {
                match rx.try_recv() {
                    Ok(frame) => {
                        encode_chunk(&mut self.outbox, frame.render().as_bytes());
                        self.last_frame = Instant::now();
                        progressed = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // The hub closed (job ended) or dropped this
                        // lagging subscriber: either way the stream is
                        // over — queue the terminator and stop reading.
                        self.live = None;
                        self.outbox.extend_from_slice(CHUNKED_BODY_END);
                        self.finishing = Some(Instant::now());
                        progressed = true;
                        break;
                    }
                }
            }
        } else if self.finishing.is_none() {
            // Adopted already-closed (history-only) stream: terminate.
            self.outbox.extend_from_slice(CHUNKED_BODY_END);
            self.finishing = Some(Instant::now());
            progressed = true;
        }
        // Heartbeat comments keep proxies from timing quiet streams out
        // and let the probe above notice dead peers.
        if self.live.is_some()
            && self.written >= self.outbox.len()
            && self.last_frame.elapsed() >= HEARTBEAT
        {
            encode_chunk(&mut self.outbox, b": keep-alive\n\n");
            self.last_frame = Instant::now();
            progressed = true;
        }

        // Flush as much as the socket accepts.
        while self.written < self.outbox.len() {
            match self.stream.write(&self.outbox[self.written..]) {
                Ok(0) => return Pump::Dead,
                Ok(n) => {
                    self.written += n;
                    self.last_write_progress = Instant::now();
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Pump::Dead,
            }
        }
        if self.written >= self.outbox.len() {
            self.outbox.clear();
            self.written = 0;
            self.last_write_progress = Instant::now();
            if self.finishing.is_some() {
                return Pump::Done;
            }
        } else if self.outbox.len() - self.written > MAX_OUTBOX_BYTES {
            // The client cannot keep up; cut it loose rather than buffer
            // without bound.
            return Pump::Dead;
        } else if self.last_write_progress.elapsed() > WRITE_STALL_GRACE {
            // Bytes are pending but the socket has accepted nothing for
            // the whole grace window: the peer is gone without FIN (or
            // has stopped reading for good). Without this, a quiet job's
            // frozen outbox would stay under the lag cap forever and
            // leak the connection.
            return Pump::Dead;
        } else if let Some(since) = self.finishing {
            if since.elapsed() > FINISH_GRACE {
                return Pump::Dead;
            }
        }
        if progressed {
            Pump::Progress
        } else {
            Pump::Idle
        }
    }
}

/// Handle to the streamer thread: pool workers [`SseStreamer::adopt`]
/// prepared connections into it; the server [`SseStreamer::shutdown`]s
/// it on drain.
#[derive(Debug)]
pub struct SseStreamer {
    tx: Mutex<Option<Sender<SseConn>>>,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl SseStreamer {
    /// Spawns the event-loop thread.
    pub fn new(metrics: Arc<Metrics>) -> SseStreamer {
        let (tx, rx) = std::sync::mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("serve-sse-streamer".into())
            .spawn(move || event_loop(&rx, &metrics, &loop_stop))
            // lint: allow(panic-freedom) — startup-time: runs once in SseStreamer::new before the listener accepts requests
            .expect("spawn sse streamer thread");
        SseStreamer {
            tx: Mutex::new(Some(tx)),
            stop,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Takes ownership of a connection for `entry`'s event stream. The
    /// caller (a pool worker) returns to the pool immediately; the
    /// response head, `snapshot` frame, and replayed history are queued
    /// into the connection's outbox and written by the streamer thread.
    ///
    /// # Errors
    ///
    /// The socket could not be switched to nonblocking mode, or the
    /// streamer is already shut down. The stream is handed back so the
    /// caller can still answer an error instead of silently hanging up.
    /// `request_id` is echoed on the stream's response head, as on every
    /// buffered response.
    pub fn adopt(
        &self,
        stream: TcpStream,
        entry: &JobEntry,
        request_id: &str,
    ) -> Result<(), (TcpStream, std::io::Error)> {
        let (history, live) = entry.events.subscribe();
        let head = Response {
            status: 200,
            headers: vec![
                ("cache-control".into(), "no-cache".into()),
                ("x-request-id".into(), request_id.to_string()),
            ],
            body: Vec::new(),
            content_type: "text/event-stream",
        };
        let mut outbox = Vec::with_capacity(1024);
        // Writing the head into a Vec cannot fail; the returned writer is
        // dropped unfinished — frames go through `encode_chunk`, which is
        // wire-identical to `ChunkedWriter::chunk`.
        let _ = head.write_chunked_head(&mut outbox);
        // Unsequenced (`seq: 0`): the snapshot is per-subscription state,
        // not part of the job's replayable stream, so it carries no SSE
        // id and reconnecting watchers never dedup it away.
        let snapshot = JobEventFrame {
            seq: 0,
            event: "snapshot",
            data: serde_json::to_string(&crate::handlers::sanitize(entry.status_json()))
                .unwrap_or_else(|_| "{}".to_string()),
        };
        encode_chunk(&mut outbox, snapshot.render().as_bytes());
        for frame in &history {
            encode_chunk(&mut outbox, frame.render().as_bytes());
        }
        if let Err(e) = stream.set_nonblocking(true) {
            return Err((stream, e));
        }
        let conn = SseConn {
            stream,
            live,
            outbox,
            written: 0,
            last_frame: Instant::now(),
            last_write_progress: Instant::now(),
            finishing: None,
        };
        let stopped = || std::io::Error::new(std::io::ErrorKind::BrokenPipe, "streamer stopped");
        let tx = self.tx.plock();
        match tx.as_ref() {
            Some(tx) => tx
                .send(conn)
                .map_err(|returned| (returned.0.stream, stopped())),
            None => Err((conn.stream, stopped())),
        }
    }

    /// Stops admitting streams and joins the thread. In-flight streams
    /// get a short grace to flush what is already queued (job drain has
    /// closed their hubs by now), then everything is dropped.
    pub fn shutdown(&self) {
        self.tx.plock().take();
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.plock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SseStreamer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn event_loop(rx: &Receiver<SseConn>, metrics: &Arc<Metrics>, stop: &AtomicBool) {
    let mut conns: Vec<SseConn> = Vec::new();
    let mut admissions_closed = false;
    let mut stop_seen: Option<Instant> = None;
    loop {
        // Admit whatever is waiting without blocking the pump.
        loop {
            match rx.try_recv() {
                Ok(conn) => {
                    metrics.observe_sse_adopted();
                    conns.push(conn);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    admissions_closed = true;
                    break;
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            // Drain mode: give queued bytes (done frames, terminators) a
            // short grace, then close whatever remains.
            let since = *stop_seen.get_or_insert_with(Instant::now);
            if conns.is_empty() || since.elapsed() > Duration::from_secs(1) {
                for _ in conns.drain(..) {
                    metrics.observe_sse_closed();
                }
                return;
            }
        } else if conns.is_empty() {
            if admissions_closed {
                return;
            }
            // Nothing to pump: block (briefly) for the next adoption.
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(conn) => {
                    metrics.observe_sse_adopted();
                    conns.push(conn);
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
            continue;
        }

        let mut progressed = false;
        conns.retain_mut(|conn| match conn.pump() {
            Pump::Progress => {
                progressed = true;
                true
            }
            Pump::Idle => true,
            Pump::Done | Pump::Dead => {
                metrics.observe_sse_closed();
                false
            }
        });
        if !progressed {
            std::thread::sleep(IDLE_TICK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a loopback (client, server-side-accepted) socket pair.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, server_side)
    }

    fn entry_with_hub() -> Arc<JobEntry> {
        crate::jobs::JobEntry::test_entry(7, "sse-test".into())
    }

    #[test]
    fn adopted_streams_flush_history_live_frames_and_terminate() {
        let metrics = Arc::new(Metrics::new());
        let streamer = SseStreamer::new(Arc::clone(&metrics));
        let entry = entry_with_hub();
        entry.events.publish(JobEventFrame {
            seq: 0,
            event: "progress",
            data: "{\"generation\":1}".into(),
        });

        let (mut client, server_side) = socket_pair();
        streamer.adopt(server_side, &entry, "sse-rid").unwrap();

        // A live frame after adoption, then the hub closes.
        entry.events.publish(JobEventFrame {
            seq: 0,
            event: "done",
            data: "{}".into(),
        });
        entry.events.close_for_tests();

        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut raw = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match client.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&buf[..n]),
                Err(e) => panic!("stream read failed: {e}"),
            }
        }
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("text/event-stream"), "{text}");
        assert!(text.contains("event: snapshot"), "{text}");
        assert!(text.contains("event: progress"), "{text}");
        assert!(text.contains("event: done"), "{text}");
        // Published frames carry their stream position as the SSE id;
        // the snapshot (per-subscription state) never does.
        assert!(text.contains("id: 1\nevent: progress"), "{text}");
        assert!(text.contains("id: 2\nevent: done"), "{text}");
        assert_eq!(text.matches("\nid: ").count(), 2, "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
        streamer.shutdown();
        assert_eq!(metrics.jobs_queued(), 0);
    }

    #[test]
    fn a_client_that_hangs_up_is_reaped_without_blocking_others() {
        let metrics = Arc::new(Metrics::new());
        let streamer = SseStreamer::new(Arc::clone(&metrics));
        let entry = entry_with_hub();

        let (client_a, server_a) = socket_pair();
        let (mut client_b, server_b) = socket_pair();
        streamer.adopt(server_a, &entry, "sse-rid").unwrap();
        streamer.adopt(server_b, &entry, "sse-rid").unwrap();
        drop(client_a); // A hangs up immediately.

        entry.events.publish(JobEventFrame {
            seq: 0,
            event: "done",
            data: "{}".into(),
        });
        entry.events.close_for_tests();

        client_b
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut raw = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match client_b.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&buf[..n]),
                Err(e) => panic!("surviving stream failed: {e}"),
            }
        }
        let text = String::from_utf8_lossy(&raw);
        assert!(text.contains("event: done"), "{text}");
        streamer.shutdown();
    }
}
