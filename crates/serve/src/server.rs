//! The daemon: TCP accept loop, bounded dispatch, graceful drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use caffeine_obs::{
    Level, LogFormat, Logger, SpanKind, TraceContext, TraceStore, TraceStoreConfig,
};

use crate::error::ApiError;
use crate::handlers;
use crate::http::{self, HttpError, Response};
use crate::jobs::JobManager;
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::registry::ModelRegistry;
use crate::sse::SseStreamer;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 for ephemeral).
    pub addr: String,
    /// Registry/checkpoint directory; `None` serves purely in memory.
    pub model_dir: Option<PathBuf>,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Pending-connection queue bound (beyond it: 503).
    pub backlog: usize,
    /// Per-request body cap in bytes.
    pub max_body_bytes: usize,
    /// Socket read/write timeout for an in-flight request.
    pub io_timeout: Duration,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served per connection before the server answers
    /// `Connection: close` (bounds how long one client can pin a
    /// worker; clamped to ≥ 1).
    pub max_conn_requests: usize,
    /// Job-record capacity of the bounded job store (clamped to ≥ 1;
    /// submissions beyond it evict terminal records or answer 429).
    pub max_jobs: usize,
    /// Concurrently *running* GP jobs; submissions beyond this queue
    /// (FIFO) instead of spawning threads. `0` means "same as `workers`".
    pub max_running_jobs: usize,
    /// Structured logger every request and handler logs through
    /// (stderr text at `info` by default; tests inject a capture).
    pub logger: Logger,
    /// Requests slower than this additionally log a `http.slow` warning
    /// (and their traces are always retained by tail sampling).
    pub slow_request: Duration,
    /// Completed traces retained by the in-process trace store
    /// (ring-buffered; clamped to ≥ 1).
    pub trace_capacity: usize,
    /// Fraction of unremarkable traces (fast, ok, not explicitly
    /// requested) retained, `0.0..=1.0`. Slow/errored/requested traces
    /// are always kept.
    pub trace_sample_rate: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            model_dir: None,
            workers: 4,
            backlog: 64,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            max_conn_requests: 100,
            max_jobs: 64,
            max_running_jobs: 0,
            logger: Logger::stderr(Level::Info, LogFormat::Text),
            slow_request: Duration::from_secs(1),
            trace_capacity: 256,
            trace_sample_rate: 0.1,
        }
    }
}

/// State shared by every worker: registry, jobs, metrics, the SSE
/// streamer, shutdown flag.
#[derive(Debug)]
pub struct Shared {
    /// The model registry.
    pub registry: Arc<ModelRegistry>,
    /// The job manager.
    pub jobs: JobManager,
    /// Observability counters.
    pub metrics: Arc<Metrics>,
    /// The dedicated SSE streamer thread owning all event-stream
    /// connections (so they never pin pool workers).
    pub sse: SseStreamer,
    /// Bounded tail-sampling store of completed request/job traces.
    pub traces: Arc<TraceStore>,
    config: ServeConfig,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    /// Set once construction finished loading the registry and adopting
    /// orphaned jobs — `/readyz` reports 503 until then and during drain.
    ready: AtomicBool,
}

impl Shared {
    /// Flags the accept loop to stop and pokes it awake with a local
    /// connection so it notices immediately.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop may be blocked in `accept`; a throwaway
        // connection wakes it. Failure is fine — the flag alone stops the
        // loop on the next accepted connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
    }

    /// `true` once draining started.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Readiness for `/readyz`: `Ok` once the registry is loaded and the
    /// scheduler is accepting work, `Err(reason)` before that or while
    /// draining.
    pub fn readiness(&self) -> Result<(), &'static str> {
        if self.is_shutting_down() {
            Err("draining")
        } else if self.ready.load(Ordering::SeqCst) {
            Ok(())
        } else {
            Err("starting")
        }
    }

    /// The server's structured logger.
    pub fn logger(&self) -> &Logger {
        &self.config.logger
    }
}

/// A handle for stopping a server from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting, finish in-flight work.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The shared state (registry seeding in tests/benches).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

/// The bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and opens (or creates) the registry.
    ///
    /// # Errors
    ///
    /// Propagates bind and registry-directory failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let registry = match &config.model_dir {
            Some(dir) => Arc::new(ModelRegistry::open(dir)?),
            None => Arc::new(ModelRegistry::in_memory()),
        };
        let max_running = match config.max_running_jobs {
            0 => config.workers.max(1),
            n => n,
        };
        let traces = Arc::new(TraceStore::new(TraceStoreConfig {
            capacity: config.trace_capacity,
            sample_rate: config.trace_sample_rate,
            slow_threshold: config.slow_request,
        }));
        let jobs = JobManager::new(
            config.model_dir.as_ref().map(|d| d.join(".jobs")),
            config.max_jobs,
            max_running,
        )
        .with_traces(Arc::clone(&traces));
        let metrics = Arc::new(Metrics::new());
        // A previous daemon killed mid-job leaves specs + checkpoints
        // behind; bring those jobs back before accepting traffic so
        // `GET /v1/jobs` never shows an empty store that silently holds
        // orphaned work.
        let adopted = jobs.adopt_orphans(&registry, &metrics);
        if adopted > 0 {
            eprintln!("caffeine-serve: re-adopted {adopted} interrupted job(s) from checkpoints");
        }
        let sse = SseStreamer::new(Arc::clone(&metrics));
        let shared = Arc::new(Shared {
            registry,
            jobs,
            metrics,
            sse,
            traces,
            config,
            local_addr,
            shutdown: AtomicBool::new(false),
            // The registry is open and orphans are adopted by now, so
            // the daemon is born ready; the flag exists so `/readyz`
            // can outlive a future async-init refactor unchanged.
            ready: AtomicBool::new(true),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A stop handle usable from any thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until shutdown, then drains: the worker pool
    /// finishes queued requests and background jobs are cancelled and
    /// joined.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener failures (per-connection errors are
    /// absorbed).
    pub fn serve(self) -> std::io::Result<()> {
        let worker_shared = Arc::clone(&self.shared);
        let pool = WorkerPool::new(
            self.shared.config.workers,
            self.shared.config.backlog,
            move |stream: TcpStream| {
                // A panicking handler must cost one request, not one
                // worker — otherwise repeated panics silently shrink the
                // pool until nothing serves.
                let shared = Arc::clone(&worker_shared);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    handle_connection(&shared, stream)
                }));
                if outcome.is_err() {
                    worker_shared
                        .metrics
                        .observe("handler_panic", 500, Duration::ZERO);
                }
            },
        );
        for stream in self.listener.incoming() {
            if self.shared.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => {
                    // Transient accept failures (e.g. EMFILE under fd
                    // exhaustion) must not busy-spin the acceptor; a
                    // short pause lets workers close sockets and
                    // recover.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if let Err(mut stream) = pool.try_execute(stream) {
                // Pool saturated: answer 503 on the acceptor thread (one
                // small write) and close.
                self.shared.metrics.observe_busy();
                write_busy(&mut stream, pool.queued(), self.shared.logger());
            }
        }
        pool.shutdown();
        self.shared.jobs.drain();
        // Jobs are terminal now, so every hub has closed; the streamer
        // flushes what it can and exits.
        self.shared.sse.shutdown();
        Ok(())
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let max_requests = shared.config.max_conn_requests.max(1);

    // Keep-alive loop: serve requests off this connection until the
    // client closes / asks to close, the per-connection budget is spent,
    // the connection idles out, or the server starts draining. The carry
    // buffer holds bytes a pipelining client sent ahead of time.
    let mut served = 0usize;
    let mut carry = Vec::with_capacity(1024);
    loop {
        // Between requests, only the *wait for the first byte* runs on
        // the (usually shorter) idle budget; once a request is in flight
        // its transfer gets the full IO budget again.
        if served > 0 && carry.is_empty() && !wait_for_next_request(shared, &mut stream, &mut carry)
        {
            break;
        }
        let started = Instant::now();
        match http::read_request_buffered(&mut carry, &mut stream, shared.config.max_body_bytes) {
            Ok(request) => {
                served += 1;
                if served > 1 {
                    shared.metrics.observe_keepalive_reuse();
                }
                let keep_alive = served < max_requests
                    && request.wants_keep_alive()
                    && !shared.is_shutting_down();
                // Accept a well-formed client trace id; mint one
                // otherwise. Every response echoes it back.
                let request_id = request
                    .header("x-request-id")
                    .filter(|v| caffeine_obs::valid_request_id(v))
                    .map(str::to_string)
                    .unwrap_or_else(caffeine_obs::request_id);
                // Trace context: continue an inbound W3C `traceparent`
                // (the client's span becomes the root's parent, and its
                // sampled flag means "retain this trace"), mint a fresh
                // trace otherwise. Every response advertises the
                // server-side context back to the caller.
                let parent_ctx = request.header("traceparent").and_then(TraceContext::parse);
                let ctx = parent_ctx.map_or_else(TraceContext::mint, |p| p.child());
                if parent_ctx.is_some_and(|p| p.sampled) {
                    shared.traces.force_keep(ctx.trace_id);
                }
                let mut root_span = shared.traces.span(
                    &format!("http {} {}", request.method, request.path),
                    SpanKind::Server,
                    ctx,
                    parent_ctx.map(|p| p.span_id),
                );
                root_span.attr("request.id", request_id.clone());
                let bytes_in = request.body.len();
                match handlers::handle(shared, &request, &request_id, &mut root_span) {
                    (handlers::Outcome::Response(response), label) => {
                        let response = response
                            .with_header("x-request-id", request_id.clone())
                            .with_header("traceparent", ctx.traceparent());
                        let status = response.status;
                        let bytes_out = response.body.len();
                        let write_ok = response.write_to(&mut stream, keep_alive).is_ok();
                        let elapsed = started.elapsed();
                        root_span.attr("http.route", label);
                        root_span.attr("http.status", status.to_string());
                        if status >= 500 {
                            root_span.set_error(format!("http {status}"));
                        }
                        root_span.finish();
                        // A submit handler may have handed this trace to
                        // a job; it then completes when the job does.
                        shared.traces.finish_unless_held(ctx.trace_id);
                        shared.metrics.observe(label, status, elapsed);
                        log_access(
                            shared,
                            &request_id,
                            label,
                            &request,
                            status,
                            elapsed,
                            bytes_in,
                            bytes_out,
                        );
                        if !keep_alive || !write_ok {
                            break;
                        }
                    }
                    (handlers::Outcome::StreamJobEvents(entry), label) => {
                        // Hand the socket to the dedicated streamer so
                        // this worker returns to the pool immediately —
                        // open streams must not occupy workers. Streamed
                        // responses always close when done.
                        root_span.attr("http.route", label);
                        root_span.attr("job.id", entry.id.to_string());
                        match shared.sse.adopt(stream, &entry, &request_id) {
                            Ok(()) => {
                                let elapsed = started.elapsed();
                                root_span.attr("http.status", "200");
                                root_span.finish();
                                shared.traces.finish_unless_held(ctx.trace_id);
                                shared.metrics.observe(label, 200, elapsed);
                                log_access(
                                    shared,
                                    &request_id,
                                    label,
                                    &request,
                                    200,
                                    elapsed,
                                    bytes_in,
                                    0,
                                );
                            }
                            Err((mut returned, e)) => {
                                // The client still deserves a response
                                // (and the metrics the truth) when the
                                // streamer cannot take the connection.
                                let _ = returned.set_nonblocking(false);
                                let response =
                                    ApiError::internal(format!("cannot stream events: {e}"))
                                        .into_response()
                                        .with_header("x-request-id", request_id.clone());
                                let bytes_out = response.body.len();
                                let _ = response.write_to(&mut returned, false);
                                let elapsed = started.elapsed();
                                root_span.attr("http.status", "500");
                                root_span.set_error("cannot stream events");
                                root_span.finish();
                                shared.traces.finish_unless_held(ctx.trace_id);
                                shared.metrics.observe(label, 500, elapsed);
                                log_access(
                                    shared,
                                    &request_id,
                                    label,
                                    &request,
                                    500,
                                    elapsed,
                                    bytes_in,
                                    bytes_out,
                                );
                            }
                        }
                        return;
                    }
                }
            }
            // Nothing (more) is coming: close without a response.
            Err(HttpError::Closed) | Err(HttpError::Idle) => break,
            Err(e) => {
                let (status, code) = match e.status() {
                    Some(413) => (413, "payload_too_large"),
                    Some(501) => (501, "not_implemented"),
                    Some(_) => (400, "bad_request"),
                    // Read timeout / transport error mid-request: try a
                    // 408; the peer is probably gone, so failure to write
                    // is fine.
                    None => (408, "request_timeout"),
                };
                // No request parsed, so there is no client id to accept;
                // the error response still carries a server-minted one.
                let request_id = caffeine_obs::request_id();
                let response = ApiError {
                    status,
                    code,
                    message: e.message(),
                    retry_after: None,
                }
                .into_response()
                .with_header("x-request-id", request_id.clone());
                let bytes_out = response.body.len();
                let _ = response.write_to(&mut stream, false);
                let elapsed = started.elapsed();
                shared.metrics.observe("http_error", status, elapsed);
                shared.logger().info(
                    "http.access",
                    &[
                        ("request_id", request_id.as_str().into()),
                        ("route", "http_error".into()),
                        ("method", "-".into()),
                        ("path", "-".into()),
                        ("status", status.into()),
                        ("latency_ms", (elapsed.as_secs_f64() * 1e3).into()),
                        ("bytes_in", 0usize.into()),
                        ("bytes_out", bytes_out.into()),
                    ],
                );
                break; // parser state is unknowable; never reuse
            }
        }
    }
    let _ = stream.flush();
}

/// Emits the one structured `http.access` line every served request gets,
/// plus an `http.slow` warning when the request exceeded the configured
/// slow-request threshold.
#[allow(clippy::too_many_arguments)]
fn log_access(
    shared: &Arc<Shared>,
    request_id: &str,
    route: &'static str,
    request: &http::Request,
    status: u16,
    elapsed: Duration,
    bytes_in: usize,
    bytes_out: usize,
) {
    let latency_ms = elapsed.as_secs_f64() * 1e3;
    let fields = [
        ("request_id", request_id.into()),
        ("route", route.into()),
        ("method", request.method.as_str().into()),
        ("path", request.path.as_str().into()),
        ("status", status.into()),
        ("latency_ms", latency_ms.into()),
        ("bytes_in", bytes_in.into()),
        ("bytes_out", bytes_out.into()),
    ];
    shared.logger().info("http.access", &fields);
    if elapsed >= shared.config.slow_request {
        shared.logger().warn("http.slow", &fields);
    }
}

/// Waits under the idle budget for the first byte of the next kept-alive
/// request, restoring the in-flight IO timeout once it arrives. Returns
/// `false` when the connection should close (idle timeout, peer closed,
/// transport failure) — silently, since no request is in flight.
fn wait_for_next_request(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> bool {
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let mut first = [0u8; 1];
    let alive = match stream.read(&mut first) {
        Ok(0) | Err(_) => false,
        Ok(n) => {
            carry.extend_from_slice(&first[..n]);
            true
        }
    };
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    alive
}

/// Writes a bare 503 (used when even queuing was impossible).
///
/// This runs on the **acceptor thread**, so it must never block: a
/// client that connects and then never reads (zero receive window)
/// would otherwise freeze `accept()` for every other client. The
/// response is rendered to a buffer and sent with a single best-effort
/// nonblocking write — a peer too hostile to take ~140 bytes just loses
/// them. `Retry-After` scales with how deep the worker queue already is
/// (clamped to 1..=30 seconds). The request was never parsed, so the
/// `x-request-id` is always server-generated here.
fn write_busy(stream: &mut TcpStream, pool_queued: usize, logger: &Logger) {
    let retry_after = (1 + pool_queued as u64 / 4).min(30);
    let request_id = caffeine_obs::request_id();
    let mut rendered = Vec::with_capacity(256);
    let _ = Response::json(
        503,
        "{\"error\":{\"code\":\"unavailable\",\"message\":\"server is saturated\"}}".into(),
    )
    .with_header("retry-after", retry_after.to_string())
    .with_header("x-request-id", request_id.clone())
    .write_to(&mut rendered, false);
    logger.warn(
        "http.busy",
        &[
            ("request_id", request_id.into()),
            ("queued", pool_queued.into()),
            ("retry_after", retry_after.into()),
        ],
    );
    if stream.set_nonblocking(true).is_ok() {
        let _ = stream.write(&rendered);
    }
}
