//! The daemon: TCP accept loop, bounded dispatch, graceful drain.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::ApiError;
use crate::handlers;
use crate::http::{self, HttpError, Response};
use crate::jobs::JobManager;
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::registry::ModelRegistry;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 for ephemeral).
    pub addr: String,
    /// Registry/checkpoint directory; `None` serves purely in memory.
    pub model_dir: Option<PathBuf>,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Pending-connection queue bound (beyond it: 503).
    pub backlog: usize,
    /// Per-request body cap in bytes.
    pub max_body_bytes: usize,
    /// Socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            model_dir: None,
            workers: 4,
            backlog: 64,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// State shared by every worker: registry, jobs, metrics, shutdown flag.
#[derive(Debug)]
pub struct Shared {
    /// The model registry.
    pub registry: Arc<ModelRegistry>,
    /// The job manager.
    pub jobs: JobManager,
    /// Observability counters.
    pub metrics: Arc<Metrics>,
    config: ServeConfig,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
}

impl Shared {
    /// Flags the accept loop to stop and pokes it awake with a local
    /// connection so it notices immediately.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop may be blocked in `accept`; a throwaway
        // connection wakes it. Failure is fine — the flag alone stops the
        // loop on the next accepted connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
    }

    /// `true` once draining started.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A handle for stopping a server from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting, finish in-flight work.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The shared state (registry seeding in tests/benches).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

/// The bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and opens (or creates) the registry.
    ///
    /// # Errors
    ///
    /// Propagates bind and registry-directory failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let registry = match &config.model_dir {
            Some(dir) => Arc::new(ModelRegistry::open(dir)?),
            None => Arc::new(ModelRegistry::in_memory()),
        };
        let jobs = JobManager::new(config.model_dir.as_ref().map(|d| d.join(".jobs")));
        let shared = Arc::new(Shared {
            registry,
            jobs,
            metrics: Arc::new(Metrics::new()),
            config,
            local_addr,
            shutdown: AtomicBool::new(false),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A stop handle usable from any thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until shutdown, then drains: the worker pool
    /// finishes queued requests and background jobs are cancelled and
    /// joined.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener failures (per-connection errors are
    /// absorbed).
    pub fn serve(self) -> std::io::Result<()> {
        let worker_shared = Arc::clone(&self.shared);
        let pool = WorkerPool::new(
            self.shared.config.workers,
            self.shared.config.backlog,
            move |stream: TcpStream| {
                // A panicking handler must cost one request, not one
                // worker — otherwise repeated panics silently shrink the
                // pool until nothing serves.
                let shared = Arc::clone(&worker_shared);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    handle_connection(&shared, stream)
                }));
                if outcome.is_err() {
                    worker_shared
                        .metrics
                        .observe("handler_panic", 500, Duration::ZERO);
                }
            },
        );
        for stream in self.listener.incoming() {
            if self.shared.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => {
                    // Transient accept failures (e.g. EMFILE under fd
                    // exhaustion) must not busy-spin the acceptor; a
                    // short pause lets workers close sockets and
                    // recover.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if let Err(mut stream) = pool.try_execute(stream) {
                // Pool saturated: answer 503 on the acceptor thread (one
                // small write) and close.
                self.shared.metrics.observe_busy();
                write_busy(&mut stream);
            }
        }
        pool.shutdown();
        self.shared.jobs.drain();
        Ok(())
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);

    match http::read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(request) => {
            let (response, label) = handlers::handle(shared, &request);
            let status = response.status;
            let _ = response.write_to(&mut stream);
            shared.metrics.observe(label, status, started.elapsed());
        }
        Err(HttpError::Closed) => {}
        Err(e) => {
            let (status, code) = match e.status() {
                Some(413) => (413, "payload_too_large"),
                Some(501) => (501, "not_implemented"),
                Some(_) => (400, "bad_request"),
                // Read timeout / transport error: try a 408; the peer is
                // probably gone, so failure to write is fine.
                None => (408, "request_timeout"),
            };
            let response = ApiError {
                status,
                code,
                message: e.message(),
            }
            .into_response();
            let _ = response.write_to(&mut stream);
            shared
                .metrics
                .observe("http_error", status, started.elapsed());
        }
    }
    let _ = stream.flush();
}

/// Writes a bare 503 (used when even queuing was impossible).
fn write_busy(stream: &mut TcpStream) {
    let _ = Response::json(
        503,
        "{\"error\":{\"code\":\"unavailable\",\"message\":\"server is saturated\"}}".into(),
    )
    .write_to(stream);
}
