//! Poison-recovering lock acquisition for the request path.
//!
//! `Mutex::lock().expect(…)` turns one panic into an epidemic: the first
//! panicking holder poisons the lock, and every later request that
//! touches it panics too — a single bug becomes a permanent denial of
//! service. The request path therefore acquires locks through [`plock`]
//! / [`pread`] / [`pwrite`], which recover the guard from a poisoned
//! lock instead of panicking.
//!
//! Recovering is sound here because the panic-freedom lint forbids panic
//! sites in every module that locks these mutexes — so a poisoned lock
//! means a bug already escaped the lint (e.g. a slice-index panic), and
//! the choice is between serving with the state the panicking thread
//! left (each critical section in serve keeps its state consistent
//! statement-to-statement: counters, map inserts/removals, queue
//! push/pop) and refusing every future request. We choose to serve.
//!
//! The lock-order lint recognizes `.plock()` exactly like `.lock()`, so
//! discipline checking is unaffected.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-recovering [`Mutex`] acquisition.
pub(crate) trait PoisonlessMutex<T> {
    /// Like `lock()`, but a poisoned lock yields its guard instead of
    /// panicking.
    fn plock(&self) -> MutexGuard<'_, T>;
}

impl<T> PoisonlessMutex<T> for Mutex<T> {
    fn plock(&self) -> MutexGuard<'_, T> {
        match self.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Poison-recovering [`RwLock`] acquisition.
pub(crate) trait PoisonlessRwLock<T> {
    /// Like `read()`, but a poisoned lock yields its guard instead of
    /// panicking.
    fn pread(&self) -> RwLockReadGuard<'_, T>;
    /// Like `write()`, but a poisoned lock yields its guard instead of
    /// panicking.
    fn pwrite(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> PoisonlessRwLock<T> for RwLock<T> {
    fn pread(&self) -> RwLockReadGuard<'_, T> {
        match self.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn pwrite(&self) -> RwLockWriteGuard<'_, T> {
        match self.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn plock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "lock should be poisoned");
        assert_eq!(*m.plock(), 7);
        *m.plock() = 8;
        assert_eq!(*m.plock(), 8);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.pread(), 1);
        *l.pwrite() = 2;
        assert_eq!(*l.pread(), 2);
    }
}
