//! Structured API errors: every client-visible failure renders as a JSON
//! body `{"error": {"code": ..., "message": ...}}` with a 4xx/5xx status.

use caffeine_core::CaffeineError;
use caffeine_doe::DoeError;
use caffeine_runtime::RuntimeError;

use crate::http::Response;

/// A client-visible failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// When set, the response carries a `Retry-After: <secs>` header —
    /// overload answers (429/503) tell clients when to come back.
    pub retry_after: Option<u64>,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            retry_after: None,
        }
    }

    /// 400 — the request body or parameters are invalid.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(400, "bad_request", message)
    }

    /// 404 — no such resource.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError::new(404, "not_found", message)
    }

    /// 405 — the path exists but not under this method.
    pub fn method_not_allowed(message: impl Into<String>) -> ApiError {
        ApiError::new(405, "method_not_allowed", message)
    }

    /// 409 — the request conflicts with current state.
    pub fn conflict(message: impl Into<String>) -> ApiError {
        ApiError::new(409, "conflict", message)
    }

    /// 422 — syntactically fine, semantically unusable.
    pub fn unprocessable(message: impl Into<String>) -> ApiError {
        ApiError::new(422, "unprocessable", message)
    }

    /// 429 — the bounded job store has no free slot.
    pub fn too_many_jobs(message: impl Into<String>) -> ApiError {
        ApiError::new(429, "too_many_jobs", message)
    }

    /// 500 — the server failed.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError::new(500, "internal", message)
    }

    /// 503 — the server is saturated or draining.
    pub fn unavailable(message: impl Into<String>) -> ApiError {
        ApiError::new(503, "unavailable", message)
    }

    /// Attaches a `Retry-After` hint in whole seconds (clamped to ≥ 1).
    pub fn with_retry_after(mut self, secs: u64) -> ApiError {
        self.retry_after = Some(secs.max(1));
        self
    }

    /// Renders the error as its JSON response.
    pub fn into_response(self) -> Response {
        let body = serde_json::json!({
            "error": { "code": self.code, "message": self.message }
        });
        // Serializing a `Value` of strings cannot fail, but the error
        // path of all places must not take that on faith.
        let rendered = serde_json::to_string(&body).unwrap_or_else(|_| {
            r#"{"error":{"code":"internal","message":"error rendering failed"}}"#.to_string()
        });
        let response = Response::json(self.status, rendered);
        match self.retry_after {
            Some(secs) => response.with_header("retry-after", secs.to_string()),
            None => response,
        }
    }
}

impl From<CaffeineError> for ApiError {
    /// Engine validation failures are the client's fault (bad batch, bad
    /// spec, unreadable artifact); everything else is a server error.
    fn from(e: CaffeineError) -> ApiError {
        match &e {
            CaffeineError::InvalidData(_)
            | CaffeineError::InvalidSettings(_)
            | CaffeineError::InvalidGrammar(_)
            | CaffeineError::GrammarParse { .. } => ApiError::bad_request(e.to_string()),
            CaffeineError::UnsupportedSchema { .. } | CaffeineError::ArtifactDecode(_) => {
                ApiError::unprocessable(e.to_string())
            }
            CaffeineError::Linalg(_) | CaffeineError::NoFeasibleModel => {
                ApiError::internal(e.to_string())
            }
        }
    }
}

impl From<DoeError> for ApiError {
    fn from(e: DoeError) -> ApiError {
        ApiError::bad_request(e.to_string())
    }
}

impl From<RuntimeError> for ApiError {
    fn from(e: RuntimeError) -> ApiError {
        match &e {
            RuntimeError::Engine(inner) => ApiError::from(inner.clone()),
            RuntimeError::Io(_) | RuntimeError::Corrupt(_) => ApiError::internal(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_structured_json() {
        let r = ApiError::bad_request("point 3 is ragged").into_response();
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"code\":\"bad_request\""), "{body}");
        assert!(body.contains("point 3 is ragged"), "{body}");
    }

    #[test]
    fn retry_after_renders_as_a_header() {
        let r = ApiError::too_many_jobs("queue full")
            .with_retry_after(4)
            .into_response();
        assert_eq!(r.status, 429);
        assert!(r
            .headers
            .iter()
            .any(|(n, v)| n == "retry-after" && v == "4"));
        // Clamped to at least one second.
        let r = ApiError::unavailable("busy")
            .with_retry_after(0)
            .into_response();
        assert!(r
            .headers
            .iter()
            .any(|(n, v)| n == "retry-after" && v == "1"));
        // Errors without the hint carry no header.
        let r = ApiError::bad_request("nope").into_response();
        assert!(r.headers.iter().all(|(n, _)| n != "retry-after"));
    }

    #[test]
    fn engine_validation_maps_to_4xx() {
        let e: ApiError = CaffeineError::InvalidData("empty prediction batch".into()).into();
        assert_eq!(e.status, 400);
        let e: ApiError = CaffeineError::UnsupportedSchema {
            found: 9,
            supported: 1,
        }
        .into();
        assert_eq!(e.status, 422);
        let e: ApiError = CaffeineError::NoFeasibleModel.into();
        assert_eq!(e.status, 500);
    }
}
