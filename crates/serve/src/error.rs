//! Structured API errors: every client-visible failure renders as a JSON
//! body `{"error": {"code": ..., "message": ...}}` with a 4xx/5xx status.

use caffeine_core::CaffeineError;
use caffeine_doe::DoeError;
use caffeine_runtime::RuntimeError;

use crate::http::Response;

/// A client-visible failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// 400 — the request body or parameters are invalid.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    /// 404 — no such resource.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            code: "not_found",
            message: message.into(),
        }
    }

    /// 405 — the path exists but not under this method.
    pub fn method_not_allowed(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 405,
            code: "method_not_allowed",
            message: message.into(),
        }
    }

    /// 409 — the request conflicts with current state.
    pub fn conflict(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 409,
            code: "conflict",
            message: message.into(),
        }
    }

    /// 422 — syntactically fine, semantically unusable.
    pub fn unprocessable(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 422,
            code: "unprocessable",
            message: message.into(),
        }
    }

    /// 429 — the bounded job store has no free slot.
    pub fn too_many_jobs(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 429,
            code: "too_many_jobs",
            message: message.into(),
        }
    }

    /// 500 — the server failed.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            code: "internal",
            message: message.into(),
        }
    }

    /// 503 — the server is saturated or draining.
    pub fn unavailable(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 503,
            code: "unavailable",
            message: message.into(),
        }
    }

    /// Renders the error as its JSON response.
    pub fn into_response(self) -> Response {
        let body = serde_json::json!({
            "error": { "code": self.code, "message": self.message }
        });
        Response::json(
            self.status,
            serde_json::to_string(&body).expect("error body serializes"),
        )
    }
}

impl From<CaffeineError> for ApiError {
    /// Engine validation failures are the client's fault (bad batch, bad
    /// spec, unreadable artifact); everything else is a server error.
    fn from(e: CaffeineError) -> ApiError {
        match &e {
            CaffeineError::InvalidData(_)
            | CaffeineError::InvalidSettings(_)
            | CaffeineError::InvalidGrammar(_)
            | CaffeineError::GrammarParse { .. } => ApiError::bad_request(e.to_string()),
            CaffeineError::UnsupportedSchema { .. } | CaffeineError::ArtifactDecode(_) => {
                ApiError::unprocessable(e.to_string())
            }
            CaffeineError::Linalg(_) | CaffeineError::NoFeasibleModel => {
                ApiError::internal(e.to_string())
            }
        }
    }
}

impl From<DoeError> for ApiError {
    fn from(e: DoeError) -> ApiError {
        ApiError::bad_request(e.to_string())
    }
}

impl From<RuntimeError> for ApiError {
    fn from(e: RuntimeError) -> ApiError {
        match &e {
            RuntimeError::Engine(inner) => ApiError::from(inner.clone()),
            RuntimeError::Io(_) | RuntimeError::Corrupt(_) => ApiError::internal(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_structured_json() {
        let r = ApiError::bad_request("point 3 is ragged").into_response();
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"code\":\"bad_request\""), "{body}");
        assert!(body.contains("point 3 is ragged"), "{body}");
    }

    #[test]
    fn engine_validation_maps_to_4xx() {
        let e: ApiError = CaffeineError::InvalidData("empty prediction batch".into()).into();
        assert_eq!(e.status, 400);
        let e: ApiError = CaffeineError::UnsupportedSchema {
            found: 9,
            supported: 1,
        }
        .into();
        assert_eq!(e.status, 422);
        let e: ApiError = CaffeineError::NoFeasibleModel.into();
        assert_eq!(e.status, 500);
    }
}
