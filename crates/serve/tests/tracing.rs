//! End-to-end tracing tests: a real server on an ephemeral port, a real
//! job, and the resulting span tree pulled back over `GET /v1/traces`.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use caffeine_obs::TraceContext;
use caffeine_serve::{client, ServeConfig, Server};

const T: Duration = Duration::from_secs(10);

/// Boots a server on an ephemeral port; returns (addr, handle, join).
fn boot(
    config: ServeConfig,
) -> (
    String,
    caffeine_serve::ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind ephemeral");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

fn tiny_job_spec() -> Vec<u8> {
    let points: Vec<Vec<f64>> = (1..=16).map(|i| vec![f64::from(i) * 0.5]).collect();
    let targets: Vec<f64> = points.iter().map(|p| 3.0 / p[0]).collect();
    serde_json::to_string(&serde_json::json!({
        "name": "traced-rational",
        "var_names": ["x0"],
        "points": points,
        "targets": targets,
        "population": 24,
        "generations": 6,
        "max_bases": 4,
        "seed": 11,
        "grammar": "rational",
    }))
    .unwrap()
    .into_bytes()
}

/// The tentpole acceptance path: submit a job carrying our own
/// `traceparent`, let it finish, and pull the whole span tree back. The
/// tree must link HTTP accept → queued → running → engine phases →
/// publish, every child's parent must resolve inside the tree, and the
/// root's parent must be our client span.
#[test]
fn completed_job_trace_links_http_accept_to_publish() {
    let (addr, handle, join) = boot(ServeConfig::default());

    // Sampled flag set: an explicit retention request, so the trace is
    // kept regardless of the store's 10% default sampling rate.
    let mut client_ctx = TraceContext::mint();
    client_ctx.sampled = true;

    let r = client::request_traced(
        &addr,
        "POST",
        "/v1/jobs",
        Some(&tiny_job_spec()),
        T,
        client_ctx,
    )
    .unwrap();
    assert_eq!(r.status, 201, "{}", r.text());

    // The response echoes a traceparent in our trace, and the job adopts
    // the same trace id (one tree for the whole lifecycle).
    let echoed = TraceContext::parse(r.header("traceparent").expect("traceparent echoed"))
        .expect("echoed header parses");
    assert_eq!(echoed.trace_id, client_ctx.trace_id);
    let job = r.json().unwrap();
    let id = job["id"].as_u64().unwrap();
    let trace_id = job["trace_id"].as_str().expect("job carries trace_id");
    assert_eq!(trace_id, client_ctx.trace_id_hex());

    // Run to completion.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let r = client::request(&addr, "GET", &format!("/v1/jobs/{id}"), None, T).unwrap();
        match r.json().unwrap()["state"].as_str().unwrap() {
            "finished" => break,
            "failed" | "cancelled" => panic!("job ended badly: {}", r.text()),
            _ => {
                assert!(Instant::now() < deadline, "job did not finish in time");
                std::thread::sleep(Duration::from_millis(30));
            }
        }
    }

    // The trace completes when the job's event pump drains; give it a
    // moment before declaring it missing.
    let deadline = Instant::now() + Duration::from_secs(30);
    let trace = loop {
        let r = client::request(&addr, "GET", &format!("/v1/traces/{trace_id}"), None, T).unwrap();
        if r.status == 200 {
            break r.json().unwrap();
        }
        assert!(
            Instant::now() < deadline,
            "trace never appeared: {}",
            r.text()
        );
        std::thread::sleep(Duration::from_millis(30));
    };

    let spans = trace["spans"].as_array().expect("spans array");
    assert!(spans.len() >= 6, "want >=6 spans, got {:?}", trace);

    let names: Vec<&str> = spans.iter().map(|s| s["name"].as_str().unwrap()).collect();
    for expected in ["http POST /v1/jobs", "job", "queued", "running", "publish"] {
        assert!(
            names.contains(&expected),
            "missing `{expected}` in {names:?}"
        );
    }
    assert!(
        names
            .iter()
            .any(|n| *n == "basis_eval" || *n == "linear_solve"),
        "no engine phase spans in {names:?}"
    );

    // Every parent link resolves inside the tree, except the roots whose
    // parent is our own (external) client span.
    let ids: HashSet<&str> = spans
        .iter()
        .map(|s| s["span_id"].as_str().unwrap())
        .collect();
    let client_span_hex = client_ctx.span_id_hex();
    let mut external_parents = 0;
    for s in spans {
        match s["parent_span_id"].as_str() {
            None => panic!("span `{:?}` has no parent", s["name"]),
            Some(p) if ids.contains(p) => {}
            Some(p) => {
                assert_eq!(
                    p, client_span_hex,
                    "span `{:?}` points at an unknown parent",
                    s["name"]
                );
                external_parents += 1;
            }
        }
    }
    assert!(external_parents >= 1, "no span claims the client as parent");

    // The HTTP server span and the job span share our trace id; phase
    // spans parent under `running`, which parents under `job`.
    let span_by_name = |n: &str| spans.iter().find(|s| s["name"] == n).unwrap();
    let job_span = span_by_name("job");
    let running = span_by_name("running");
    assert_eq!(
        running["parent_span_id"].as_str().unwrap(),
        job_span["span_id"].as_str().unwrap()
    );
    assert_eq!(
        job_span["attrs"]["job.id"].as_str().unwrap(),
        id.to_string()
    );
    assert_eq!(job_span["attrs"]["job.state"].as_str().unwrap(), "finished");
    let publish = span_by_name("publish");
    assert_eq!(
        publish["parent_span_id"].as_str().unwrap(),
        job_span["span_id"].as_str().unwrap()
    );
    assert!(publish["attrs"]["model.version"].as_str().is_some());

    // The list view finds it by job id, and the filters hold.
    let r = client::request(&addr, "GET", &format!("/v1/traces?job={id}"), None, T).unwrap();
    assert_eq!(r.status, 200);
    let listed = r.json().unwrap();
    let rows = listed["traces"].as_array().unwrap();
    assert!(rows.iter().any(|t| t["trace_id"] == trace_id), "{listed:?}");
    let r = client::request(&addr, "GET", "/v1/traces?error=true", None, T).unwrap();
    for t in r.json().unwrap()["traces"].as_array().unwrap() {
        assert_eq!(t["error"].as_bool(), Some(true));
    }
    // Bad filter values are 400s, unknown ids 404s.
    let r = client::request(&addr, "GET", "/v1/traces?min_duration_ms=x", None, T).unwrap();
    assert_eq!(r.status, 400);
    let r = client::request(&addr, "GET", "/v1/traces/zz", None, T).unwrap();
    assert_eq!(r.status, 404);

    // The trace metrics families render with real counts.
    let r = client::request(&addr, "GET", "/metrics", None, T).unwrap();
    let text = r.text();
    let metric = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing metric {name} in {text}"))
    };
    assert!(metric("caffeine_trace_spans_total") >= 6.0);
    assert!(metric("caffeine_traces_sampled_total") >= 1.0);
    assert!(metric("caffeine_trace_store_bytes") > 0.0);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// `/readyz` answers 200 while serving and flips to 503 on the same
/// kept-alive connection once a drain begins.
#[test]
fn readyz_flips_to_503_during_drain() {
    let (addr, _handle, join) = boot(ServeConfig::default());

    let mut conn = client::Connection::new(&addr, T);
    let r = conn.request("GET", "/readyz", None).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.json().unwrap()["status"].as_str(), Some("ready"));

    let r = conn.request("POST", "/v1/admin/shutdown", None).unwrap();
    assert_eq!(r.status, 202, "{}", r.text());

    // Same connection: the acceptor is closing, but the in-flight
    // keep-alive connection gets one more answer — and readiness now
    // says no (the drain then closes the connection).
    let r = conn.request("GET", "/readyz", None).unwrap();
    assert_eq!(r.status, 503, "{}", r.text());
    let body = r.json().unwrap();
    assert_eq!(body["status"].as_str(), Some("unavailable"));
    assert_eq!(body["reason"].as_str(), Some("draining"));

    join.join().unwrap().unwrap();
}

/// Hammering the daemon with hundreds of traced requests keeps the trace
/// store bounded: the byte gauge stays sane and evictions are counted
/// instead of memory growing without limit.
#[test]
fn trace_store_stays_bounded_under_request_hammer() {
    let (addr, handle, join) = boot(ServeConfig {
        trace_capacity: 32,
        trace_sample_rate: 1.0,
        ..ServeConfig::default()
    });

    let mut conn = client::Connection::new(&addr, T);
    for i in 0..500 {
        let mut ctx = TraceContext::mint();
        ctx.sampled = true; // force retention so the ring must evict
        let r = conn
            .request_traced("GET", "/healthz", None, ctx)
            .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert_eq!(r.status, 200);
    }

    let r = conn.request("GET", "/metrics", None).unwrap();
    let text = r.text();
    let metric = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing metric {name} in {text}"))
    };
    assert!(
        metric("caffeine_traces_dropped_total") >= 400.0,
        "ring did not evict: {text}"
    );
    // 32 retained traces of a couple spans each: well under a megabyte.
    assert!(metric("caffeine_trace_store_bytes") < 1_000_000.0);

    let r = conn.request("GET", "/v1/traces", None).unwrap();
    assert!(r.json().unwrap()["traces"].as_array().unwrap().len() <= 32);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A completed job's held-open trace is an ordinary ring citizen: once
/// the job finishes and the hold ends, later traffic evicts it, and the
/// store's byte gauge shows no permanent growth from the hold — the
/// job-hold release path end to end, over real HTTP.
#[test]
fn completed_job_traces_are_evicted_by_later_traffic_without_byte_growth() {
    let (addr, handle, join) = boot(ServeConfig {
        trace_capacity: 4,
        trace_sample_rate: 1.0,
        ..ServeConfig::default()
    });

    // One traced job, driven to completion. Its trace is held open for
    // the job's whole life — well past the submitting request.
    let mut ctx = TraceContext::mint();
    ctx.sampled = true;
    let r =
        client::request_traced(&addr, "POST", "/v1/jobs", Some(&tiny_job_spec()), T, ctx).unwrap();
    assert_eq!(r.status, 201, "{}", r.text());
    let job = r.json().unwrap();
    let id = job["id"].as_u64().unwrap();
    let trace_id = job["trace_id"].as_str().unwrap().to_string();

    let mut conn = client::Connection::new(&addr, T);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let r = conn
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .unwrap();
        match r.json().unwrap()["state"].as_str().unwrap() {
            "finished" => break,
            "failed" | "cancelled" => panic!("job ended badly: {}", r.text()),
            _ => {
                assert!(Instant::now() < deadline, "job did not finish in time");
                std::thread::sleep(Duration::from_millis(30));
            }
        }
    }
    // The hold ends when the pump drains; the completed trace appears.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let r = conn
            .request("GET", &format!("/v1/traces/{trace_id}"), None)
            .unwrap();
        if r.status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "job trace never completed");
        std::thread::sleep(Duration::from_millis(30));
    }

    // Now hammer the daemon: at sample rate 1.0 every request's trace
    // enters the 4-slot ring, so the released job trace must be evicted
    // like any other — a leaked hold would pin it (and its bytes).
    for _ in 0..50 {
        let mut ctx = TraceContext::mint();
        ctx.sampled = true;
        let r = conn.request_traced("GET", "/healthz", None, ctx).unwrap();
        assert_eq!(r.status, 200);
    }
    let r = conn
        .request("GET", &format!("/v1/traces/{trace_id}"), None)
        .unwrap();
    assert_eq!(
        r.status,
        404,
        "completed job trace survived 50 evicting requests: {}",
        r.text()
    );

    // No permanent growth: the ring holds at most 4 healthz-sized
    // traces, so the byte gauge must be tiny and the evictions counted.
    let r = conn.request("GET", "/metrics", None).unwrap();
    let text = r.text();
    let metric = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing metric {name} in {text}"))
    };
    assert!(metric("caffeine_traces_dropped_total") >= 40.0, "{text}");
    assert!(metric("caffeine_trace_store_bytes") < 100_000.0, "{text}");
    let r = conn.request("GET", "/v1/traces", None).unwrap();
    assert!(r.json().unwrap()["traces"].as_array().unwrap().len() <= 4);

    handle.shutdown();
    join.join().unwrap().unwrap();
}
