//! Request-level fault tests: the hardened client against adversarial
//! peers — scripted overload servers (Retry-After honoring), servers
//! that die mid-response (the phase rule), and a real daemon behind the
//! testkit's fault-injecting proxy (per-class convergence and SSE
//! reconnect-resume).

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use caffeine_core::expr::{BasisFunction, VarCombo, WeightConfig};
use caffeine_core::{Model, ModelArtifact};
use caffeine_serve::client::{self, RetryPolicy, WatchOptions};
use caffeine_serve::{ServeConfig, Server};
use caffeine_testkit::{FaultClass, FaultPlan, FaultProxy, FAULT_CLASSES};

const T: Duration = Duration::from_secs(10);

/// Boots a server on an ephemeral port; returns (addr, handle, join).
fn boot(
    config: ServeConfig,
) -> (
    String,
    caffeine_serve::ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind ephemeral");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

fn demo_artifact() -> ModelArtifact {
    ModelArtifact::new(
        vec!["w".into(), "l".into()],
        vec![Model::new(
            vec![
                BasisFunction::from_vc(VarCombo::single(2, 0, 1)),
                BasisFunction::from_vc(VarCombo::single(2, 1, -1)),
            ],
            vec![1.0, 2.0, -3.0],
            WeightConfig::default(),
        )
        .with_metrics(0.01, 9.0)],
    )
    .unwrap()
}

/// What the scripted server does with one accepted connection.
#[derive(Clone, Copy)]
enum Script {
    /// Read the request, answer with this raw response, close.
    Respond(&'static str),
    /// Read the *whole* request, then slam the connection shut without
    /// any response. Consuming the full request first matters: it
    /// guarantees the client's writes all succeed, so the failure lands
    /// deterministically in the read phase (a close racing the client's
    /// send would surface as a retry-safe write-phase error instead).
    CloseEarly,
}

/// Reads one full HTTP request (head + `content-length` body) off `conn`.
fn drain_request(conn: &mut std::net::TcpStream) {
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    let head_end = loop {
        if let Some(pos) = req.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => req.extend_from_slice(&buf[..n]),
        }
    };
    let head = String::from_utf8_lossy(&req[..head_end]).to_ascii_lowercase();
    let body_len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    while req.len() - head_end < body_len {
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => req.extend_from_slice(&buf[..n]),
        }
    }
}

/// A scripted one-thread server: plays `script` connection by
/// connection (repeating the last entry forever) and counts accepts.
fn scripted_server(script: Vec<Script>) -> (String, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted server");
    let addr = listener.local_addr().unwrap().to_string();
    let count = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&count);
    std::thread::spawn(move || {
        while let Ok((mut conn, _)) = listener.accept() {
            let i = seen.fetch_add(1, Ordering::SeqCst);
            let act = *script.get(i).or(script.last()).expect("non-empty script");
            let _ = conn.set_read_timeout(Some(T));
            drain_request(&mut conn);
            match act {
                Script::Respond(response) => {
                    let _ = conn.write_all(response.as_bytes());
                    let _ = conn.flush();
                    let _ = conn.shutdown(Shutdown::Both);
                }
                Script::CloseEarly => {
                    let _ = conn.shutdown(Shutdown::Both);
                }
            }
        }
    });
    (addr, count)
}

const OVERLOADED: &str =
    "HTTP/1.1 503 Service Unavailable\r\nretry-after: 1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n";
const THROTTLED: &str =
    "HTTP/1.1 429 Too Many Requests\r\ncontent-length: 0\r\nconnection: close\r\n\r\n";
const OK: &str = "HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nok";

/// The wire test for Retry-After: a server that answers 503 with
/// `Retry-After: 1` once, then 200. The client must wait out the full
/// advertised second and re-issue the request — even a POST, because
/// the received 503 proves the server refused without executing.
#[test]
fn retry_after_is_honored_on_the_wire() {
    let (addr, count) = scripted_server(vec![Script::Respond(OVERLOADED), Script::Respond(OK)]);
    let mut conn = client::Connection::new(&addr, T);
    let started = Instant::now();
    let r = conn
        .request_with_retry("POST", "/v1/jobs", Some(b"{}"), &RetryPolicy::default())
        .expect("retry converges");
    assert_eq!(r.status, 200);
    assert_eq!(r.text(), "ok");
    assert_eq!(count.load(Ordering::SeqCst), 2, "exactly one retry");
    assert!(
        started.elapsed() >= Duration::from_secs(1),
        "Retry-After: 1 was not honored (elapsed {:?})",
        started.elapsed()
    );
}

/// Sustained overload without Retry-After: the client backs off on its
/// own schedule, then surfaces the final 429 (not an error) once
/// attempts run out.
#[test]
fn sustained_overload_backs_off_then_surfaces_the_answer() {
    let (addr, count) = scripted_server(vec![Script::Respond(THROTTLED)]);
    let mut conn = client::Connection::new(&addr, T);
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let r = conn
        .request_with_retry("POST", "/v1/jobs", Some(b"{}"), &policy)
        .expect("overload surfaces as a response");
    assert_eq!(r.status, 429);
    assert_eq!(count.load(Ordering::SeqCst), 3, "all attempts used");
}

/// The phase rule survives the retry layer: a server that dies after
/// reading a POST (response never arrived — it *may* have executed)
/// must not trigger a retry, while the same failure on a GET retries
/// until attempts run out.
#[test]
fn read_phase_failures_retry_gets_but_never_posts() {
    let (addr, count) = scripted_server(vec![Script::CloseEarly]);
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    };

    let mut conn = client::Connection::new(&addr, T);
    conn.request_with_retry("POST", "/v1/jobs", Some(b"{}"), &policy)
        .expect_err("a POST whose response never arrived must fail");
    assert_eq!(count.load(Ordering::SeqCst), 1, "POST must not be retried");

    let mut conn = client::Connection::new(&addr, T);
    conn.request_with_retry("GET", "/v1/jobs", None, &policy)
        .expect_err("server never answers");
    assert_eq!(
        count.load(Ordering::SeqCst),
        1 + 3,
        "GET retries to the attempt cap"
    );
}

/// An explicitly idempotent policy opts a POST into read-phase retries
/// — the caller has declared the repeat safe (e.g. a pure prediction).
#[test]
fn assume_idempotent_opts_posts_into_read_phase_retries() {
    let (addr, count) = scripted_server(vec![Script::CloseEarly, Script::Respond(OK)]);
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(5),
        assume_idempotent: true,
        ..RetryPolicy::default()
    };
    let mut conn = client::Connection::new(&addr, T);
    let r = conn
        .request_with_retry("POST", "/v1/models/demo/predict", Some(b"{}"), &policy)
        .expect("opt-in retry converges");
    assert_eq!(r.status, 200);
    assert_eq!(count.load(Ordering::SeqCst), 2);
}

/// Connect failures are write-phase (nothing ever reached a server), so
/// even a POST retries through them. The daemon comes up only after the
/// first attempts have already failed — the client must ride it out.
#[test]
fn connect_refused_is_retried_for_any_method() {
    // Reserve a port, then release it so the first dial is refused.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);

    let addr_for_server = addr.clone();
    let server = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let listener = TcpListener::bind(&addr_for_server).expect("rebind");
        let (mut conn, _) = listener.accept().expect("accept");
        drain_request(&mut conn);
        let _ = conn.write_all(OK.as_bytes());
    });

    let mut conn = client::Connection::new(&addr, T);
    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(50),
        ..RetryPolicy::default()
    };
    let r = conn
        .request_with_retry("POST", "/v1/jobs", Some(b"{}"), &policy)
        .expect("client rides out the refused dials");
    assert_eq!(r.status, 200);
    server.join().unwrap();
}

/// Every fault class, one real daemon: predictions issued through the
/// fault proxy converge — under the retry policy — to bit-identical
/// results, for every class and every seed in the matrix.
#[test]
fn predictions_converge_through_every_fault_class() {
    let (addr, handle, join) = boot(ServeConfig::default());
    let artifact = demo_artifact();
    let r = client::request(
        &addr,
        "POST",
        "/v1/models/demo",
        Some(artifact.to_json().as_bytes()),
        T,
    )
    .unwrap();
    assert_eq!(r.status, 201, "{}", r.text());

    let points: Vec<Vec<f64>> = (1..=16)
        .map(|i| vec![f64::from(i) * 0.4, f64::from(i) * 0.9])
        .collect();
    let expected = artifact.predict(None, &points).unwrap();
    let body = serde_json::to_string(&serde_json::json!({ "points": points })).unwrap();

    for class in FAULT_CLASSES {
        for seed in caffeine_testkit_seed_matrix() {
            let proxy =
                FaultProxy::spawn(addr.clone(), FaultPlan::only(class, seed)).expect("spawn proxy");
            let mut conn = client::Connection::new(proxy.addr(), T);
            let policy = RetryPolicy {
                // Prediction is pure: safe to re-issue even when a cut
                // landed mid-response.
                assume_idempotent: true,
                max_attempts: 8,
                base_backoff: Duration::from_millis(10),
                seed,
                ..RetryPolicy::default()
            };
            let r = conn
                .request_with_retry(
                    "POST",
                    "/v1/models/demo/predict",
                    Some(body.as_bytes()),
                    &policy,
                )
                .unwrap_or_else(|e| panic!("class {} seed {seed}: {e}", class.name()));
            assert_eq!(r.status, 200, "class {} seed {seed}", class.name());
            let served: Vec<f64> = r.json().unwrap()["predictions"]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            for (s, e) in served.iter().zip(&expected) {
                assert_eq!(
                    s.to_bits(),
                    e.to_bits(),
                    "class {} seed {seed}: prediction diverged",
                    class.name()
                );
            }
        }
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// The seed matrix the fault tests run over. `CHAOS_SEEDS` (a
/// comma-separated list) overrides it, which is how CI pins its matrix
/// and how a failure is replayed locally.
fn caffeine_testkit_seed_matrix() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CHAOS_SEEDS: u64 list"))
            .collect(),
        Err(_) => vec![1, 2],
    }
}

/// A job watched through a proxy that keeps cutting the response stream
/// mid-flight: `watch_job` must reconnect, resume from the replay
/// history via SSE ids, deliver every published frame exactly once, and
/// still see `done`.
#[test]
fn sse_watch_survives_mid_stream_cuts_without_duplicates() {
    let (addr, handle, join) = boot(ServeConfig::default());

    let points: Vec<Vec<f64>> = (1..=16).map(|i| vec![f64::from(i) * 0.5]).collect();
    let targets: Vec<f64> = points.iter().map(|p| 2.0 * p[0] + 1.0).collect();
    let spec = serde_json::to_string(&serde_json::json!({
        "name": "watched-under-cuts",
        "var_names": ["x0"],
        "points": points,
        "targets": targets,
        "population": 16,
        "generations": 6,
        "max_bases": 4,
        "seed": 5,
        "grammar": "rational",
    }))
    .unwrap();
    let r = client::request(&addr, "POST", "/v1/jobs", Some(spec.as_bytes()), T).unwrap();
    assert_eq!(r.status, 201, "{}", r.text());
    let id = r.json().unwrap()["id"].as_u64().unwrap();

    // Watch through a proxy that cuts every faulted connection's
    // response after a few hundred bytes — an SSE stream dies within
    // its first frames, over and over.
    let proxy = FaultProxy::spawn(addr.clone(), FaultPlan::only(FaultClass::MidResponseCut, 3))
        .expect("spawn proxy");
    let opts = WatchOptions {
        timeout: Duration::from_secs(10),
        retry: RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            ..RetryPolicy::default()
        },
    };
    let mut ids = Vec::new();
    let mut saw_done = false;
    client::watch_job(
        &proxy.addr(),
        &format!("/v1/jobs/{id}/events"),
        &opts,
        |e| {
            if let Some(seq) = e.id {
                ids.push(seq);
            }
            if e.event == "done" {
                saw_done = true;
            }
            !saw_done
        },
    )
    .expect("watch survives the cuts");

    assert!(saw_done, "watch ended without `done`");
    assert!(
        proxy.connections() >= 2,
        "the stream was never cut — the fault plan did not engage"
    );
    // Exactly-once delivery: sequenced frames arrive strictly in order,
    // no duplicates across reconnects.
    for pair in ids.windows(2) {
        assert!(pair[1] > pair[0], "duplicate or reordered frame: {ids:?}");
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}
