//! Property tests for the W3C `traceparent` parser: total over arbitrary
//! input, and a lossless round-trip through its own formatter.

use caffeine_obs::TraceContext;
use proptest::prelude::*;

/// Arbitrary unicode strings (invalid scalar values fall back to the
/// replacement character).
fn unicode_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..=0x0010_FFFF, 0..80).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| char::from_u32(c).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

/// Characters that keep generated strings close to the header grammar
/// (hex digits, dashes, and a few hostile near-misses).
fn headerish() -> impl Strategy<Value = String> {
    const ALPHABET: [char; 13] = [
        '0', '1', '9', 'a', 'f', 'A', 'F', '-', 'g', 'x', '+', ' ', '\t',
    ];
    proptest::collection::vec(0usize..ALPHABET.len(), 0..64)
        .prop_map(|idx| idx.into_iter().map(|i| ALPHABET[i]).collect())
}

/// A 128-bit trace id from two halves (the vendored proptest has no
/// native `u128` strategy).
fn trace_id(hi: u64, lo: u64) -> u128 {
    let id = (u128::from(hi) << 64) | u128::from(lo);
    id.max(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser is total: any string yields `None` or a context, never
    /// a panic — including NULs, non-ASCII, and surrogate-adjacent junk.
    #[test]
    fn arbitrary_strings_never_panic(s in unicode_soup()) {
        let _ = TraceContext::parse(&s);
    }

    /// Near-grammar soup (hex, dashes, signs, whitespace) never panics,
    /// and anything accepted round-trips through the formatter.
    #[test]
    fn headerish_soup_is_total_and_roundtrips(s in headerish()) {
        if let Some(ctx) = TraceContext::parse(&s) {
            prop_assert_eq!(TraceContext::parse(&ctx.traceparent()), Some(ctx));
        }
    }

    /// Every well-formed header parses to exactly its fields, and the
    /// formatter reproduces the canonical form.
    #[test]
    fn valid_headers_parse_and_roundtrip(
        hi in 0u64..=u64::MAX,
        lo in 1u64..=u64::MAX,
        span_id in 1u64..=u64::MAX,
        flags in 0u8..=u8::MAX,
    ) {
        let tid = trace_id(hi, lo);
        let header = format!("00-{tid:032x}-{span_id:016x}-{flags:02x}");
        let ctx = TraceContext::parse(&header).expect("well-formed header");
        prop_assert_eq!(ctx.trace_id, tid);
        prop_assert_eq!(ctx.span_id, span_id);
        prop_assert_eq!(ctx.sampled, flags & 0x01 != 0);
        // Round-trip: only the sampled bit of flags survives, by design.
        let again = TraceContext::parse(&ctx.traceparent()).expect("canonical form");
        prop_assert_eq!(again, ctx);
    }

    /// Corrupting any single byte of a valid header with a non-hex,
    /// non-dash character makes the parse fail (strict, not forgiving).
    #[test]
    fn corrupted_headers_are_rejected(
        hi in 0u64..=u64::MAX,
        lo in 1u64..=u64::MAX,
        span_id in 1u64..=u64::MAX,
        pos in 0usize..55,
        junk_idx in 0usize..6,
    ) {
        const JUNK: [char; 6] = ['g', 'z', '+', '~', '_', '\u{FFFD}'];
        let tid = trace_id(hi, lo);
        let mut header: Vec<char> =
            format!("00-{tid:032x}-{span_id:016x}-01").chars().collect();
        header[pos] = JUNK[junk_idx];
        let corrupted: String = header.into_iter().collect();
        prop_assert_eq!(TraceContext::parse(&corrupted), None);
    }

    /// Zero ids and the reserved version are rejected outright; so are
    /// signs and whitespace inside the fixed-width hex fields.
    #[test]
    fn zero_ids_and_reserved_version_are_rejected(
        hi in 0u64..=u64::MAX,
        lo in 1u64..=u64::MAX,
        span_id in 1u64..=u64::MAX,
    ) {
        let tid = trace_id(hi, lo);
        let zero_trace = format!("00-{:032x}-{span_id:016x}-01", 0u128);
        prop_assert_eq!(TraceContext::parse(&zero_trace), None);
        let zero_span = format!("00-{tid:032x}-{:016x}-01", 0u64);
        prop_assert_eq!(TraceContext::parse(&zero_span), None);
        let reserved = format!("ff-{tid:032x}-{span_id:016x}-01");
        prop_assert_eq!(TraceContext::parse(&reserved), None);
        // `from_str_radix` would accept a sign here; the parser must not.
        let signed = format!("00-+{tid:031x}-{span_id:016x}-01");
        prop_assert_eq!(TraceContext::parse(&signed), None);
    }
}
