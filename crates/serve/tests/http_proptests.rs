//! Property tests for the HTTP request parser: arbitrary, truncated, and
//! oversized byte streams must never panic, and must always resolve to a
//! typed error (definite status) or a well-formed request.

use std::io::Cursor;

use caffeine_serve::http::{parse_head, read_request, HttpError, MAX_HEAD_BYTES};
use proptest::prelude::*;

fn outcome_is_sane(result: Result<caffeine_serve::http::Request, HttpError>) {
    match result {
        Ok(r) => {
            assert!(!r.method.is_empty());
            assert!(r.path.starts_with('/'));
        }
        Err(e) => match e.status() {
            Some(s) => assert!(s == 400 || s == 413 || s == 501, "status {s}"),
            None => assert!(matches!(
                e,
                HttpError::Closed | HttpError::Io(_) | HttpError::Idle
            )),
        },
    }
}

/// Printable ASCII + CR/LF soup: more likely than raw bytes to get deep
/// into the header machinery.
fn ascii_soup(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..100, len).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0..=1 => b'\r',
                2..=3 => b'\n',
                4 => b':',
                5 => b' ',
                c => b' ' + (c % 95),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totally arbitrary bytes: the parser must classify, never panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let _ = parse_head(&bytes); // pure head parse on raw bytes
        outcome_is_sane(read_request(&mut Cursor::new(bytes), 4096));
    }

    /// Header-shaped ASCII soup, optionally behind a valid request line.
    #[test]
    fn ascii_soup_never_panics(
        soup in ascii_soup(0..512),
        prefix_valid in (0u8..2).prop_map(|b| b == 1),
    ) {
        let mut bytes = Vec::new();
        if prefix_valid {
            bytes.extend_from_slice(b"GET / HTTP/1.1\r\n");
        }
        bytes.extend_from_slice(&soup);
        outcome_is_sane(read_request(&mut Cursor::new(bytes), 4096));
    }

    /// Truncating a valid request at every byte boundary must give a
    /// clean error (or, at full length, the parsed request).
    #[test]
    fn truncations_of_a_valid_request_never_panic(cut in 0usize..=92) {
        let full: &[u8] = b"POST /v1/models/m/predict HTTP/1.1\r\ncontent-length: 17\r\nhost: x\r\n\r\n{\"points\":[[1.0]]}";
        let cut = cut.min(full.len());
        let result = read_request(&mut Cursor::new(full[..cut].to_vec()), 4096);
        outcome_is_sane(result);
    }

    /// Declared bodies beyond the limit must answer 413 without reading
    /// the body.
    #[test]
    fn oversized_declared_bodies_are_413(extra in 1usize..1_000_000) {
        let limit = 4096usize;
        let head = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", limit + extra);
        let err = read_request(&mut Cursor::new(head.into_bytes()), limit).unwrap_err();
        prop_assert_eq!(err.status(), Some(413));
    }

    /// Oversized heads (giant header sections) must answer 413, bounded
    /// by MAX_HEAD_BYTES regardless of how much the client sends.
    #[test]
    fn oversized_heads_are_413(pad in MAX_HEAD_BYTES..MAX_HEAD_BYTES + 4096) {
        let head = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(pad));
        let err = read_request(&mut Cursor::new(head.into_bytes()), 4096).unwrap_err();
        prop_assert_eq!(err.status(), Some(413));
    }

    /// Random query strings keep the parser total and query_param safe.
    #[test]
    fn query_strings_are_total(soup in ascii_soup(0..128)) {
        let query: Vec<u8> = soup
            .into_iter()
            .map(|b| if b == b'\r' || b == b'\n' || b == b' ' { b'+' } else { b })
            .collect();
        let mut raw = b"GET /v1/models/m?".to_vec();
        raw.extend_from_slice(&query);
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        if let Ok(r) = read_request(&mut Cursor::new(raw), 4096) {
            let _ = r.query_param("version");
            let _ = r.query_param("");
        }
    }
}
